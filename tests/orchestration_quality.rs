//! Paper-shape assertions on orchestration quality: the orderings the
//! evaluation figures rely on must hold for the real pipeline.

use std::collections::HashMap;

use megascale_data::balance::imbalance_factor;
use megascale_data::core::planner::Strategy;
use megascale_data::data::catalog::navit_like;
use megascale_data::data::SampleMeta;
use megascale_data::mesh::DeviceMesh;
use megascale_data::sim::SimRng;
use megascale_data::train::models::vlm_preset;
use megascale_data::train::{hbm, GpuSpec, TrainSetup};

fn scenario(ctx: u64, samples: usize) -> msd_bench_shim::Scenario {
    let mut rng = SimRng::seed(99);
    msd_bench_shim::Scenario {
        mesh: DeviceMesh::pp_dp_cp_tp(2, 4, 1, 2).unwrap(),
        model: vlm_preset("ViT-1B", "Llama-12B"),
        ctx,
        microbatches: 8,
        samples_per_step: samples,
        catalog: navit_like(&mut rng),
    }
}

// The bench harness is a private crate; mirror the tiny bits we need so
// the integration test exercises the same public APIs end users see.
mod msd_bench_shim {
    pub use msd_bench_like::*;
    mod msd_bench_like {
        use super::super::*;
        use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
        use megascale_data::core::planner::PlannerConfig;
        use megascale_data::core::schedule::MixSchedule;
        use megascale_data::core::system::{MegaScaleData, MsdConfig};
        use megascale_data::data::Catalog;
        use megascale_data::mesh::{Axis, DistributeAxis};
        use megascale_data::train::ModelPreset;

        pub struct Scenario {
            pub mesh: DeviceMesh,
            pub model: ModelPreset,
            pub ctx: u64,
            pub microbatches: u32,
            pub samples_per_step: usize,
            pub catalog: Catalog,
        }

        impl Scenario {
            pub fn pipeline(&self, strategy: Strategy, seed: u64) -> MegaScaleData {
                MegaScaleData::new(MsdConfig {
                    catalog: self.catalog.clone(),
                    mesh: self.mesh.clone(),
                    strategy,
                    planner: PlannerConfig {
                        axis: DistributeAxis::DP,
                        group_size: None,
                        microbatches: self.microbatches,
                        broadcast_axes: vec![Axis::TP],
                        samples_per_step: self.samples_per_step,
                        schedule: MixSchedule::uniform(self.catalog.len()),
                    },
                    max_seq_len: self.ctx,
                    resources: ClusterResources {
                        total_cores: 256,
                        total_mem_bytes: 4 << 40,
                    },
                    partition: PartitionOpts::default(),
                    shadow_loaders: 0,
                    buffer_capacity: self.samples_per_step.max(64) * 2,
                    seed,
                })
            }
        }
    }
}

fn strategies(model: &megascale_data::train::ModelPreset) -> [Strategy; 3] {
    [
        Strategy::Vanilla,
        Strategy::BackboneBalance {
            method: megascale_data::balance::BalanceMethod::Greedy,
            backbone: model.backbone,
        },
        Strategy::HybridBalance {
            method: megascale_data::balance::BalanceMethod::Greedy,
            backbone: model.backbone,
            encoder: model.encoder.unwrap(),
        },
    ]
}

/// Per-bucket backbone-cost imbalance: balanced plans must beat vanilla.
#[test]
fn backbone_balance_reduces_bucket_imbalance() {
    let s = scenario(8192, 96);
    let [vanilla, backbone, _] = strategies(&s.model);
    let bucket_imbalance = |strategy: Strategy| {
        let mut msd = s.pipeline(strategy, 5);
        let out = msd.step().unwrap();
        let metas: &HashMap<u64, SampleMeta> = &out.metas;
        let costs: Vec<f64> = out
            .plan
            .buckets
            .iter()
            .map(|b| {
                b.bins
                    .iter()
                    .flat_map(|bin| &bin.samples)
                    .filter_map(|id| metas.get(id))
                    .map(|m| s.model.backbone.flops(m.total_tokens().clamp(1, s.ctx)))
                    .sum()
            })
            .collect();
        imbalance_factor(&costs)
    };
    let v = bucket_imbalance(vanilla);
    let b = bucket_imbalance(backbone);
    assert!(b < v, "balanced {b:.3} must beat vanilla {v:.3}");
    assert!(b < 1.1, "balanced imbalance should be near 1: {b:.3}");
}

/// End-to-end iteration ordering: hybrid ≤ backbone ≤ vanilla (Fig 13).
#[test]
fn strategy_ordering_matches_fig13() {
    let s = scenario(8192, 96);
    let setup = TrainSetup::new(s.mesh.clone(), GpuSpec::l20(), s.model.clone());
    let iteration = |strategy: Strategy| {
        let mut msd = s.pipeline(strategy, 5);
        let mut total = 0.0;
        for _ in 0..2 {
            let out = msd.step().unwrap();
            let loads =
                msd_bench_loads::plan_to_loads(&out.plan, &out.metas, &s.model, &s.mesh, s.ctx);
            total += setup.iteration(&loads).total_s();
        }
        total
    };
    let [vanilla, backbone, hybrid] = strategies(&s.model);
    let v = iteration(vanilla);
    let b = iteration(backbone);
    let h = iteration(hybrid);
    assert!(h < v, "hybrid {h:.2} must beat vanilla {v:.2}");
    assert!(
        b <= v * 1.02,
        "backbone {b:.2} must not lose to vanilla {v:.2}"
    );
    assert!(
        h <= b * 1.02,
        "hybrid {h:.2} must not lose to backbone {b:.2}"
    );
}

/// Balancing bounds peak microbatch tokens, which is what prevents the
/// ViT-2B OOMs of Sec 7.3.
#[test]
fn balancing_reduces_peak_hbm_pressure() {
    let s = scenario(16384, 128);
    let [vanilla, backbone, _] = strategies(&s.model);
    let max_mb_tokens = |strategy: Strategy| {
        let mut msd = s.pipeline(strategy, 5);
        let out = msd.step().unwrap();
        out.plan
            .buckets
            .iter()
            .flat_map(|b| &b.bins)
            .map(|bin| {
                bin.samples
                    .iter()
                    .filter_map(|id| out.metas.get(id))
                    .map(|m| m.total_tokens().clamp(1, s.ctx))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    };
    let v = max_mb_tokens(vanilla);
    let b = max_mb_tokens(backbone);
    assert!(b <= v, "balanced peak {b} must not exceed vanilla {v}");
    // And peak HBM follows the peak microbatch monotonically.
    assert!(hbm::peak_hbm_bytes(&s.mesh, &s.model, b) <= hbm::peak_hbm_bytes(&s.mesh, &s.model, v));
}

// Minimal local copy of the bench harness's load conversion, exercising
// only public APIs (kept in sync by the shared unit tests in msd-bench).
mod msd_bench_loads {
    use super::*;
    use megascale_data::core::plan::LoadingPlan;
    use megascale_data::train::{ModelPreset, RankLoads};

    pub fn plan_to_loads(
        plan: &LoadingPlan,
        metas: &HashMap<u64, SampleMeta>,
        model: &ModelPreset,
        mesh: &DeviceMesh,
        ctx: u64,
    ) -> RankLoads {
        let backbone_mb_flops = plan
            .buckets
            .iter()
            .map(|b| {
                b.bins
                    .iter()
                    .map(|bin| {
                        model.backbone.flops_packed(
                            bin.samples
                                .iter()
                                .filter_map(|id| metas.get(id))
                                .map(|m| m.total_tokens().clamp(1, ctx)),
                        )
                    })
                    .collect()
            })
            .collect();
        let world = mesh.world_size() as usize;
        let encoder = model.encoder.unwrap();
        let mut encoder_rank_flops = vec![0.0; world];
        match plan.subplans.get("encoder") {
            Some(sub) => {
                for (r, bucket) in sub.buckets.iter().enumerate() {
                    for bin in &bucket.bins {
                        for id in &bin.samples {
                            if let Some(m) = metas.get(id) {
                                encoder_rank_flops[r % world] +=
                                    encoder.flops_sample(u64::from(m.image_patches));
                            }
                        }
                    }
                }
            }
            None => {
                for bucket in &plan.buckets {
                    let ranks: Vec<usize> = bucket
                        .clients
                        .iter()
                        .filter(|r| {
                            megascale_data::mesh::delivery_kind(mesh, **r, &plan.broadcast_axes)
                                == megascale_data::mesh::DeliveryKind::Payload
                        })
                        .map(|r| *r as usize)
                        .collect();
                    let mut i = 0usize;
                    for bin in &bucket.bins {
                        for id in &bin.samples {
                            if let Some(m) = metas.get(id) {
                                if m.image_patches > 0 && !ranks.is_empty() {
                                    encoder_rank_flops[ranks[i % ranks.len()]] +=
                                        encoder.flops_sample(u64::from(m.image_patches));
                                    i += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        RankLoads {
            backbone_mb_flops,
            encoder_rank_flops,
            a2a_bytes_per_rank: 1e6,
        }
    }
}
