//! Global Control Store analogue.
//!
//! Ray's GCS keeps actor metadata and lets restartable actors resume.
//! MegaScale-Data leans on it for Planner and Data Constructor recovery
//! (Sec 6.1: "Core coordinators leverage the Global Control Store for state
//! management and automatic restarts"). [`Gcs`] provides the two services
//! the reproduction needs: a name registry and a versioned state blackboard
//! for checkpoints.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A versioned checkpoint blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Monotonic version (e.g. training step or plan epoch).
    pub version: u64,
    /// Opaque serialized state.
    pub data: Vec<u8>,
}

/// One recorded component failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Name of the failing component (e.g. `loader/3`).
    pub component: String,
    /// What went wrong.
    pub detail: String,
}

#[derive(Default)]
struct Inner {
    registry: HashMap<String, String>,
    state: HashMap<String, Checkpoint>,
    faults: Vec<FaultRecord>,
}

/// Shared, thread-safe control store.
#[derive(Clone, Default)]
pub struct Gcs {
    inner: Arc<RwLock<Inner>>,
}

impl Gcs {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a named component with its descriptor (role, address).
    pub fn register(&self, name: &str, descriptor: &str) {
        self.inner
            .write()
            .registry
            .insert(name.to_string(), descriptor.to_string());
    }

    /// Removes a registration.
    pub fn deregister(&self, name: &str) {
        self.inner.write().registry.remove(name);
    }

    /// Looks up a component descriptor.
    pub fn lookup(&self, name: &str) -> Option<String> {
        self.inner.read().registry.get(name).cloned()
    }

    /// Lists registered names with the given prefix, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .read()
            .registry
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Stores a checkpoint if its version is newer than the stored one.
    /// Returns `true` if the store accepted it.
    pub fn put_state(&self, key: &str, version: u64, data: Vec<u8>) -> bool {
        let mut inner = self.inner.write();
        match inner.state.get(key) {
            Some(existing) if existing.version >= version => false,
            _ => {
                inner
                    .state
                    .insert(key.to_string(), Checkpoint { version, data });
                true
            }
        }
    }

    /// Fetches the latest checkpoint for a key.
    pub fn get_state(&self, key: &str) -> Option<Checkpoint> {
        self.inner.read().state.get(key).cloned()
    }

    /// Latest checkpoint version for a key (0 if none).
    pub fn state_version(&self, key: &str) -> u64 {
        self.inner
            .read()
            .state
            .get(key)
            .map(|c| c.version)
            .unwrap_or(0)
    }

    /// Drops the checkpoint stored under `key` (log pruning). Returns
    /// `true` if something was removed.
    pub fn remove_state(&self, key: &str) -> bool {
        self.inner.write().state.remove(key).is_some()
    }

    /// Appends a component failure to the shared fault log (restart paths
    /// report recoverable corruption here instead of dying).
    pub fn log_fault(&self, component: impl Into<String>, detail: impl Into<String>) {
        self.inner.write().faults.push(FaultRecord {
            component: component.into(),
            detail: detail.into(),
        });
    }

    /// Fault records for components whose name starts with `prefix`
    /// (empty prefix returns the whole log), in insertion order.
    pub fn fault_log(&self, prefix: &str) -> Vec<FaultRecord> {
        self.inner
            .read()
            .faults
            .iter()
            .filter(|r| r.component.starts_with(prefix))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let gcs = Gcs::new();
        gcs.register("loader/0", "source=coyo,part=0");
        gcs.register("loader/1", "source=coyo,part=1");
        gcs.register("planner", "central");
        assert_eq!(
            gcs.lookup("loader/0").as_deref(),
            Some("source=coyo,part=0")
        );
        assert_eq!(gcs.list("loader/"), vec!["loader/0", "loader/1"]);
        gcs.deregister("loader/0");
        assert_eq!(gcs.lookup("loader/0"), None);
    }

    #[test]
    fn checkpoints_are_version_gated() {
        let gcs = Gcs::new();
        assert!(gcs.put_state("planner", 5, vec![1]));
        // Stale write rejected.
        assert!(!gcs.put_state("planner", 4, vec![2]));
        assert!(!gcs.put_state("planner", 5, vec![3]));
        assert!(gcs.put_state("planner", 6, vec![4]));
        let cp = gcs.get_state("planner").unwrap();
        assert_eq!(cp.version, 6);
        assert_eq!(cp.data, vec![4]);
        assert_eq!(gcs.state_version("planner"), 6);
        assert_eq!(gcs.state_version("unknown"), 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let gcs = Gcs::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let gcs = gcs.clone();
            handles.push(std::thread::spawn(move || {
                for v in 0..100u64 {
                    gcs.put_state("shared", t * 100 + v, vec![t as u8]);
                    gcs.register(&format!("actor/{t}"), "x");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Highest version wins.
        assert_eq!(gcs.state_version("shared"), 799);
        assert_eq!(gcs.list("actor/").len(), 8);
    }
}
