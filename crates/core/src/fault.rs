//! Fault tolerance: shadow loaders, differential checkpointing, replay.
//!
//! Sec 6.1: Source Loader failures are detected via RPC timeouts or payload
//! integrity checks; a hot-standby *shadow loader* is promoted instantly.
//! To keep snapshot costs low, loaders checkpoint *less frequently* than
//! the Planner — on failover the shadow restores the last loader snapshot
//! and *replays* the Planner's deterministic plan history to catch up
//! (differential checkpointing).

use msd_data::SourceSpec;
use serde::{Deserialize, Serialize};

use crate::loader::{LoaderCheckpoint, LoaderConfig, SourceLoader};
use crate::plan::LoadingPlan;

/// How a failure was detected (both paper mechanisms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureSignal {
    /// The loader stopped answering RPCs within the timeout.
    RpcTimeout,
    /// A payload failed integrity checks (e.g. partial yield without
    /// end-of-stream).
    IntegrityViolation,
}

/// Outcome of a failover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailoverReport {
    /// The failed loader.
    pub loader_id: u32,
    /// Detection mechanism.
    pub signal: FailureSignal,
    /// Snapshot version the shadow restored.
    pub restored_version: u64,
    /// Number of plans replayed to catch up.
    pub replayed_plans: usize,
    /// Samples re-materialized during replay.
    pub replayed_samples: usize,
}

/// A primary loader paired with a hot-standby shadow.
///
/// The shadow holds the source spec and the latest (low-frequency) loader
/// checkpoint; promotion costs one restore plus a deterministic replay.
pub struct ShadowedLoader {
    spec: SourceSpec,
    config: LoaderConfig,
    /// The live primary (None after an unrecovered failure).
    primary: Option<SourceLoader>,
    /// Latest loader snapshot (taken every `snapshot_interval` plans).
    snapshot: LoaderCheckpoint,
    /// Loader snapshot cadence in plans (> planner cadence, per the paper).
    pub snapshot_interval: u64,
    plans_since_snapshot: u64,
}

impl ShadowedLoader {
    /// Wraps a fresh primary with shadow protection.
    pub fn new(spec: SourceSpec, config: LoaderConfig, seed: u64, snapshot_interval: u64) -> Self {
        let primary = SourceLoader::synthetic(spec.clone(), config.clone(), seed);
        let snapshot = primary.checkpoint(0);
        ShadowedLoader {
            spec,
            config,
            primary: Some(primary),
            snapshot,
            snapshot_interval: snapshot_interval.max(1),
            plans_since_snapshot: 0,
        }
    }

    /// Access to the live primary.
    ///
    /// # Panics
    ///
    /// Panics if the loader has failed and was not recovered — callers
    /// must `promote_shadow` first.
    pub fn primary(&mut self) -> &mut SourceLoader {
        self.primary
            .as_mut()
            .expect("loader failed; promote shadow first")
    }

    /// Whether the primary is alive.
    pub fn is_alive(&self) -> bool {
        self.primary.is_some()
    }

    /// The shadow's extra resident memory (one standby actor's access
    /// state; excluded from the paper's Fig 12 measurements, included in
    /// Fig 16e).
    pub fn shadow_memory_bytes(&self) -> u64 {
        self.spec.access_state.total()
    }

    /// Records that one plan was executed; snapshots on the configured
    /// cadence. Returns `true` if a snapshot was taken.
    pub fn after_plan(&mut self, version: u64) -> bool {
        self.plans_since_snapshot += 1;
        if self.plans_since_snapshot >= self.snapshot_interval {
            if let Some(p) = &self.primary {
                self.snapshot = p.checkpoint(version);
                self.plans_since_snapshot = 0;
                return true;
            }
        }
        false
    }

    /// Simulates a primary failure (test/fault-injection hook).
    pub fn kill_primary(&mut self) {
        self.primary = None;
    }

    /// Promotes the shadow: restore the last snapshot, then replay the
    /// planner's history from that version to reconstruct exactly the
    /// buffered/popped state the primary had.
    pub fn promote_shadow(
        &mut self,
        signal: FailureSignal,
        planner_history: &[&LoadingPlan],
    ) -> FailoverReport {
        let mut restored =
            SourceLoader::restore(self.spec.clone(), self.config.clone(), &self.snapshot);
        let mut replayed_plans = 0;
        let mut replayed_samples = 0;
        for plan in planner_history {
            if plan.step < self.snapshot.version {
                continue;
            }
            if let Some(ids) = plan.directives.get(&self.config.loader_id) {
                // Re-materialize everything this plan consumed, then drop it
                // again (it was already delivered downstream).
                restored
                    .refill(restored.buffered() + ids.len())
                    .expect("synthetic refill cannot fail");
                let popped = restored.pop(ids);
                replayed_samples += popped.len();
            }
            replayed_plans += 1;
        }
        let report = FailoverReport {
            loader_id: self.config.loader_id,
            signal,
            restored_version: self.snapshot.version,
            replayed_plans,
            replayed_samples,
        };
        self.primary = Some(restored);
        self.plans_since_snapshot = 0;
        report
    }
}

/// Effective-training-time-ratio (ETTR) model: the fraction of wall-clock
/// time spent making progress given `failures` events with the given
/// per-event recovery latency, over a horizon.
pub fn ettr(horizon_secs: f64, failures: u32, recovery_secs: f64) -> f64 {
    if horizon_secs <= 0.0 {
        return 0.0;
    }
    let lost = f64::from(failures) * recovery_secs;
    ((horizon_secs - lost) / horizon_secs).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_data::catalog::coyo700m_like;
    use msd_sim::SimRng;
    use std::collections::BTreeMap;

    fn spec() -> SourceSpec {
        let mut rng = SimRng::seed(1);
        coyo700m_like(&mut rng).sources()[0].clone()
    }

    fn plan_with_directive(step: u64, loader: u32, ids: Vec<u64>) -> LoadingPlan {
        LoadingPlan {
            step,
            axis: msd_mesh::DistributeAxis::DP,
            buckets: vec![],
            excluded: vec![],
            broadcast_axes: vec![],
            directives: BTreeMap::from([(loader, ids)]),
            subplans: BTreeMap::new(),
        }
    }

    #[test]
    fn failover_restores_identical_stream_position() {
        let mut shadowed = ShadowedLoader::new(spec(), LoaderConfig::solo(0), 42, 2);
        // Produce and consume some samples across several "plans".
        let mut consumed_ids = Vec::new();
        let mut history = Vec::new();
        for step in 0..5u64 {
            shadowed.primary().refill(8).unwrap();
            let ids: Vec<u64> = shadowed
                .primary()
                .summary()
                .samples
                .iter()
                .take(4)
                .map(|m| m.sample_id)
                .collect();
            shadowed.primary().pop(&ids);
            consumed_ids.extend(ids.clone());
            history.push(plan_with_directive(step, 0, ids));
            shadowed.after_plan(step);
        }
        // Note what the primary would produce next.
        shadowed.primary().refill(8).unwrap();
        let expected_next: Vec<u64> = shadowed
            .primary()
            .summary()
            .samples
            .iter()
            .map(|m| m.sample_id)
            .collect();

        // Kill and promote.
        let mut shadowed2 = ShadowedLoader::new(spec(), LoaderConfig::solo(0), 42, 2);
        let mut history2 = Vec::new();
        for step in 0..5u64 {
            shadowed2.primary().refill(8).unwrap();
            let ids: Vec<u64> = shadowed2
                .primary()
                .summary()
                .samples
                .iter()
                .take(4)
                .map(|m| m.sample_id)
                .collect();
            shadowed2.primary().pop(&ids);
            history2.push(plan_with_directive(step, 0, ids));
            shadowed2.after_plan(step);
        }
        shadowed2.kill_primary();
        assert!(!shadowed2.is_alive());
        let refs: Vec<&LoadingPlan> = history2.iter().collect();
        let report = shadowed2.promote_shadow(FailureSignal::RpcTimeout, &refs);
        assert!(shadowed2.is_alive());
        assert!(report.replayed_plans > 0);
        // After recovery the loader yields the same future stream.
        shadowed2.primary().refill(8).unwrap();
        let recovered_next: Vec<u64> = shadowed2
            .primary()
            .summary()
            .samples
            .iter()
            .map(|m| m.sample_id)
            .collect();
        assert_eq!(expected_next, recovered_next);
    }

    #[test]
    fn snapshot_cadence_is_differential() {
        let mut shadowed = ShadowedLoader::new(spec(), LoaderConfig::solo(0), 1, 3);
        let mut snapshots = 0;
        for step in 0..9u64 {
            shadowed.primary().refill(2).unwrap();
            if shadowed.after_plan(step) {
                snapshots += 1;
            }
        }
        // Every 3 plans → 3 snapshots over 9 plans.
        assert_eq!(snapshots, 3);
    }

    #[test]
    fn replay_skips_pre_snapshot_plans() {
        let mut shadowed = ShadowedLoader::new(spec(), LoaderConfig::solo(0), 5, 1);
        let mut history = Vec::new();
        for step in 0..4u64 {
            shadowed.primary().refill(4).unwrap();
            let ids: Vec<u64> = shadowed
                .primary()
                .summary()
                .samples
                .iter()
                .take(2)
                .map(|m| m.sample_id)
                .collect();
            shadowed.primary().pop(&ids);
            history.push(plan_with_directive(step, 0, ids));
            shadowed.after_plan(step); // Snapshot every plan.
        }
        shadowed.kill_primary();
        let refs: Vec<&LoadingPlan> = history.iter().collect();
        let report = shadowed.promote_shadow(FailureSignal::IntegrityViolation, &refs);
        // Snapshot taken at step 3 → only the final plan replays.
        assert!(report.replayed_plans <= 1, "{report:?}");
    }

    #[test]
    fn shadow_memory_is_one_access_state() {
        let shadowed = ShadowedLoader::new(spec(), LoaderConfig::solo(0), 1, 4);
        assert_eq!(shadowed.shadow_memory_bytes(), spec().access_state.total());
    }

    #[test]
    fn ettr_model() {
        assert!((ettr(1000.0, 0, 60.0) - 1.0).abs() < 1e-12);
        let with_failures = ettr(1000.0, 3, 60.0);
        assert!((with_failures - 0.82).abs() < 1e-12);
        assert_eq!(ettr(10.0, 100, 60.0), 0.0);
        assert_eq!(ettr(0.0, 0, 0.0), 0.0);
    }
}
