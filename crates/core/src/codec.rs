//! Compact binary codec for hot-path GCS state.
//!
//! Every plan step writes three kinds of durable state to the control
//! store: the planner checkpoint, a plan-log entry (the step's pop
//! directives), and per-loader checkpoints. These used to serialize
//! through text JSON — kilobytes of quoted field names and decimal
//! integers on the per-step critical path. This module gives each of
//! them a length-prefixed little-endian binary encoding under a shared
//! `MSDB` frame:
//!
//! ```text
//! +---------+------------+---------+----------------------+
//! | MSDB(4) | version(1) | kind(1) | kind-specific fields |
//! +---------+------------+---------+----------------------+
//! ```
//!
//! Decoders are *compatibility readers*: a blob that does not start with
//! the `MSDB` magic is fed to the legacy JSON parser, so checkpoints
//! written before this codec (or by tooling that still emits JSON)
//! restore unchanged, and genuinely corrupt state still surfaces as an
//! error for the restart paths' fault-log fallbacks.
//!
//! Since frame version 2 every frame also carries a trailing 32-bit
//! FNV-1a checksum over everything before it. The same `MSDB` frames now
//! travel the distributed serving plane's wire (kinds 5–10, see
//! [`crate::system::net::WireFrame`]), where bit rot is a live threat,
//! not a theoretical one: any single-bit corruption anywhere in a frame
//! is guaranteed to surface as a [`CodecError`], never as a silently
//! mis-decoded value.
//!
//! Frame version 3 added the binary **batch payload** frame (kind 11):
//! a [`ConstructedBatch`] serialized as fixed-width fields plus raw
//! payload byte runs, replacing the shim-JSON encoding (decimal byte
//! arrays, ~10× the bytes) that `WireFrame::Batch` payloads used to
//! ride the wire in. Decoders accept versions 2 and 3, and
//! [`decode_batch`] additionally falls back to the legacy JSON reader,
//! so mixed-version peers interoperate during a rollout.
//!
//! Two deviations keep multi-megabyte batches at memcpy speed:
//!
//! - The kind-11 frame seals with an 8-byte trailer computed by a
//!   *word-wise* 64-bit FNV-1a (`fnv1a64`) — one multiply per 8 bytes
//!   instead of per byte, with the same single-corruption guarantee.
//! - The v3 `WireFrame::Batch` container (kind 7) is **head-sealed**:
//!   a fixed 26-byte head (client, step, payload length, then a
//!   byte-wise checksum over the head alone) followed by the raw
//!   payload bytes. The payload region is *excluded* from the head
//!   checksum because it is itself a sealed kind-11 frame; excluding it
//!   lets senders append the memoized payload [`Bytes`] without
//!   re-hashing or re-copying it per client ([`encode_wire_frame_parts`]),
//!   and lets receivers slice it zero-copy out of the receive buffer
//!   ([`decode_wire_frame_shared`]).

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes};

use crate::constructor::{ClientDelivery, ConstructedBatch, Microbatch, PackedSequence, Segment};
use crate::loader::LoaderCheckpoint;
use crate::planner::PlannerCheckpoint;
use crate::system::controller::{ControllerCheckpoint, SlotRecord};
use crate::system::core::CoreCheckpoint;
use crate::system::frontier::{FrontierCheckpoint, Holder};
use crate::system::net::{BatchPayload, RejectReason, WireFrame};
use msd_mesh::DeliveryKind;

/// Frame magic for all binary GCS blobs.
pub const MAGIC: [u8; 4] = *b"MSDB";
/// Current frame version (2 added the trailing FNV-1a frame checksum;
/// 3 added the binary batch payload frame, kind 11).
pub const VERSION: u8 = 3;
/// Oldest frame version decoders still accept.
pub const MIN_VERSION: u8 = 2;

/// Frame kind: planner checkpoint ([`CoreCheckpoint`]).
const KIND_PLANNER: u8 = 1;
/// Frame kind: plan-log entry (pop directives).
const KIND_PLAN_LOG: u8 = 2;
/// Frame kind: loader checkpoint ([`LoaderCheckpoint`]).
const KIND_LOADER: u8 = 3;
/// Frame kind: elastic-controller checkpoint ([`ControllerCheckpoint`]).
const KIND_CONTROLLER: u8 = 4;
/// Wire kind: client introduction ([`WireFrame::Hello`]).
const KIND_WIRE_HELLO: u8 = 5;
/// Wire kind: stream (re)subscription ([`WireFrame::Subscribe`]).
const KIND_WIRE_SUBSCRIBE: u8 = 6;
/// Wire kind: one serve step's batch ([`WireFrame::Batch`]).
const KIND_WIRE_BATCH: u8 = 7;
/// Wire kind: batch receipt ([`WireFrame::Ack`]).
const KIND_WIRE_ACK: u8 = 8;
/// Wire kind: flow-control credit grant ([`WireFrame::Credit`]).
const KIND_WIRE_CREDIT: u8 = 9;
/// Wire kind: clean stream teardown ([`WireFrame::Close`]).
const KIND_WIRE_CLOSE: u8 = 10;
/// Wire kind: binary batch payload (a serialized
/// [`ConstructedBatch`] — the body of a [`WireFrame::Batch`]).
const KIND_BATCH: u8 = 11;
/// Wire kind: admission refusal ([`WireFrame::Reject`]).
const KIND_WIRE_REJECT: u8 = 12;
/// Frame kind: serve-plane frontier checkpoint
/// ([`FrontierCheckpoint`]).
const KIND_FRONTIER: u8 = 13;
/// Wire kind: consumed-frontier announcement ([`WireFrame::Frontier`]).
const KIND_WIRE_FRONTIER: u8 = 14;

/// Why a blob failed to decode (through both the binary and the JSON
/// fallback paths). Errors raised while walking a binary frame carry
/// the frame length and the byte offset the decoder was at when it
/// gave up, so a wire-corruption report can name the exact spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    detail: String,
    frame_len: Option<usize>,
    offset: Option<usize>,
}

impl CodecError {
    /// Builds a context-free error (also used by the wire payload
    /// parser in [`crate::system::net`]).
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        CodecError {
            detail: detail.into(),
            frame_len: None,
            offset: None,
        }
    }

    /// Builds an error positioned inside a frame.
    fn at(detail: impl Into<String>, offset: usize, frame_len: usize) -> Self {
        CodecError {
            detail: detail.into(),
            frame_len: Some(frame_len),
            offset: Some(offset),
        }
    }

    /// Attaches the frame length when it is not already known.
    fn with_frame_len(mut self, frame_len: usize) -> Self {
        self.frame_len.get_or_insert(frame_len);
        self
    }

    /// What went wrong, without the positional context.
    pub fn detail(&self) -> &str {
        &self.detail
    }

    /// Total length of the frame being decoded, when known.
    pub fn frame_len(&self) -> Option<usize> {
        self.frame_len
    }

    /// Byte offset the decoder had reached when it failed, when known.
    pub fn offset(&self) -> Option<usize> {
        self.offset
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.detail)?;
        match (self.offset, self.frame_len) {
            (Some(off), Some(len)) => write!(f, " (at byte {off} of a {len}-byte frame)"),
            (None, Some(len)) => write!(f, " (in a {len}-byte frame)"),
            (Some(off), None) => write!(f, " (at byte {off})"),
            (None, None) => Ok(()),
        }
    }
}

impl std::error::Error for CodecError {}

/// Whether `data` carries the binary frame magic.
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() + 2 && data[..MAGIC.len()] == MAGIC
}

/// A bounds-checked little-endian reader (the `Buf` accessors panic on
/// short input; decoders must return errors instead). Tracks its
/// absolute offset within the frame so every error can name the byte it
/// tripped on.
struct Reader<'a> {
    data: &'a [u8],
    /// Absolute offset of the next unread byte within the whole frame.
    pos: usize,
    /// Whole-frame length (header + body + checksum), for error context.
    frame_len: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() < n {
            return Err(CodecError::at(
                format!(
                    "truncated frame: wanted {n} more bytes, have {}",
                    self.data.len()
                ),
                self.pos,
                self.frame_len,
            ));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        self.pos += n;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(CodecError::at(
                format!("{} trailing bytes after frame", self.data.len()),
                self.pos,
                self.frame_len,
            ))
        }
    }
}

fn frame(kind: u8, capacity: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 2 + capacity + CHECKSUM_LEN);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind);
    buf
}

/// Trailing checksum width.
const CHECKSUM_LEN: usize = 4;

/// 32-bit FNV-1a over `data`. Each step `h = (h ^ byte) * prime` is
/// injective in `h` (the prime is odd, hence invertible mod 2³²), so two
/// frames differing in exactly one byte can never share a checksum —
/// single-bit corruption is *guaranteed* to be caught, not just likely.
fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in data {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Appends the frame checksum; every encoder's final step.
fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&buf);
    buf.put_u32_le(sum);
    buf
}

/// Trailing checksum width of the kind-11 batch frame.
const BATCH_CHECKSUM_LEN: usize = 8;

/// 64-bit FNV-1a over little-endian 64-bit *words* (the zero-padded
/// tail counts as one word), seeded with the input length and run as
/// **four independent lanes** taking words round-robin. A single FNV
/// chain is latency-bound — each `(h ^ word) * prime` multiply waits on
/// the previous one — so four interleaved chains run ~4× faster on any
/// out-of-order core, keeping the integrity pass on multi-megabyte
/// batch frames at memcpy-like speed (the byte-wise [`fnv1a`] would
/// dominate the decode).
///
/// The single-corruption guarantee carries over: each lane step
/// `h = (h ^ word) * prime` is injective in `h` (the prime is odd) and
/// injective in `word` for fixed `h`, and the final fold
/// `h = (h * prime) ^ lane` is injective in every lane separately. A
/// flipped byte lands in exactly one word, hence perturbs exactly one
/// lane, hence always changes the fold; the length seed separates
/// frames whose difference hides in the zero padding.
fn fnv1a64(data: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [OFFSET, OFFSET ^ 1, OFFSET ^ 2, OFFSET ^ 3];
    lanes[0] ^= data.len() as u64;
    lanes[0] = lanes[0].wrapping_mul(PRIME);
    let mut blocks = data.chunks_exact(32);
    for block in &mut blocks {
        for (lane, w) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            *lane ^= u64::from_le_bytes(w.try_into().expect("8-byte word"));
            *lane = lane.wrapping_mul(PRIME);
        }
    }
    // Up to three full words plus a zero-padded partial word remain;
    // they continue the round-robin from lane 0.
    let rem = blocks.remainder();
    let mut words = rem.chunks_exact(8);
    let mut next = 0;
    for w in &mut words {
        lanes[next] ^= u64::from_le_bytes(w.try_into().expect("8-byte word"));
        lanes[next] = lanes[next].wrapping_mul(PRIME);
        next += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut word = [0u8; 8];
        word[..tail.len()].copy_from_slice(tail);
        lanes[next] ^= u64::from_le_bytes(word);
        lanes[next] = lanes[next].wrapping_mul(PRIME);
    }
    let mut h = lanes[0];
    for lane in &lanes[1..] {
        h = h.wrapping_mul(PRIME) ^ lane;
    }
    h
}

/// Appends the wide batch-frame checksum; [`encode_batch_into`]'s final
/// step.
fn seal_batch(buf: &mut Vec<u8>) {
    let sum = fnv1a64(buf);
    buf.put_u64_le(sum);
}

/// Strips and validates the header plus the wide trailing checksum of a
/// kind-11 batch frame, returning a reader over the body only.
fn open_batch_frame(data: &[u8]) -> Result<Reader<'_>, CodecError> {
    if data.len() < MAGIC.len() + 2 + BATCH_CHECKSUM_LEN {
        return Err(
            CodecError::new(format!("batch frame too short: {} bytes", data.len()))
                .with_frame_len(data.len()),
        );
    }
    let (body, tail) = data.split_at(data.len() - BATCH_CHECKSUM_LEN);
    let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(CodecError::new(format!(
            "frame checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
        ))
        .with_frame_len(data.len()));
    }
    let mut r = Reader {
        data: body,
        pos: 0,
        frame_len: data.len(),
    };
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CodecError::at("missing MSDB magic", 0, data.len()));
    }
    let version = r.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::at(
            format!("unsupported frame version {version}"),
            MAGIC.len(),
            data.len(),
        ));
    }
    let kind = r.u8()?;
    if kind != KIND_BATCH {
        return Err(CodecError::at(
            format!("frame kind mismatch: expected {KIND_BATCH}, got {kind}"),
            MAGIC.len() + 1,
            data.len(),
        ));
    }
    Ok(r)
}

/// Strips and validates the frame header plus the trailing checksum,
/// returning a reader over the body only.
fn open_frame(data: &[u8], kind: u8) -> Result<Reader<'_>, CodecError> {
    let (got, r) = open_any_frame(data)?;
    if got != kind {
        return Err(
            CodecError::new(format!("frame kind mismatch: expected {kind}, got {got}"))
                .with_frame_len(data.len()),
        );
    }
    Ok(r)
}

/// Like [`open_frame`], but yields whichever kind the frame carries
/// (the wire decoder dispatches on it).
fn open_any_frame(data: &[u8]) -> Result<(u8, Reader<'_>), CodecError> {
    if data.len() < MAGIC.len() + 2 + CHECKSUM_LEN {
        return Err(
            CodecError::new(format!("frame too short: {} bytes", data.len()))
                .with_frame_len(data.len()),
        );
    }
    let (body, tail) = data.split_at(data.len() - CHECKSUM_LEN);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CodecError::new(format!(
            "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ))
        .with_frame_len(data.len()));
    }
    let mut r = Reader {
        data: body,
        pos: 0,
        frame_len: data.len(),
    };
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CodecError::at("missing MSDB magic", 0, data.len()));
    }
    let version = r.u8()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(CodecError::at(
            format!("unsupported frame version {version}"),
            MAGIC.len(),
            data.len(),
        ));
    }
    let kind = r.u8()?;
    Ok((kind, r))
}

fn put_rng(buf: &mut Vec<u8>, state: &[u64; 4]) {
    for w in state {
        buf.put_u64_le(*w);
    }
}

fn get_rng(r: &mut Reader<'_>) -> Result<[u64; 4], CodecError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

/// Encodes a planner checkpoint (54 bytes, vs ~10× as JSON).
pub fn encode_planner_checkpoint(cp: &CoreCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_PLANNER, 6 * 8);
    buf.put_u64_le(cp.planner.step);
    put_rng(&mut buf, &cp.planner.rng_state);
    buf.put_u64_le(cp.replayed_steps);
    seal(buf)
}

/// Decodes a planner checkpoint, falling back to the legacy JSON reader
/// for pre-codec blobs.
pub fn decode_planner_checkpoint(data: &[u8]) -> Result<CoreCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<CoreCheckpoint>(data)
            .map_err(|e| CodecError::new(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_PLANNER)?;
    let step = r.u64()?;
    let rng_state = get_rng(&mut r)?;
    let replayed_steps = r.u64()?;
    r.finish()?;
    Ok(CoreCheckpoint {
        planner: PlannerCheckpoint { step, rng_state },
        replayed_steps,
    })
}

/// Encodes one plan-log entry: the step's pop directives
/// (`loader id → sample ids`, ids in plan order).
pub fn encode_plan_log(directives: &BTreeMap<u32, Vec<u64>>) -> Vec<u8> {
    let ids: usize = directives.values().map(Vec::len).sum();
    let mut buf = frame(KIND_PLAN_LOG, 4 + directives.len() * 8 + ids * 8);
    buf.put_u32_le(directives.len() as u32);
    for (loader, samples) in directives {
        buf.put_u32_le(*loader);
        buf.put_u32_le(samples.len() as u32);
        for id in samples {
            buf.put_u64_le(*id);
        }
    }
    seal(buf)
}

/// Decodes a plan-log entry, falling back to the legacy JSON reader.
pub fn decode_plan_log(data: &[u8]) -> Result<BTreeMap<u32, Vec<u64>>, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<BTreeMap<u32, Vec<u64>>>(data)
            .map_err(|e| CodecError::new(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_PLAN_LOG)?;
    let entries = r.u32()? as usize;
    let mut out = BTreeMap::new();
    for _ in 0..entries {
        let loader = r.u32()?;
        let count = r.u32()? as usize;
        let mut samples = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            samples.push(r.u64()?);
        }
        out.insert(loader, samples);
    }
    r.finish()?;
    Ok(out)
}

/// Encodes a loader checkpoint (58 bytes).
pub fn encode_loader_checkpoint(cp: &LoaderCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_LOADER, 4 + 6 * 8);
    buf.put_u32_le(cp.loader_id);
    buf.put_u64_le(cp.cursor);
    put_rng(&mut buf, &cp.rng_state);
    buf.put_u64_le(cp.version);
    seal(buf)
}

/// Decodes a loader checkpoint, falling back to the legacy JSON reader.
pub fn decode_loader_checkpoint(data: &[u8]) -> Result<LoaderCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<LoaderCheckpoint>(data)
            .map_err(|e| CodecError::new(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_LOADER)?;
    let loader_id = r.u32()?;
    let cursor = r.u64()?;
    let rng_state = get_rng(&mut r)?;
    let version = r.u64()?;
    r.finish()?;
    Ok(LoaderCheckpoint {
        loader_id,
        cursor,
        rng_state,
        version,
    })
}

/// Encodes an elastic-controller checkpoint: event sequence, id
/// allocator, lifetime decision counters, and the live loader topology
/// (16 bytes per slot, vs ~5× as JSON).
pub fn encode_controller_checkpoint(cp: &ControllerCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_CONTROLLER, 4 * 8 + 8 + cp.slots.len() * 16);
    buf.put_u64_le(cp.seq);
    buf.put_u32_le(cp.next_loader_id);
    buf.put_u64_le(cp.scale_ups);
    buf.put_u64_le(cp.scale_downs);
    buf.put_u64_le(cp.rebalances);
    buf.put_u32_le(cp.slots.len() as u32);
    for slot in &cp.slots {
        buf.put_u32_le(slot.source);
        buf.put_u32_le(slot.loader_id);
        buf.put_u32_le(slot.shard);
        buf.put_u32_le(slot.shards);
    }
    seal(buf)
}

/// Decodes an elastic-controller checkpoint, falling back to the legacy
/// JSON reader for pre-codec blobs.
pub fn decode_controller_checkpoint(data: &[u8]) -> Result<ControllerCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<ControllerCheckpoint>(data)
            .map_err(|e| CodecError::new(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_CONTROLLER)?;
    let seq = r.u64()?;
    let next_loader_id = r.u32()?;
    let scale_ups = r.u64()?;
    let scale_downs = r.u64()?;
    let rebalances = r.u64()?;
    let count = r.u32()? as usize;
    let mut slots = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        slots.push(SlotRecord {
            source: r.u32()?,
            loader_id: r.u32()?,
            shard: r.u32()?,
            shards: r.u32()?,
        });
    }
    r.finish()?;
    Ok(ControllerCheckpoint {
        seq,
        next_loader_id,
        scale_ups,
        scale_downs,
        rebalances,
        slots,
    })
}

/// Holder tag of the frontier checkpoint frame.
const HOLDER_CLIENT: u8 = 0;
const HOLDER_CONSTRUCTOR: u8 = 1;

/// Encodes a serve-plane frontier checkpoint: the folded frontier, the
/// driver's served/pruning cursors, and every live capability holder
/// (13 bytes per holder).
pub fn encode_frontier_checkpoint(cp: &FrontierCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_FRONTIER, 4 * 8 + 4 + cp.holders.len() * 13);
    buf.put_u64_le(cp.frontier);
    buf.put_u64_le(cp.served);
    buf.put_u64_le(cp.plan_base);
    buf.put_u64_le(cp.pruned_below);
    buf.put_u32_le(cp.holders.len() as u32);
    for (holder, cursor) in &cp.holders {
        let (tag, id) = match holder {
            Holder::Client(id) => (HOLDER_CLIENT, *id),
            Holder::Constructor(idx) => (HOLDER_CONSTRUCTOR, *idx),
        };
        buf.put_u8(tag);
        buf.put_u32_le(id);
        buf.put_u64_le(*cursor);
    }
    seal(buf)
}

/// Decodes a frontier checkpoint. No JSON fallback: the frame postdates
/// the binary codec, so a non-frame blob is corruption, not legacy.
pub fn decode_frontier_checkpoint(data: &[u8]) -> Result<FrontierCheckpoint, CodecError> {
    let mut r = open_frame(data, KIND_FRONTIER)?;
    let frontier = r.u64()?;
    let served = r.u64()?;
    let plan_base = r.u64()?;
    let pruned_below = r.u64()?;
    let count = r.u32()? as usize;
    let mut holders = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let tag = r.u8()?;
        let id = r.u32()?;
        let cursor = r.u64()?;
        let holder = match tag {
            HOLDER_CLIENT => Holder::Client(id),
            HOLDER_CONSTRUCTOR => Holder::Constructor(id),
            other => {
                return Err(CodecError::new(format!("unknown holder tag {other}"))
                    .with_frame_len(data.len()));
            }
        };
        holders.push((holder, cursor));
    }
    r.finish()?;
    Ok(FrontierCheckpoint {
        frontier,
        served,
        plan_base,
        pruned_below,
        holders,
    })
}

/// Byte length of the head-sealed v3 `WireFrame::Batch` head: magic,
/// version, kind, client, step, payload length, head checksum. The
/// payload bytes follow immediately after.
const WIRE_BATCH_HEAD_LEN: usize = MAGIC.len() + 2 + 4 + 8 + 4 + CHECKSUM_LEN;

/// Exact encoded length of a wire frame, from the same per-variant field
/// walk as [`encode_wire_frame_parts`]. Lets encoders presize scratch
/// (or lease a pooled buffer of the right class) instead of growing a
/// `Vec` by doubling. For a batch frame this memoizes the payload
/// encoding, so calling it right before encoding costs nothing extra.
pub fn encoded_wire_frame_len(frame_in: &WireFrame) -> usize {
    let base = MAGIC.len() + 2 + CHECKSUM_LEN; // magic, version, kind, seal
    match frame_in {
        WireFrame::Hello { .. } => base + 4 + 4,
        WireFrame::Subscribe { .. } => base + 4 + 8 + 4,
        WireFrame::Batch { payload, .. } => WIRE_BATCH_HEAD_LEN + payload.encoded().len(),
        WireFrame::Ack { .. } => base + 4 + 8,
        WireFrame::Credit { .. } => base + 4 + 4,
        WireFrame::Close { .. } => base + 4,
        WireFrame::Reject { .. } => base + 4 + 1,
        WireFrame::Frontier { .. } => base + 4 + 8,
    }
}

/// Encodes one wire frame of the distributed serving plane's MSDB
/// protocol. A [`WireFrame::Batch`] carrying a shared in-process payload
/// is serialized here — encoding is exactly the point where a batch
/// leaves shared memory.
pub fn encode_wire_frame(frame_in: &WireFrame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_wire_frame_len(frame_in));
    encode_wire_frame_into(frame_in, &mut buf);
    debug_assert_eq!(buf.len(), encoded_wire_frame_len(frame_in));
    buf
}

/// Like [`encode_wire_frame`], but writes into a caller-owned scratch
/// buffer (cleared first, capacity kept). Steady-state senders reuse one
/// scratch across every frame of a connection, so per-frame encoding
/// costs no allocation at all once the buffer has grown to the largest
/// frame.
pub fn encode_wire_frame_into(frame_in: &WireFrame, buf: &mut Vec<u8>) {
    if let Some(payload) = encode_wire_frame_parts(frame_in, buf) {
        buf.put_slice(&payload);
    }
}

/// Scatter-gather encoder: writes the frame's (sealed, self-contained)
/// head into `head` and returns the trailing payload bytes, if any. The
/// frame's contiguous wire form is exactly `head` followed by the
/// returned payload — but senders that can write two buffers (the TCP
/// writer, the simulated link) skip assembling it, so a multi-megabyte
/// batch leaves the process without its payload ever being copied or
/// re-hashed: the returned [`Bytes`] is the memoized encoding shared
/// across every client and resend.
pub fn encode_wire_frame_parts(frame_in: &WireFrame, head: &mut Vec<u8>) -> Option<Bytes> {
    head.clear();
    head.put_slice(&MAGIC);
    head.put_u8(VERSION);
    let mut payload_out = None;
    match frame_in {
        WireFrame::Hello { client, rank } => {
            head.put_u8(KIND_WIRE_HELLO);
            head.put_u32_le(*client);
            head.put_u32_le(*rank);
        }
        WireFrame::Subscribe {
            client,
            from_step,
            credits,
        } => {
            head.put_u8(KIND_WIRE_SUBSCRIBE);
            head.put_u32_le(*client);
            head.put_u64_le(*from_step);
            head.put_u32_le(*credits);
        }
        WireFrame::Batch {
            client,
            step,
            payload,
        } => {
            let encoded = payload.encoded();
            head.put_u8(KIND_WIRE_BATCH);
            head.put_u32_le(*client);
            head.put_u64_le(*step);
            head.put_u32_le(encoded.len() as u32);
            payload_out = Some(encoded);
        }
        WireFrame::Ack { client, step } => {
            head.put_u8(KIND_WIRE_ACK);
            head.put_u32_le(*client);
            head.put_u64_le(*step);
        }
        WireFrame::Credit { client, grant } => {
            head.put_u8(KIND_WIRE_CREDIT);
            head.put_u32_le(*client);
            head.put_u32_le(*grant);
        }
        WireFrame::Close { client } => {
            head.put_u8(KIND_WIRE_CLOSE);
            head.put_u32_le(*client);
        }
        WireFrame::Reject { client, reason } => {
            head.put_u8(KIND_WIRE_REJECT);
            head.put_u32_le(*client);
            head.put_u8(reason.code());
        }
        WireFrame::Frontier { client, consumed } => {
            head.put_u8(KIND_WIRE_FRONTIER);
            head.put_u32_le(*client);
            head.put_u64_le(*consumed);
        }
    }
    let sum = fnv1a(head);
    head.put_u32_le(sum);
    if payload_out.is_some() {
        debug_assert_eq!(head.len(), WIRE_BATCH_HEAD_LEN);
    }
    payload_out
}

/// Decodes one wire frame from its contiguous byte form. Unlike the GCS
/// checkpoint decoders there is no JSON fallback — wire frames never had
/// a legacy encoding — so any non-frame byte string is an error. A
/// decoded batch carries its payload as [`BatchPayload::Encoded`] bytes;
/// parsing the batch itself is deferred to [`BatchPayload::batch`] so
/// relays never pay for it.
///
/// Transports hold the receive buffer as [`Bytes`] and should prefer
/// [`decode_wire_frame_shared`], which hands the batch payload out as a
/// zero-copy view; this slice-based form copies it.
pub fn decode_wire_frame(data: &[u8]) -> Result<WireFrame, CodecError> {
    if is_head_sealed_batch(data) {
        let (client, step, payload_len) = decode_wire_batch_head(data, data.len())?;
        let payload = Bytes::copy_from_slice(&data[WIRE_BATCH_HEAD_LEN..][..payload_len]);
        return Ok(WireFrame::Batch {
            client,
            step,
            payload: BatchPayload::Encoded(payload),
        });
    }
    decode_sealed_wire_frame(data)
}

/// Like [`decode_wire_frame`], but slices a batch frame's payload
/// zero-copy out of the shared receive buffer — the decoded
/// [`BatchPayload::Encoded`] view keeps `data`'s allocation alive
/// instead of copying megabytes.
pub fn decode_wire_frame_shared(data: &Bytes) -> Result<WireFrame, CodecError> {
    if is_head_sealed_batch(data) {
        let (client, step, payload_len) = decode_wire_batch_head(data, data.len())?;
        let payload = data.slice(WIRE_BATCH_HEAD_LEN..WIRE_BATCH_HEAD_LEN + payload_len);
        return Ok(WireFrame::Batch {
            client,
            step,
            payload: BatchPayload::Encoded(payload),
        });
    }
    decode_sealed_wire_frame(data)
}

/// Reassembles a wire frame received as scatter-gather parts (see
/// [`encode_wire_frame_parts`]): a sealed head plus an optional payload
/// buffer that was transferred separately. The payload is attached to
/// the decoded frame as-is — zero-copy — after its length is checked
/// against the head's declaration.
pub fn decode_wire_frame_split(
    head: &[u8],
    payload: Option<Bytes>,
) -> Result<WireFrame, CodecError> {
    let Some(payload) = payload else {
        return decode_sealed_wire_frame(head);
    };
    if !is_head_sealed_batch(head) || head.len() != WIRE_BATCH_HEAD_LEN {
        return Err(CodecError::new("payload attached to a non-batch head")
            .with_frame_len(head.len() + payload.len()));
    }
    let (client, step, _) = decode_wire_batch_head(head, head.len() + payload.len())?;
    Ok(WireFrame::Batch {
        client,
        step,
        payload: BatchPayload::Encoded(payload),
    })
}

/// Whether `data` starts with a v3+ head-sealed batch-frame head (v2
/// batch frames used the whole-frame seal and decode through the legacy
/// branch of [`decode_sealed_wire_frame`]).
fn is_head_sealed_batch(data: &[u8]) -> bool {
    is_binary(data) && data[MAGIC.len() + 1] == KIND_WIRE_BATCH && data[MAGIC.len()] >= 3
}

/// Validates a head-sealed batch head (checksum over the head bytes
/// only) and the payload length it declares against the frame's total
/// byte count (`total_len` — head plus payload, however the two were
/// transferred), returning `(client, step, payload_len)`.
fn decode_wire_batch_head(data: &[u8], total_len: usize) -> Result<(u32, u64, usize), CodecError> {
    if data.len() < WIRE_BATCH_HEAD_LEN {
        return Err(CodecError::at(
            format!(
                "truncated batch head: {} of {WIRE_BATCH_HEAD_LEN} bytes",
                data.len()
            ),
            data.len(),
            total_len,
        ));
    }
    let head = &data[..WIRE_BATCH_HEAD_LEN];
    let (sealed, tail) = head.split_at(WIRE_BATCH_HEAD_LEN - CHECKSUM_LEN);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    let computed = fnv1a(sealed);
    if stored != computed {
        return Err(CodecError::new(format!(
            "batch head checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        ))
        .with_frame_len(total_len));
    }
    let version = sealed[MAGIC.len()];
    if version > VERSION {
        return Err(CodecError::at(
            format!("unsupported frame version {version}"),
            MAGIC.len(),
            total_len,
        ));
    }
    let mut r = Reader {
        data: &sealed[MAGIC.len() + 2..],
        pos: MAGIC.len() + 2,
        frame_len: total_len,
    };
    let client = r.u32()?;
    let step = r.u64()?;
    let payload_len = r.u32()? as usize;
    if total_len != WIRE_BATCH_HEAD_LEN + payload_len {
        return Err(CodecError::at(
            format!(
                "batch head declares a {payload_len}-byte payload, frame carries {}",
                total_len - WIRE_BATCH_HEAD_LEN
            ),
            WIRE_BATCH_HEAD_LEN,
            total_len,
        ));
    }
    Ok((client, step, payload_len))
}

/// Decodes the whole-frame-sealed wire kinds: every control frame, plus
/// v2 batch frames (whose payload rode inside the frame checksum).
fn decode_sealed_wire_frame(data: &[u8]) -> Result<WireFrame, CodecError> {
    let (kind, mut r) = open_any_frame(data)?;
    let frame_out = match kind {
        KIND_WIRE_HELLO => WireFrame::Hello {
            client: r.u32()?,
            rank: r.u32()?,
        },
        KIND_WIRE_SUBSCRIBE => WireFrame::Subscribe {
            client: r.u32()?,
            from_step: r.u64()?,
            credits: r.u32()?,
        },
        KIND_WIRE_BATCH => {
            let client = r.u32()?;
            let step = r.u64()?;
            let len = r.u32()? as usize;
            let payload = Bytes::copy_from_slice(r.take(len)?);
            WireFrame::Batch {
                client,
                step,
                payload: BatchPayload::Encoded(payload),
            }
        }
        KIND_WIRE_ACK => WireFrame::Ack {
            client: r.u32()?,
            step: r.u64()?,
        },
        KIND_WIRE_CREDIT => WireFrame::Credit {
            client: r.u32()?,
            grant: r.u32()?,
        },
        KIND_WIRE_CLOSE => WireFrame::Close { client: r.u32()? },
        KIND_WIRE_REJECT => {
            let client = r.u32()?;
            let code = r.u8()?;
            let reason = RejectReason::from_code(code).ok_or_else(|| {
                CodecError::new(format!("unknown reject reason code {code}"))
                    .with_frame_len(data.len())
            })?;
            WireFrame::Reject { client, reason }
        }
        KIND_WIRE_FRONTIER => WireFrame::Frontier {
            client: r.u32()?,
            consumed: r.u64()?,
        },
        other => {
            return Err(CodecError::new(format!("not a wire frame kind: {other}"))
                .with_frame_len(data.len()));
        }
    };
    r.finish()?;
    Ok(frame_out)
}

// ---------------------------------------------------------------------
// Binary batch payload (kind 11): the body of a `WireFrame::Batch`.

/// Delivery-kind tags of the batch frame.
const DELIVERY_PAYLOAD: u8 = 0;
const DELIVERY_METADATA_ONLY: u8 = 1;
const DELIVERY_ELIDED: u8 = 2;

fn delivery_kind_tag(kind: DeliveryKind) -> u8 {
    match kind {
        DeliveryKind::Payload => DELIVERY_PAYLOAD,
        DeliveryKind::MetadataOnly => DELIVERY_METADATA_ONLY,
        DeliveryKind::Elided => DELIVERY_ELIDED,
    }
}

/// Exact encoded size of a batch frame (header + body + checksum).
/// Encoders pre-size their buffer with this, so building even a
/// multi-megabyte batch frame is a single allocation with zero
/// reallocation — and zero per-sample or per-sequence allocations.
pub fn encoded_batch_len(batch: &ConstructedBatch) -> usize {
    let mut n = MAGIC.len() + 2; // magic + version + kind
    n += 4 + 4; // bucket + microbatch count
    for mb in &batch.microbatches {
        n += 4 + 4; // bin + sequence count
        for seq in &mb.sequences {
            n += 8 + 8; // tokens + padding
            n += 4 + seq.segments.len() * 16; // segment count + (id, tokens)
            n += 4 + seq.position_ids.len() * 4; // position-id count + ids
        }
        n += 4; // payload count
        for (_, payload) in &mb.payloads {
            n += 8 + 4 + payload.len(); // sample id + length + raw bytes
        }
        n += 8; // payload_bytes
    }
    n += 4; // delivery count
    for d in &batch.deliveries {
        n += 4 + 1 + 8; // rank + kind tag + bytes
        n += 4; // microbatch count of cp_slices
        for slices in &d.cp_slices {
            n += 4 + slices.len() * 16; // slice count + (start, end)
        }
    }
    n + BATCH_CHECKSUM_LEN
}

/// Encodes a constructed batch as a binary `MSDB` frame (kind 11) into
/// a caller-owned scratch buffer (cleared first, capacity kept). Sample
/// payloads are written as raw byte runs — each payload's [`Bytes`]
/// view is copied once, directly into the scratch, with no per-sample
/// allocation and no inflation (the shim-JSON encoding this replaces
/// spent ~4 decimal characters per payload byte).
pub fn encode_batch_into(batch: &ConstructedBatch, buf: &mut Vec<u8>) {
    buf.clear();
    buf.reserve(encoded_batch_len(batch));
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(KIND_BATCH);
    buf.put_u32_le(batch.bucket);
    buf.put_u32_le(batch.microbatches.len() as u32);
    for mb in &batch.microbatches {
        buf.put_u32_le(mb.bin);
        buf.put_u32_le(mb.sequences.len() as u32);
        for seq in &mb.sequences {
            buf.put_u64_le(seq.tokens);
            buf.put_u64_le(seq.padding);
            buf.put_u32_le(seq.segments.len() as u32);
            for seg in &seq.segments {
                buf.put_u64_le(seg.sample_id);
                buf.put_u64_le(seg.tokens);
            }
            buf.put_u32_le(seq.position_ids.len() as u32);
            // Bulk-write the ids through resize + chunked copy: the
            // per-element `put_u32_le` loop re-checks capacity every
            // iteration and defeats vectorization, which shows up at
            // ~half a megabyte of position ids per bench-sized batch.
            let start = buf.len();
            buf.resize(start + seq.position_ids.len() * 4, 0);
            for (out, pid) in buf[start..].chunks_exact_mut(4).zip(&seq.position_ids) {
                out.copy_from_slice(&pid.to_le_bytes());
            }
        }
        buf.put_u32_le(mb.payloads.len() as u32);
        for (sample_id, payload) in &mb.payloads {
            buf.put_u64_le(*sample_id);
            buf.put_u32_le(payload.len() as u32);
            buf.put_slice(payload);
        }
        buf.put_u64_le(mb.payload_bytes);
    }
    buf.put_u32_le(batch.deliveries.len() as u32);
    for d in &batch.deliveries {
        buf.put_u32_le(d.rank);
        buf.put_u8(delivery_kind_tag(d.kind));
        buf.put_u64_le(d.bytes);
        buf.put_u32_le(d.cp_slices.len() as u32);
        for slices in &d.cp_slices {
            buf.put_u32_le(slices.len() as u32);
            for (start, end) in slices {
                buf.put_u64_le(*start);
                buf.put_u64_le(*end);
            }
        }
    }
    seal_batch(buf);
    debug_assert_eq!(buf.len(), encoded_batch_len(batch));
}

/// Encodes a constructed batch into a fresh, exactly-sized buffer.
pub fn encode_batch(batch: &ConstructedBatch) -> Vec<u8> {
    let mut buf = Vec::with_capacity(encoded_batch_len(batch));
    encode_batch_into(batch, &mut buf);
    buf
}

/// Decodes a batch payload, falling back to the legacy JSON reader for
/// payloads encoded by pre-version-3 peers. Binary decode errors carry
/// the frame length and the offending byte offset (see
/// [`CodecError::offset`]).
///
/// Sample payloads are copied out of `data`; receivers that hold the
/// frame as [`Bytes`] should prefer [`decode_batch_shared`], which
/// hands them out as zero-copy views instead.
pub fn decode_batch(data: &[u8]) -> Result<ConstructedBatch, CodecError> {
    decode_batch_impl(data, None)
}

/// Like [`decode_batch`], but each decoded sample payload is an O(1)
/// [`Bytes::slice`] view of `data` — the one integrity pass over the
/// frame (the wide trailer check) is the only per-byte work, and the
/// receive buffer's allocation is shared by every payload it carried.
pub fn decode_batch_shared(data: &Bytes) -> Result<ConstructedBatch, CodecError> {
    decode_batch_impl(data, Some(data))
}

/// Shared walk of [`decode_batch`]/[`decode_batch_shared`]: when
/// `share` is given (the same buffer `data` borrows from), payloads are
/// sliced from it zero-copy; otherwise they are copied.
fn decode_batch_impl(data: &[u8], share: Option<&Bytes>) -> Result<ConstructedBatch, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<ConstructedBatch>(data).map_err(|e| {
            CodecError::new(format!("not a binary frame and not legacy JSON: {e}"))
                .with_frame_len(data.len())
        });
    }
    let mut r = open_batch_frame(data)?;
    let bucket = r.u32()?;
    let mb_count = r.u32()? as usize;
    let mut microbatches = Vec::with_capacity(mb_count.min(1 << 12));
    for _ in 0..mb_count {
        let bin = r.u32()?;
        let seq_count = r.u32()? as usize;
        let mut sequences = Vec::with_capacity(seq_count.min(1 << 16));
        for _ in 0..seq_count {
            let tokens = r.u64()?;
            let padding = r.u64()?;
            let seg_count = r.u32()? as usize;
            let mut segments = Vec::with_capacity(seg_count.min(1 << 16));
            for _ in 0..seg_count {
                segments.push(Segment {
                    sample_id: r.u64()?,
                    tokens: r.u64()?,
                });
            }
            let pid_count = r.u32()? as usize;
            // Bulk-read the position-id run: one bounds check (hostile
            // counts fail it) and a vectorizable copy.
            let raw = r.take(pid_count.saturating_mul(4))?;
            let position_ids: Vec<u32> = raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte id")))
                .collect();
            sequences.push(PackedSequence {
                segments,
                tokens,
                padding,
                position_ids,
            });
        }
        let payload_count = r.u32()? as usize;
        let mut payloads = Vec::with_capacity(payload_count.min(1 << 16));
        for _ in 0..payload_count {
            let sample_id = r.u64()?;
            let len = r.u32()? as usize;
            let start = r.pos;
            let raw = r.take(len)?;
            let payload = match share {
                Some(buf) => buf.slice(start..start + len),
                None => Bytes::copy_from_slice(raw),
            };
            payloads.push((sample_id, payload));
        }
        let payload_bytes = r.u64()?;
        microbatches.push(Microbatch {
            bin,
            sequences,
            payloads,
            payload_bytes,
        });
    }
    let delivery_count = r.u32()? as usize;
    let mut deliveries = Vec::with_capacity(delivery_count.min(1 << 16));
    for _ in 0..delivery_count {
        let rank = r.u32()?;
        let tag_pos = r.pos;
        let kind = match r.u8()? {
            DELIVERY_PAYLOAD => DeliveryKind::Payload,
            DELIVERY_METADATA_ONLY => DeliveryKind::MetadataOnly,
            DELIVERY_ELIDED => DeliveryKind::Elided,
            other => {
                return Err(CodecError::at(
                    format!("unknown delivery kind tag {other}"),
                    tag_pos,
                    data.len(),
                ));
            }
        };
        let bytes = r.u64()?;
        let mb_count = r.u32()? as usize;
        let mut cp_slices = Vec::with_capacity(mb_count.min(1 << 12));
        for _ in 0..mb_count {
            let slice_count = r.u32()? as usize;
            let mut slices = Vec::with_capacity(slice_count.min(1 << 16));
            for _ in 0..slice_count {
                slices.push((r.u64()?, r.u64()?));
            }
            cp_slices.push(slices);
        }
        deliveries.push(ClientDelivery {
            rank,
            kind,
            cp_slices,
            bytes,
        });
    }
    r.finish()?;
    Ok(ConstructedBatch {
        bucket,
        microbatches,
        deliveries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_cp() -> CoreCheckpoint {
        CoreCheckpoint {
            planner: PlannerCheckpoint {
                step: 42,
                rng_state: [1, u64::MAX, 3, 0x1234_5678_9ABC_DEF0],
            },
            replayed_steps: 7,
        }
    }

    fn loader_cp() -> LoaderCheckpoint {
        LoaderCheckpoint {
            loader_id: 9,
            cursor: 1 << 40,
            rng_state: [5, 6, 7, 8],
            version: 3,
        }
    }

    fn directives() -> BTreeMap<u32, Vec<u64>> {
        BTreeMap::from([(0, vec![10, 11, 12]), (3, vec![]), (7, vec![u64::MAX])])
    }

    fn controller_cp() -> ControllerCheckpoint {
        ControllerCheckpoint {
            seq: 11,
            next_loader_id: 17,
            scale_ups: 4,
            scale_downs: 2,
            rebalances: 1,
            slots: vec![
                SlotRecord {
                    source: 0,
                    loader_id: 0,
                    shard: 0,
                    shards: 1,
                },
                SlotRecord {
                    source: 0,
                    loader_id: 16,
                    shard: 1,
                    shards: 2,
                },
                SlotRecord {
                    source: 3,
                    loader_id: 3,
                    shard: 0,
                    shards: 1,
                },
            ],
        }
    }

    #[test]
    fn controller_checkpoint_roundtrips_and_falls_back() {
        let cp = controller_cp();
        assert_eq!(
            decode_controller_checkpoint(&encode_controller_checkpoint(&cp)).unwrap(),
            cp
        );
        // Empty topology is legal (everything retired mid-teardown).
        let empty = ControllerCheckpoint {
            slots: vec![],
            ..controller_cp()
        };
        assert_eq!(
            decode_controller_checkpoint(&encode_controller_checkpoint(&empty)).unwrap(),
            empty
        );
        // Legacy JSON blobs decode through the fallback reader.
        let json = serde_json::to_vec(&cp).unwrap();
        assert_eq!(decode_controller_checkpoint(&json).unwrap(), cp);
        // Corruption surfaces as an error, not a panic.
        let full = encode_controller_checkpoint(&cp);
        assert!(decode_controller_checkpoint(&full[..full.len() - 3]).is_err());
        assert!(decode_controller_checkpoint(b"{nope").is_err());
        // Kind confusion: a controller frame is not a loader checkpoint.
        assert!(decode_loader_checkpoint(&full).is_err());
    }

    #[test]
    fn binary_roundtrips() {
        assert_eq!(
            decode_planner_checkpoint(&encode_planner_checkpoint(&core_cp())).unwrap(),
            core_cp()
        );
        assert_eq!(
            decode_loader_checkpoint(&encode_loader_checkpoint(&loader_cp())).unwrap(),
            loader_cp()
        );
        assert_eq!(
            decode_plan_log(&encode_plan_log(&directives())).unwrap(),
            directives()
        );
    }

    #[test]
    fn binary_is_far_smaller_than_json() {
        let bin = encode_planner_checkpoint(&core_cp());
        let json = serde_json::to_vec(&core_cp()).unwrap();
        assert!(
            bin.len() < json.len(),
            "binary {} vs JSON {}",
            bin.len(),
            json.len()
        );
        // The per-step dominant blob is the plan log (one id per popped
        // sample); there the fixed 8-byte encoding wins big over decimal.
        // Realistic ids carry the source/shard prefix in the high bits
        // (see `SourceLoader::make_id`), so their decimal forms are long.
        let big: BTreeMap<u32, Vec<u64>> =
            BTreeMap::from([(0, (0..128u64).map(|i| u64::MAX - (i << 16)).collect())]);
        let bin = encode_plan_log(&big);
        let json = serde_json::to_vec(&big).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs JSON {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn legacy_json_blobs_still_decode() {
        let json = serde_json::to_vec(&core_cp()).unwrap();
        assert_eq!(decode_planner_checkpoint(&json).unwrap(), core_cp());
        let json = serde_json::to_vec(&loader_cp()).unwrap();
        assert_eq!(decode_loader_checkpoint(&json).unwrap(), loader_cp());
        let json = serde_json::to_vec(&directives()).unwrap();
        assert_eq!(decode_plan_log(&json).unwrap(), directives());
    }

    #[test]
    fn corrupt_blobs_error_through_both_paths() {
        // Neither magic nor JSON.
        assert!(decode_loader_checkpoint(b"{not json").is_err());
        // Valid magic, truncated body.
        let full = encode_loader_checkpoint(&loader_cp());
        for cut in [6, 10, full.len() - 1] {
            assert!(decode_loader_checkpoint(&full[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = full.clone();
        long.push(0);
        assert!(decode_loader_checkpoint(&long).is_err());
        // Kind confusion: a loader frame is not a planner checkpoint.
        assert!(decode_planner_checkpoint(&full).is_err());
        // Unknown version.
        let mut bad = full;
        bad[4] = 99;
        assert!(decode_loader_checkpoint(&bad).is_err());
    }

    /// A batch exercising every field: multiple microbatches, packed
    /// sequences with segments/position ids, payload byte runs
    /// (including an empty one), and CP-sliced deliveries.
    fn batch() -> ConstructedBatch {
        ConstructedBatch {
            bucket: 3,
            microbatches: vec![
                Microbatch {
                    bin: 0,
                    sequences: vec![
                        PackedSequence {
                            segments: vec![
                                Segment {
                                    sample_id: 11,
                                    tokens: 5,
                                },
                                Segment {
                                    sample_id: u64::MAX,
                                    tokens: 3,
                                },
                            ],
                            tokens: 8,
                            padding: 2,
                            position_ids: vec![0, 1, 2, 3, 4, 0, 1, 2, 0, 0],
                        },
                        PackedSequence {
                            segments: vec![],
                            tokens: 0,
                            padding: 0,
                            position_ids: vec![],
                        },
                    ],
                    payloads: vec![
                        (11, Bytes::from(vec![231u8; 300])),
                        (u64::MAX, Bytes::new()), // 0-byte payload is legal
                    ],
                    payload_bytes: 300,
                },
                Microbatch {
                    bin: 1,
                    sequences: vec![],
                    payloads: vec![(42, Bytes::from(vec![1, 2, 3]))],
                    payload_bytes: 3,
                },
            ],
            deliveries: vec![
                ClientDelivery {
                    rank: 0,
                    kind: DeliveryKind::Payload,
                    cp_slices: vec![vec![(0, 4), (4, 8)], vec![]],
                    bytes: 303,
                },
                ClientDelivery {
                    rank: 5,
                    kind: DeliveryKind::MetadataOnly,
                    cp_slices: vec![],
                    bytes: 0,
                },
                ClientDelivery {
                    rank: 7,
                    kind: DeliveryKind::Elided,
                    cp_slices: vec![],
                    bytes: 0,
                },
            ],
        }
    }

    #[test]
    fn batch_roundtrips_and_sizes_exactly() {
        let b = batch();
        let encoded = encode_batch(&b);
        assert_eq!(encoded.len(), encoded_batch_len(&b));
        assert_eq!(decode_batch(&encoded).unwrap(), b);
        // The scratch-buffer path produces identical bytes and reuses
        // capacity across calls.
        let mut scratch = Vec::new();
        encode_batch_into(&b, &mut scratch);
        assert_eq!(scratch, encoded);
        let cap = scratch.capacity();
        encode_batch_into(&b, &mut scratch);
        assert_eq!(scratch, encoded);
        assert_eq!(scratch.capacity(), cap, "scratch buffer was reallocated");
        // An empty batch is legal (a bucket with nothing to deliver).
        let empty = ConstructedBatch {
            bucket: 0,
            microbatches: vec![],
            deliveries: vec![],
        };
        assert_eq!(decode_batch(&encode_batch(&empty)).unwrap(), empty);
    }

    #[test]
    fn batch_binary_is_far_smaller_than_json() {
        // Realistic batches are payload-dominated; JSON renders each
        // payload byte as a decimal literal (~4 bytes for token data).
        let mut b = batch();
        b.microbatches[0].payloads[0].1 = Bytes::from(vec![231u8; 16 << 10]);
        b.microbatches[0].payload_bytes = 16 << 10;
        let bin = encode_batch(&b);
        let json = serde_json::to_vec(&b).unwrap();
        assert!(
            bin.len() * 3 < json.len(),
            "binary {} vs JSON {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn batch_legacy_json_payloads_still_decode() {
        let b = batch();
        let json = serde_json::to_vec(&b).unwrap();
        assert_eq!(decode_batch(&json).unwrap(), b);
        assert!(decode_batch(b"{nope").is_err());
    }

    #[test]
    fn batch_decode_errors_carry_frame_length_and_offset() {
        let b = batch();
        let full = encode_batch(&b);
        // Raw truncation is caught by the checksum first; the error
        // still names the (truncated) frame length.
        let cut = full.len() / 2;
        let err = decode_batch(&full[..cut]).unwrap_err();
        assert_eq!(err.frame_len(), Some(cut));
        // A *resealed* truncation (valid checksum, body cut short) is
        // caught by the body walk with the offending byte offset.
        let resealed = reseal_batch(full[..cut].to_vec());
        let err = decode_batch(&resealed).unwrap_err();
        assert_eq!(err.frame_len(), Some(resealed.len()));
        assert!(err.offset().is_some(), "offset dropped: {err}");
        let rendered = err.to_string();
        assert!(
            rendered.contains(&format!("{}-byte frame", resealed.len())),
            "frame length missing from: {rendered}"
        );
        // Checksum corruption: the frame length survives even when no
        // single offset is to blame.
        let mut flipped = full.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        let err = decode_batch(&flipped).unwrap_err();
        assert_eq!(err.frame_len(), Some(full.len()));
        // Kind confusion is positioned context too.
        let err = decode_batch(&encode_loader_checkpoint(&loader_cp())).unwrap_err();
        assert!(err.frame_len().is_some());
    }

    #[test]
    fn batch_kind_confused_frames_error_through_checkpoint_decoders() {
        let wire = encode_batch(&batch());
        assert!(decode_planner_checkpoint(&wire).is_err());
        assert!(decode_plan_log(&wire).is_err());
        assert!(decode_loader_checkpoint(&wire).is_err());
        assert!(decode_controller_checkpoint(&wire).is_err());
        assert!(decode_wire_frame(&wire).is_err());
    }

    /// Re-seals `frame` after a header edit (valid checksum, so the
    /// *semantic* validation is what must reject or accept it).
    fn reseal(mut frame: Vec<u8>) -> Vec<u8> {
        frame.truncate(frame.len() - CHECKSUM_LEN);
        seal(frame)
    }

    /// [`reseal`] for kind-11 batch frames, which carry the wide
    /// trailer.
    fn reseal_batch(mut frame: Vec<u8>) -> Vec<u8> {
        frame.truncate(frame.len().saturating_sub(BATCH_CHECKSUM_LEN));
        seal_batch(&mut frame);
        frame
    }

    #[test]
    fn version_2_frames_still_decode_and_future_versions_error() {
        // A v3 loader checkpoint rewritten as v2 decodes identically:
        // the kinds that existed at v2 kept their exact layout.
        let cp = loader_cp();
        let mut v2 = encode_loader_checkpoint(&cp);
        assert_eq!(v2[4], VERSION);
        v2[4] = 2;
        let v2 = reseal(v2);
        assert_eq!(decode_loader_checkpoint(&v2).unwrap(), cp);
        // Below MIN_VERSION and above VERSION both error even with a
        // valid checksum.
        for bad_version in [MIN_VERSION - 1, VERSION + 1] {
            let mut bad = encode_loader_checkpoint(&cp);
            bad[4] = bad_version;
            let bad = reseal(bad);
            assert!(
                decode_loader_checkpoint(&bad).is_err(),
                "version {bad_version} decoded"
            );
        }
    }

    #[test]
    fn wire_frame_scratch_encoder_matches_and_reuses_capacity() {
        let frames = [
            WireFrame::Hello { client: 1, rank: 2 },
            WireFrame::Batch {
                client: 3,
                step: 9,
                payload: BatchPayload::Encoded(Bytes::from(vec![5u8; 64])),
            },
            WireFrame::Close { client: 1 },
            WireFrame::Reject {
                client: 4,
                reason: RejectReason::SessionLimit,
            },
        ];
        let mut scratch = Vec::new();
        for f in &frames {
            encode_wire_frame_into(f, &mut scratch);
            assert_eq!(scratch, encode_wire_frame(f));
            assert_eq!(decode_wire_frame(&scratch).unwrap(), *f);
        }
        // Once grown past the largest frame, encoding stops allocating.
        let cap = scratch.capacity();
        for f in &frames {
            encode_wire_frame_into(f, &mut scratch);
        }
        assert_eq!(scratch.capacity(), cap, "scratch buffer was reallocated");
    }

    #[test]
    fn reject_frames_round_trip_and_validate_reason_codes() {
        for reason in [RejectReason::SessionLimit, RejectReason::RetransmitCap] {
            let frame = WireFrame::Reject { client: 42, reason };
            let wire = encode_wire_frame(&frame);
            assert_eq!(wire.len(), encoded_wire_frame_len(&frame));
            assert_eq!(decode_wire_frame(&wire).unwrap(), frame);
            // A flipped checksum bit is caught like any other frame.
            let mut flipped = wire.clone();
            let last = flipped.len() - 1;
            flipped[last] ^= 0x01;
            assert!(decode_wire_frame(&flipped).is_err());
        }
        // An unknown reason code is a decode error even under a valid
        // checksum — fuzzed frames can't smuggle an unclassifiable
        // refusal through.
        let mut bad = encode_wire_frame(&WireFrame::Reject {
            client: 42,
            reason: RejectReason::SessionLimit,
        });
        let reason_at = MAGIC.len() + 2 + 4;
        bad[reason_at] = 0xEE;
        let bad = reseal(bad);
        let err = decode_wire_frame(&bad).unwrap_err();
        assert!(
            err.to_string().contains("reject reason"),
            "unexpected error: {err}"
        );
    }
}
