//! Deterministic, seeded fault injection for the distributed serving
//! plane.
//!
//! The module has two halves:
//!
//! - [`ChaosTransport`] composes with any [`Transport`] and perturbs the
//!   frame stream *in both directions*: seeded drops, duplicates, and
//!   adjacent-swap reorders beyond what the sim fabric's `LossyLink`
//!   models, plus link partitions — scheduled windows keyed to the
//!   global offered-frame count (so a plan replays exactly from its
//!   seed, independent of wall-clock), or manual per-link control via
//!   [`LinkChaos`].
//! - [`ChaosPlan`] is the replayable script: the seed and probabilities
//!   the transport consumes, plus *step-keyed* [`ChaosEvent`]s the test
//!   harness applies against the actor system — silently killing a
//!   client at step N, crashing the whole `DataServer` actor (its
//!   supervisor restarts it with empty session state), or stalling a
//!   constructor's mailbox to model a slow storage fetch.
//!
//! Everything is keyed to counts (frames offered, steps consumed),
//! never to wall-clock, so a failing chaos soak reproduces from its
//! seed alone. See `tests/chaos_serve.rs` for the harness that drives
//! a plan against live Loopback/Sim/TCP serve sessions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use msd_sim::SimRng;

use crate::system::net::{FrameTx, NetError, Transport, WireConn, WireFrame};

/// One scheduled fault in a [`ChaosPlan`], keyed to a serve-step count
/// observed by the driving harness (not wall-clock), so replays are
/// exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Stop pulling on client `client` once it has consumed `at_step`
    /// steps — *without* a `Close` handshake. This is the silent death
    /// the session lease exists to reap.
    KillClient {
        /// The client to kill.
        client: u32,
        /// Consumed-step count at which it dies.
        at_step: u64,
    },
    /// Panic the `DataServer` actor once the observing client reaches
    /// `at_step`. Its supervisor restarts it with fresh, empty session
    /// state; clients redial under backoff and resume from their
    /// cursors.
    CrashServer {
        /// Consumed-step count at which the server crashes.
        at_step: u64,
    },
    /// Stall constructor `index`'s mailbox by `stall` at `at_step`,
    /// modeling a storage fetch gone slow.
    StallConstructor {
        /// Constructor index in the pipeline fleet.
        index: usize,
        /// Consumed-step count at which the stall lands.
        at_step: u64,
        /// How long the constructor sleeps.
        stall: Duration,
    },
}

impl ChaosEvent {
    /// The step this event is keyed to.
    pub fn at_step(&self) -> u64 {
        match self {
            ChaosEvent::KillClient { at_step, .. }
            | ChaosEvent::CrashServer { at_step }
            | ChaosEvent::StallConstructor { at_step, .. } => *at_step,
        }
    }
}

/// A half-open window `[from, until)` of the global offered-frame count
/// during which every chaos-wrapped link drops all frames — a full
/// partition scheduled deterministically, without wall-clock timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First offered-frame count inside the partition.
    pub from: u64,
    /// First offered-frame count past the partition.
    pub until: u64,
}

/// A replayable fault-injection script: seed, frame-level fault
/// probabilities, scheduled partitions, and step-keyed actor faults.
/// Two runs from the same plan perturb the system identically.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Seed for every per-lane fault RNG.
    pub seed: u64,
    /// Per-frame drop probability (on top of any transport loss).
    pub drop_p: f64,
    /// Per-frame duplication probability.
    pub dup_p: f64,
    /// Per-frame adjacent-swap reorder probability.
    pub reorder_p: f64,
    /// Scheduled full partitions, keyed to the offered-frame count.
    pub partitions: Vec<PartitionWindow>,
    /// Step-keyed actor faults for the harness to apply.
    pub events: Vec<ChaosEvent>,
}

impl ChaosPlan {
    /// A quiet plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ChaosPlan {
            seed,
            ..ChaosPlan::default()
        }
    }

    /// Sets the per-frame drop probability.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the per-frame duplication probability.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.dup_p = p;
        self
    }

    /// Sets the per-frame adjacent-swap reorder probability.
    pub fn with_reorders(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Schedules a full partition over offered frames `[from, until)`.
    pub fn partition(mut self, from: u64, until: u64) -> Self {
        self.partitions.push(PartitionWindow { from, until });
        self
    }

    /// Schedules a silent client death at a consumed-step count.
    pub fn kill_client(mut self, client: u32, at_step: u64) -> Self {
        self.events.push(ChaosEvent::KillClient { client, at_step });
        self
    }

    /// Schedules a `DataServer` crash (supervised restart) at a
    /// consumed-step count.
    pub fn crash_server(mut self, at_step: u64) -> Self {
        self.events.push(ChaosEvent::CrashServer { at_step });
        self
    }

    /// Schedules a constructor mailbox stall at a consumed-step count.
    pub fn stall_constructor(mut self, index: usize, at_step: u64, stall: Duration) -> Self {
        self.events.push(ChaosEvent::StallConstructor {
            index,
            at_step,
            stall,
        });
        self
    }

    /// The events keyed to exactly `step`, in plan order.
    pub fn events_at(&self, step: u64) -> impl Iterator<Item = ChaosEvent> + '_ {
        self.events
            .iter()
            .copied()
            .filter(move |e| e.at_step() == step)
    }
}

/// Global frame-fault counters shared by every lane of a
/// [`ChaosTransport`].
#[derive(Debug, Default)]
struct FrameFaults {
    offered: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
}

/// A point-in-time snapshot of a [`ChaosTransport`]'s injected faults
/// ([`ChaosTransport::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames offered to the transport (both directions).
    pub offered: u64,
    /// Frames eaten (probability drops + partition windows + blocked
    /// links).
    pub dropped: u64,
    /// Frames sent twice.
    pub duplicated: u64,
    /// Frames held back one send (adjacent swap).
    pub reordered: u64,
    /// Connections opened through the transport.
    pub links: usize,
}

/// Manual fault control over one connection: the chaos harness blocks a
/// link to partition a single client without touching the rest of the
/// fleet. Obtained from [`ChaosTransport::links`], in `pair()` call
/// order.
#[derive(Debug, Default)]
pub struct LinkChaos {
    blocked: AtomicBool,
}

impl LinkChaos {
    /// Partitions the link: both directions drop every frame.
    pub fn block(&self) {
        self.blocked.store(true, Ordering::SeqCst);
    }

    /// Heals the link.
    pub fn unblock(&self) {
        self.blocked.store(false, Ordering::SeqCst);
    }

    /// Whether the link is currently partitioned.
    pub fn is_blocked(&self) -> bool {
        self.blocked.load(Ordering::SeqCst)
    }
}

/// Per-lane mutable fault state: the seeded RNG and the at-most-one
/// frame held back for an adjacent-swap reorder.
#[derive(Debug)]
struct LaneState {
    rng: SimRng,
    held: Option<WireFrame>,
}

/// The sending half of one chaos-wrapped lane. Faults are injected on
/// the send side only — the inner receiver sees the perturbed stream —
/// so the wrapper composes with any inner transport, including TCP.
struct ChaosTx {
    inner: Box<dyn FrameTx>,
    drop_p: f64,
    dup_p: f64,
    reorder_p: f64,
    partitions: Arc<Vec<PartitionWindow>>,
    link: Arc<LinkChaos>,
    faults: Arc<FrameFaults>,
    lane: Mutex<LaneState>,
}

impl FrameTx for ChaosTx {
    fn send(&self, frame: WireFrame) -> Result<(), NetError> {
        let n = self.faults.offered.fetch_add(1, Ordering::SeqCst);
        let mut lane = self.lane.lock().expect("chaos lane poisoned");
        if self.link.is_blocked() || self.partitions.iter().any(|w| n >= w.from && n < w.until) {
            // Partitioned: the frame (and anything held) never arrives.
            // Loss is invisible to the sender, like a real datagram.
            self.faults.dropped.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        if lane.rng.chance(self.drop_p) {
            self.faults.dropped.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        if lane.held.is_none() && lane.rng.chance(self.reorder_p) {
            // Hold this frame back; it rides out *after* the next send
            // on this lane — an adjacent swap, which is exactly the
            // reordering a multi-path network produces.
            lane.held = Some(frame);
            self.faults.reordered.fetch_add(1, Ordering::SeqCst);
            return Ok(());
        }
        let dup = lane.rng.chance(self.dup_p);
        self.inner.send(frame.clone())?;
        if dup {
            self.faults.duplicated.fetch_add(1, Ordering::SeqCst);
            self.inner.send(frame)?;
        }
        if let Some(held) = lane.held.take() {
            self.inner.send(held)?;
        }
        Ok(())
    }
}

impl Drop for ChaosTx {
    fn drop(&mut self) {
        // Flush a held frame so teardown handshakes on an otherwise
        // quiet lane are delayed, not lost forever.
        if let Ok(mut lane) = self.lane.lock() {
            if let Some(held) = lane.held.take() {
                let _ = self.inner.send(held);
            }
        }
    }
}

/// A fault-injecting decorator over any [`Transport`]. Every connection
/// opened through it has *both* endpoints' send halves wrapped, so
/// client→server frames (Hello/Subscribe/Ack/Credit/Close) are
/// perturbed just like server→client batches. Fault decisions come
/// from seeded per-lane RNGs — the same [`ChaosPlan`] replays the same
/// perturbation.
pub struct ChaosTransport {
    inner: Arc<dyn Transport>,
    plan: ChaosPlan,
    partitions: Arc<Vec<PartitionWindow>>,
    faults: Arc<FrameFaults>,
    links: Mutex<Vec<Arc<LinkChaos>>>,
    lanes: AtomicU64,
}

impl ChaosTransport {
    /// Wraps `inner` under `plan`'s frame-fault schedule.
    pub fn new(inner: Arc<dyn Transport>, plan: ChaosPlan) -> Self {
        let partitions = Arc::new(plan.partitions.clone());
        ChaosTransport {
            inner,
            plan,
            partitions,
            faults: Arc::new(FrameFaults::default()),
            links: Mutex::new(Vec::new()),
            lanes: AtomicU64::new(0),
        }
    }

    /// The manual per-link controls, one per `pair()` call so far, in
    /// open order.
    pub fn links(&self) -> Vec<Arc<LinkChaos>> {
        self.links.lock().expect("chaos links poisoned").clone()
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            offered: self.faults.offered.load(Ordering::SeqCst),
            dropped: self.faults.dropped.load(Ordering::SeqCst),
            duplicated: self.faults.duplicated.load(Ordering::SeqCst),
            reordered: self.faults.reordered.load(Ordering::SeqCst),
            links: self.links.lock().expect("chaos links poisoned").len(),
        }
    }

    fn wrap_tx(&self, inner: Box<dyn FrameTx>, link: Arc<LinkChaos>) -> Box<dyn FrameTx> {
        let lane = self.lanes.fetch_add(1, Ordering::SeqCst);
        Box::new(ChaosTx {
            inner,
            drop_p: self.plan.drop_p,
            dup_p: self.plan.dup_p,
            reorder_p: self.plan.reorder_p,
            partitions: self.partitions.clone(),
            link,
            faults: self.faults.clone(),
            lane: Mutex::new(LaneState {
                // Decorrelate lanes the same way SimTransport does.
                rng: SimRng::seed(self.plan.seed ^ (lane << 32) ^ lane),
                held: None,
            }),
        })
    }
}

impl Transport for ChaosTransport {
    fn pair(&self) -> (WireConn, WireConn) {
        let (client_end, server_end) = self.inner.pair();
        let link = Arc::new(LinkChaos::default());
        self.links
            .lock()
            .expect("chaos links poisoned")
            .push(link.clone());
        let client_end = WireConn {
            tx: self.wrap_tx(client_end.tx, link.clone()),
            rx: client_end.rx,
        };
        let server_end = WireConn {
            tx: self.wrap_tx(server_end.tx, link),
            rx: server_end.rx,
        };
        (client_end, server_end)
    }

    fn name(&self) -> &'static str {
        "chaos"
    }

    fn serializes(&self) -> bool {
        self.inner.serializes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::net::LoopbackTransport;

    fn burst(plan: &ChaosPlan, frames: u64) -> (Vec<u64>, ChaosStats) {
        let chaos = ChaosTransport::new(Arc::new(LoopbackTransport), plan.clone());
        let (client_end, server_end) = chaos.pair();
        for step in 0..frames {
            let _ = client_end.tx.send(WireFrame::Ack { client: 1, step });
        }
        drop(client_end);
        let mut rx = server_end.rx;
        let mut seen = Vec::new();
        while let Ok(frame) = rx.recv(Duration::from_millis(50)) {
            if let WireFrame::Ack { step, .. } = frame {
                seen.push(step);
            }
        }
        (seen, chaos.stats())
    }

    #[test]
    fn same_seed_replays_the_same_perturbation() {
        let plan = ChaosPlan::seeded(99)
            .with_drops(0.2)
            .with_duplicates(0.1)
            .with_reorders(0.1);
        let (a, sa) = burst(&plan, 200);
        let (b, sb) = burst(&plan, 200);
        assert_eq!(a, b, "same plan must replay the same stream");
        assert_eq!(sa, sb);
        assert!(sa.dropped > 0 && sa.duplicated > 0 && sa.reordered > 0);

        let (c, _) = burst(&ChaosPlan::seeded(100).with_drops(0.2), 200);
        assert_ne!(a, c, "a different seed must perturb differently");
    }

    #[test]
    fn quiet_plan_is_a_transparent_decorator() {
        let (seen, stats) = burst(&ChaosPlan::seeded(7), 50);
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        assert_eq!(stats.dropped + stats.duplicated + stats.reordered, 0);
        assert_eq!(stats.offered, 50);
    }

    #[test]
    fn partition_window_eats_exactly_its_range() {
        let (seen, stats) = burst(&ChaosPlan::seeded(7).partition(10, 20), 50);
        let expected: Vec<u64> = (0..50).filter(|s| !(10..20).contains(s)).collect();
        assert_eq!(seen, expected);
        assert_eq!(stats.dropped, 10);
    }

    #[test]
    fn blocked_link_partitions_both_directions() {
        let chaos = ChaosTransport::new(Arc::new(LoopbackTransport), ChaosPlan::seeded(1));
        let (client_end, server_end) = chaos.pair();
        let link = chaos.links()[0].clone();
        link.block();
        let _ = client_end.tx.send(WireFrame::Ack { client: 1, step: 0 });
        let _ = server_end.tx.send(WireFrame::Close { client: 1 });
        let mut srx = server_end.rx;
        let mut crx = client_end.rx;
        assert!(srx.recv(Duration::from_millis(20)).is_err());
        assert!(crx.recv(Duration::from_millis(20)).is_err());
        link.unblock();
        let _ = client_end.tx.send(WireFrame::Ack { client: 1, step: 1 });
        assert!(matches!(
            srx.recv(Duration::from_millis(200)),
            Ok(WireFrame::Ack { step: 1, .. })
        ));
        assert_eq!(chaos.stats().dropped, 2);
    }

    #[test]
    fn step_keyed_events_replay_from_the_plan() {
        let plan = ChaosPlan::seeded(3)
            .kill_client(5, 8)
            .crash_server(8)
            .stall_constructor(1, 12, Duration::from_millis(40));
        let at8: Vec<ChaosEvent> = plan.events_at(8).collect();
        assert_eq!(
            at8,
            vec![
                ChaosEvent::KillClient {
                    client: 5,
                    at_step: 8
                },
                ChaosEvent::CrashServer { at_step: 8 },
            ]
        );
        assert_eq!(plan.events_at(3).count(), 0);
        assert_eq!(plan.events_at(12).count(), 1);
    }
}
