//! The deployment-agnostic pipeline core.
//!
//! Both deployments of the pipeline — the deterministic simulation path
//! ([`crate::system::MegaScaleData`]) and the threaded actor runtime
//! ([`crate::system::runtime::ThreadedPipeline`]) — run the same logical
//! step: synthesize a plan from gathered buffer metadata (serving it from
//! a Replay Mode store when one is installed and validates), then assemble
//! per-bucket batches from the popped samples. [`PipelineCore`] owns that
//! shared logic so the two paths cannot drift; the deployments differ only
//! in *where* loaders and constructors live (inline structs vs. supervised
//! actors) and how samples travel between them.

use std::collections::HashMap;

use msd_data::Sample;
use serde::{Deserialize, Serialize};

use crate::buffer::BufferInfo;
use crate::constructor::{ConstructedBatch, DataConstructor};
use crate::dgraph::DGraphError;
use crate::plan::LoadingPlan;
use crate::planner::{PhaseBreakdown, Planner, PlannerCheckpoint};
use crate::replay::PlanStore;

/// One synthesized plan plus how it was produced.
#[derive(Debug, Clone)]
pub struct PlanOutcome {
    /// The plan for this step.
    pub plan: LoadingPlan,
    /// Planner phase breakdown (replayed steps only account broadcast).
    pub phases: PhaseBreakdown,
    /// Whether the plan was adopted from the replay store.
    pub replayed: bool,
}

/// Serializable restart snapshot of a [`PipelineCore`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreCheckpoint {
    /// Planner state (step counter + RNG).
    pub planner: PlannerCheckpoint,
    /// Steps served from the replay store so far.
    pub replayed_steps: u64,
}

/// Plan synthesis + batch assembly shared by every deployment.
pub struct PipelineCore {
    planner: Planner,
    replay: Option<PlanStore>,
    /// Steps served from the replay store (when one is installed).
    pub replayed_steps: u64,
}

impl PipelineCore {
    /// Wraps a planner with no replay store installed.
    pub fn new(planner: Planner) -> Self {
        PipelineCore {
            planner,
            replay: None,
            replayed_steps: 0,
        }
    }

    /// Installs a Replay Mode plan store (paper §9): steps whose stored
    /// plan validates against the live fleet's buffers are adopted without
    /// running the strategy; the rest plan live.
    pub fn set_replay_store(&mut self, store: PlanStore) {
        self.replay = Some(store);
    }

    /// The installed replay store, if any.
    pub fn replay_store(&self) -> Option<&PlanStore> {
        self.replay.as_ref()
    }

    /// Access to the planner.
    pub fn planner(&mut self) -> &mut Planner {
        &mut self.planner
    }

    /// Read-only access to the planner.
    pub fn planner_ref(&self) -> &Planner {
        &self.planner
    }

    /// Synthesizes the plan for the next step from gathered buffer
    /// metadata: replay-store adoption when the stored plan validates,
    /// live strategy execution otherwise.
    pub fn synthesize(&mut self, info: &BufferInfo) -> Result<PlanOutcome, DGraphError> {
        let replayed: Option<LoadingPlan> = self.replay.as_ref().and_then(|store| {
            let step = self.planner.step();
            let stored = store.get(step)?;
            let buckets = self
                .planner
                .tree()
                .bucket_count(self.planner.config.axis, self.planner.config.group_size);
            crate::replay::validate_stored(stored, info, buckets)
                .ok()
                .map(|()| stored.clone())
        });
        match replayed {
            Some(stored) => {
                let plan = self.planner.adopt_plan(stored);
                let phases = PhaseBreakdown {
                    broadcast_ns: self.planner.broadcast_cost_ns(&plan),
                    ..PhaseBreakdown::default()
                };
                self.replayed_steps += 1;
                Ok(PlanOutcome {
                    plan,
                    phases,
                    replayed: true,
                })
            }
            None => {
                let (plan, phases) = self.planner.generate(info)?;
                Ok(PlanOutcome {
                    plan,
                    phases,
                    replayed: false,
                })
            }
        }
    }

    /// Assembles every bucket's batch from the popped samples, using the
    /// deployment-wide bucket → constructor mapping (`bucket % len`).
    pub fn assemble(
        constructors: &[DataConstructor],
        plan: &LoadingPlan,
        samples: &HashMap<u64, Sample>,
    ) -> Vec<ConstructedBatch> {
        plan.buckets
            .iter()
            .map(|bp| {
                let c = &constructors[Self::constructor_index(bp.bucket, constructors.len())];
                c.construct(bp, samples, &plan.broadcast_axes)
            })
            .collect()
    }

    /// Which constructor serves `bucket` in a fleet of `count`.
    pub fn constructor_index(bucket: u32, count: usize) -> usize {
        bucket as usize % count.max(1)
    }

    /// Restart snapshot (step counter, RNG, replay progress).
    pub fn checkpoint(&self) -> CoreCheckpoint {
        CoreCheckpoint {
            planner: self.planner.checkpoint(),
            replayed_steps: self.replayed_steps,
        }
    }

    /// Restores a snapshot taken by [`PipelineCore::checkpoint`].
    pub fn restore(&mut self, cp: &CoreCheckpoint) {
        self.planner.restore_checkpoint(&cp.planner);
        self.replayed_steps = cp.replayed_steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_data::catalog::coyo700m_like;
    use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
    use msd_sim::SimRng;

    use crate::buffer::BufferSummary;
    use crate::loader::{LoaderConfig, SourceLoader};
    use crate::planner::{PlannerConfig, Strategy};
    use crate::schedule::MixSchedule;

    fn fixture() -> (PipelineCore, Vec<SourceLoader>) {
        let mut rng = SimRng::seed(5);
        let catalog = coyo700m_like(&mut rng);
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 1).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let planner = Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 16,
                schedule: MixSchedule::uniform(catalog.len()),
            },
            Strategy::Vanilla,
            tree,
            catalog.sources().iter().map(|s| s.id).collect(),
            7,
        );
        let loaders: Vec<SourceLoader> = catalog
            .sources()
            .iter()
            .enumerate()
            .map(|(i, s)| SourceLoader::synthetic(s.clone(), LoaderConfig::solo(i as u32), 9))
            .collect();
        (PipelineCore::new(planner), loaders)
    }

    fn gather(loaders: &mut [SourceLoader]) -> BufferInfo {
        for l in loaders.iter_mut() {
            l.refill(16).unwrap();
        }
        BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect())
    }

    fn summaries_len(info: &BufferInfo) -> usize {
        info.summaries.iter().map(BufferSummary::len).sum()
    }

    #[test]
    fn live_synthesis_advances_steps() {
        let (mut core, mut loaders) = fixture();
        let info = gather(&mut loaders);
        assert!(summaries_len(&info) > 0);
        let out = core.synthesize(&info).unwrap();
        assert!(!out.replayed);
        assert_eq!(out.plan.step, 0);
        assert_eq!(out.plan.all_samples().len(), 16);
        assert_eq!(core.planner_ref().step(), 1);
        assert_eq!(core.replayed_steps, 0);
    }

    #[test]
    fn replay_store_is_adopted_then_falls_back() {
        // Record two steps, then replay them on an identically seeded core.
        let (mut recorder, mut loaders) = fixture();
        let mut store = PlanStore::new();
        for _ in 0..2 {
            let info = gather(&mut loaders);
            let out = recorder.synthesize(&info).unwrap();
            for id in out.plan.all_samples() {
                for l in loaders.iter_mut() {
                    l.pop(&[id]);
                }
            }
            store.insert(out.plan);
        }

        let (mut replayer, mut loaders2) = fixture();
        replayer.set_replay_store(store);
        for step in 0..2 {
            let info = gather(&mut loaders2);
            let out = replayer.synthesize(&info).unwrap();
            assert!(out.replayed, "step {step} should replay");
            assert_eq!(out.phases.gather_ns, 0);
            assert_eq!(out.phases.compute_ns, 0);
            for id in out.plan.all_samples() {
                for l in loaders2.iter_mut() {
                    l.pop(&[id]);
                }
            }
        }
        assert_eq!(replayer.replayed_steps, 2);
        // Past the store: live planning resumes at the right step.
        let info = gather(&mut loaders2);
        let out = replayer.synthesize(&info).unwrap();
        assert!(!out.replayed);
        assert_eq!(out.plan.step, 2);
    }

    #[test]
    fn checkpoint_restore_resumes_identical_plans() {
        let (mut a, mut loaders) = fixture();
        let info = gather(&mut loaders);
        a.synthesize(&info).unwrap();
        let cp = a.checkpoint();

        // A fresh core restored from the checkpoint plans the same next
        // step the original would.
        let info2 = gather(&mut loaders);
        let pa = a.synthesize(&info2).unwrap();
        let (mut a2, _) = fixture();
        a2.restore(&cp);
        let pb = a2.synthesize(&info2).unwrap();
        assert_eq!(pa.plan, pb.plan);
        assert_eq!(pa.plan.step, 1);
    }
}
