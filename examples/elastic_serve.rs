//! Elastic serving: the control plane rescales the loader fleet live.
//!
//! ```text
//! cargo run --example elastic_serve
//! ```
//!
//! A 5-source pipeline serves 4 trainer clients while the data mixture
//! drifts: source 0 takes 80% of sampling for the first 8 plan steps,
//! then collapses to 4%. The [`ControllerActor`] — ticked by the serve
//! driver every step — watches the planner's mixing-weight telemetry and
//! per-loader health, spawns extra supervised loaders for the hot
//! source, and later retires them through the drain/hand-off protocol.
//! Clients never see a gap or a duplicate; every scaling event lands in
//! the GCS as an `MSDB` checkpoint a restarted deployment resumes from.

use std::time::Duration;

use megascale_data::actor::Gcs;
use megascale_data::balance::BalanceMethod;
use megascale_data::core::constructor::DataConstructor;
use megascale_data::core::loader::LoaderConfig;
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::controller::ControllerConfig;
use megascale_data::core::system::runtime::{ServeOptions, ThreadedPipeline};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::SourceSpec;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed(5);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).expect("mesh");
    let tree = ClientPlaceTree::from_device_mesh(&mesh);

    // The drifting mixture: scorching source 0, then nearly idle.
    let schedule = MixSchedule::Staged(vec![
        (0, vec![0.8, 0.05, 0.05, 0.05, 0.05]),
        (8, vec![0.04, 0.24, 0.24, 0.24, 0.24]),
    ]);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule,
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: megascale_data::balance::BackboneShape {
                layers: 2,
                hidden: 128,
                mlp_ratio: 4.0,
                heads: 2,
                vocab: 1000,
                experts_per_token: 1,
            },
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    );
    let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, 400_000),
            )
        })
        .collect();
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();

    // A fast-reacting controller so the demo scales within a few steps.
    let controller = ControllerConfig {
        alpha: 0.6,
        patience: 2,
        max_loaders_per_source: 3,
        ..ControllerConfig::default()
    };
    let mut pipeline =
        ThreadedPipeline::new_with(sources, planner, constructors, 99, Gcs::new(), controller);
    println!(
        "spawned {} loaders across {} sources",
        pipeline.loaders().len(),
        catalog.len()
    );

    let steps = 20u64;
    let mut session = pipeline.serve(ServeOptions {
        clients: 4,
        steps,
        refill_target: 32,
        queue_depth: 3,
        control_interval: 1, // Tick the controller every serve step.
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                let mut pulled = 0u64;
                while client.next().is_some() {
                    pulled += 1;
                }
                (client.id, pulled)
            })
        })
        .collect();
    for h in handles {
        let (id, pulled) = h.join().expect("client thread");
        assert_eq!(pulled, steps, "client {id} missed steps");
        println!("client {id}: {pulled}/{steps} batches, gap-free");
    }
    assert_eq!(session.join(), steps, "driver fell short");

    let status = pipeline.controller_status().expect("controller status");
    println!(
        "controller: {} ticks, {} scale-ups, {} retirements, {} rebalances ({} GCS-checkpointed events)",
        status.ticks, status.scale_ups, status.scale_downs, status.rebalances, status.checkpointed_events,
    );
    let stats = pipeline.stats();
    println!("final topology (loaders per source):");
    for (source, count) in stats.loaders_per_source() {
        println!("  source {:>2}: {count} loader(s)", source.0);
    }
    println!(
        "fleet health: {} buffered samples across {} loaders",
        stats.total_buffered(),
        stats.loaders.len()
    );
    pipeline.shutdown();
    println!("done: the mixture drifted, the fleet followed, no client noticed.");
}
