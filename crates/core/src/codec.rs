//! Compact binary codec for hot-path GCS state.
//!
//! Every plan step writes three kinds of durable state to the control
//! store: the planner checkpoint, a plan-log entry (the step's pop
//! directives), and per-loader checkpoints. These used to serialize
//! through text JSON — kilobytes of quoted field names and decimal
//! integers on the per-step critical path. This module gives each of
//! them a length-prefixed little-endian binary encoding under a shared
//! `MSDB` frame:
//!
//! ```text
//! +---------+------------+---------+----------------------+
//! | MSDB(4) | version(1) | kind(1) | kind-specific fields |
//! +---------+------------+---------+----------------------+
//! ```
//!
//! Decoders are *compatibility readers*: a blob that does not start with
//! the `MSDB` magic is fed to the legacy JSON parser, so checkpoints
//! written before this codec (or by tooling that still emits JSON)
//! restore unchanged, and genuinely corrupt state still surfaces as an
//! error for the restart paths' fault-log fallbacks.
//!
//! Since frame version 2 every frame also carries a trailing 32-bit
//! FNV-1a checksum over everything before it. The same `MSDB` frames now
//! travel the distributed serving plane's wire (kinds 5–10, see
//! [`crate::system::net::WireFrame`]), where bit rot is a live threat,
//! not a theoretical one: any single-bit corruption anywhere in a frame
//! is guaranteed to surface as a [`CodecError`], never as a silently
//! mis-decoded value.

use std::collections::BTreeMap;

use bytes::{BufMut, Bytes};

use crate::loader::LoaderCheckpoint;
use crate::planner::PlannerCheckpoint;
use crate::system::controller::{ControllerCheckpoint, SlotRecord};
use crate::system::core::CoreCheckpoint;
use crate::system::net::{BatchPayload, WireFrame};

/// Frame magic for all binary GCS blobs.
pub const MAGIC: [u8; 4] = *b"MSDB";
/// Current frame version (2 added the trailing FNV-1a frame checksum).
pub const VERSION: u8 = 2;

/// Frame kind: planner checkpoint ([`CoreCheckpoint`]).
const KIND_PLANNER: u8 = 1;
/// Frame kind: plan-log entry (pop directives).
const KIND_PLAN_LOG: u8 = 2;
/// Frame kind: loader checkpoint ([`LoaderCheckpoint`]).
const KIND_LOADER: u8 = 3;
/// Frame kind: elastic-controller checkpoint ([`ControllerCheckpoint`]).
const KIND_CONTROLLER: u8 = 4;
/// Wire kind: client introduction ([`WireFrame::Hello`]).
const KIND_WIRE_HELLO: u8 = 5;
/// Wire kind: stream (re)subscription ([`WireFrame::Subscribe`]).
const KIND_WIRE_SUBSCRIBE: u8 = 6;
/// Wire kind: one serve step's batch ([`WireFrame::Batch`]).
const KIND_WIRE_BATCH: u8 = 7;
/// Wire kind: batch receipt ([`WireFrame::Ack`]).
const KIND_WIRE_ACK: u8 = 8;
/// Wire kind: flow-control credit grant ([`WireFrame::Credit`]).
const KIND_WIRE_CREDIT: u8 = 9;
/// Wire kind: clean stream teardown ([`WireFrame::Close`]).
const KIND_WIRE_CLOSE: u8 = 10;

/// Why a blob failed to decode (through both the binary and the JSON
/// fallback paths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Builds an error with the given detail (also used by the wire
    /// payload parser in [`crate::system::net`]).
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        CodecError(detail.into())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Whether `data` carries the binary frame magic.
pub fn is_binary(data: &[u8]) -> bool {
    data.len() >= MAGIC.len() + 2 && data[..MAGIC.len()] == MAGIC
}

/// A bounds-checked little-endian reader (the `Buf` accessors panic on
/// short input; decoders must return errors instead).
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() < n {
            return Err(CodecError(format!(
                "truncated frame: wanted {n} more bytes, have {}",
                self.data.len()
            )));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(&self) -> Result<(), CodecError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(CodecError(format!(
                "{} trailing bytes after frame",
                self.data.len()
            )))
        }
    }
}

fn frame(kind: u8, capacity: usize) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MAGIC.len() + 2 + capacity + CHECKSUM_LEN);
    buf.put_slice(&MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(kind);
    buf
}

/// Trailing checksum width.
const CHECKSUM_LEN: usize = 4;

/// 32-bit FNV-1a over `data`. Each step `h = (h ^ byte) * prime` is
/// injective in `h` (the prime is odd, hence invertible mod 2³²), so two
/// frames differing in exactly one byte can never share a checksum —
/// single-bit corruption is *guaranteed* to be caught, not just likely.
fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in data {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Appends the frame checksum; every encoder's final step.
fn seal(mut buf: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&buf);
    buf.put_u32_le(sum);
    buf
}

/// Strips and validates the frame header plus the trailing checksum,
/// returning a reader over the body only.
fn open_frame(data: &[u8], kind: u8) -> Result<Reader<'_>, CodecError> {
    let (got, r) = open_any_frame(data)?;
    if got != kind {
        return Err(CodecError(format!(
            "frame kind mismatch: expected {kind}, got {got}"
        )));
    }
    Ok(r)
}

/// Like [`open_frame`], but yields whichever kind the frame carries
/// (the wire decoder dispatches on it).
fn open_any_frame(data: &[u8]) -> Result<(u8, Reader<'_>), CodecError> {
    if data.len() < MAGIC.len() + 2 + CHECKSUM_LEN {
        return Err(CodecError(format!("frame too short: {} bytes", data.len())));
    }
    let (body, tail) = data.split_at(data.len() - CHECKSUM_LEN);
    let stored = u32::from_le_bytes(tail.try_into().expect("4-byte tail"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(CodecError(format!(
            "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
        )));
    }
    let mut r = Reader { data: body };
    let magic = r.take(MAGIC.len())?;
    if magic != MAGIC {
        return Err(CodecError("missing MSDB magic".into()));
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(CodecError(format!("unsupported frame version {version}")));
    }
    let kind = r.u8()?;
    Ok((kind, r))
}

fn put_rng(buf: &mut Vec<u8>, state: &[u64; 4]) {
    for w in state {
        buf.put_u64_le(*w);
    }
}

fn get_rng(r: &mut Reader<'_>) -> Result<[u64; 4], CodecError> {
    Ok([r.u64()?, r.u64()?, r.u64()?, r.u64()?])
}

/// Encodes a planner checkpoint (54 bytes, vs ~10× as JSON).
pub fn encode_planner_checkpoint(cp: &CoreCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_PLANNER, 6 * 8);
    buf.put_u64_le(cp.planner.step);
    put_rng(&mut buf, &cp.planner.rng_state);
    buf.put_u64_le(cp.replayed_steps);
    seal(buf)
}

/// Decodes a planner checkpoint, falling back to the legacy JSON reader
/// for pre-codec blobs.
pub fn decode_planner_checkpoint(data: &[u8]) -> Result<CoreCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<CoreCheckpoint>(data)
            .map_err(|e| CodecError(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_PLANNER)?;
    let step = r.u64()?;
    let rng_state = get_rng(&mut r)?;
    let replayed_steps = r.u64()?;
    r.finish()?;
    Ok(CoreCheckpoint {
        planner: PlannerCheckpoint { step, rng_state },
        replayed_steps,
    })
}

/// Encodes one plan-log entry: the step's pop directives
/// (`loader id → sample ids`, ids in plan order).
pub fn encode_plan_log(directives: &BTreeMap<u32, Vec<u64>>) -> Vec<u8> {
    let ids: usize = directives.values().map(Vec::len).sum();
    let mut buf = frame(KIND_PLAN_LOG, 4 + directives.len() * 8 + ids * 8);
    buf.put_u32_le(directives.len() as u32);
    for (loader, samples) in directives {
        buf.put_u32_le(*loader);
        buf.put_u32_le(samples.len() as u32);
        for id in samples {
            buf.put_u64_le(*id);
        }
    }
    seal(buf)
}

/// Decodes a plan-log entry, falling back to the legacy JSON reader.
pub fn decode_plan_log(data: &[u8]) -> Result<BTreeMap<u32, Vec<u64>>, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<BTreeMap<u32, Vec<u64>>>(data)
            .map_err(|e| CodecError(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_PLAN_LOG)?;
    let entries = r.u32()? as usize;
    let mut out = BTreeMap::new();
    for _ in 0..entries {
        let loader = r.u32()?;
        let count = r.u32()? as usize;
        let mut samples = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            samples.push(r.u64()?);
        }
        out.insert(loader, samples);
    }
    r.finish()?;
    Ok(out)
}

/// Encodes a loader checkpoint (58 bytes).
pub fn encode_loader_checkpoint(cp: &LoaderCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_LOADER, 4 + 6 * 8);
    buf.put_u32_le(cp.loader_id);
    buf.put_u64_le(cp.cursor);
    put_rng(&mut buf, &cp.rng_state);
    buf.put_u64_le(cp.version);
    seal(buf)
}

/// Decodes a loader checkpoint, falling back to the legacy JSON reader.
pub fn decode_loader_checkpoint(data: &[u8]) -> Result<LoaderCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<LoaderCheckpoint>(data)
            .map_err(|e| CodecError(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_LOADER)?;
    let loader_id = r.u32()?;
    let cursor = r.u64()?;
    let rng_state = get_rng(&mut r)?;
    let version = r.u64()?;
    r.finish()?;
    Ok(LoaderCheckpoint {
        loader_id,
        cursor,
        rng_state,
        version,
    })
}

/// Encodes an elastic-controller checkpoint: event sequence, id
/// allocator, lifetime decision counters, and the live loader topology
/// (16 bytes per slot, vs ~5× as JSON).
pub fn encode_controller_checkpoint(cp: &ControllerCheckpoint) -> Vec<u8> {
    let mut buf = frame(KIND_CONTROLLER, 4 * 8 + 8 + cp.slots.len() * 16);
    buf.put_u64_le(cp.seq);
    buf.put_u32_le(cp.next_loader_id);
    buf.put_u64_le(cp.scale_ups);
    buf.put_u64_le(cp.scale_downs);
    buf.put_u64_le(cp.rebalances);
    buf.put_u32_le(cp.slots.len() as u32);
    for slot in &cp.slots {
        buf.put_u32_le(slot.source);
        buf.put_u32_le(slot.loader_id);
        buf.put_u32_le(slot.shard);
        buf.put_u32_le(slot.shards);
    }
    seal(buf)
}

/// Decodes an elastic-controller checkpoint, falling back to the legacy
/// JSON reader for pre-codec blobs.
pub fn decode_controller_checkpoint(data: &[u8]) -> Result<ControllerCheckpoint, CodecError> {
    if !is_binary(data) {
        return serde_json::from_slice::<ControllerCheckpoint>(data)
            .map_err(|e| CodecError(format!("not a binary frame and not legacy JSON: {e}")));
    }
    let mut r = open_frame(data, KIND_CONTROLLER)?;
    let seq = r.u64()?;
    let next_loader_id = r.u32()?;
    let scale_ups = r.u64()?;
    let scale_downs = r.u64()?;
    let rebalances = r.u64()?;
    let count = r.u32()? as usize;
    let mut slots = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        slots.push(SlotRecord {
            source: r.u32()?,
            loader_id: r.u32()?,
            shard: r.u32()?,
            shards: r.u32()?,
        });
    }
    r.finish()?;
    Ok(ControllerCheckpoint {
        seq,
        next_loader_id,
        scale_ups,
        scale_downs,
        rebalances,
        slots,
    })
}

/// Encodes one wire frame of the distributed serving plane's MSDB
/// protocol. A [`WireFrame::Batch`] carrying a shared in-process payload
/// is serialized here — encoding is exactly the point where a batch
/// leaves shared memory.
pub fn encode_wire_frame(frame_in: &WireFrame) -> Vec<u8> {
    match frame_in {
        WireFrame::Hello { client, rank } => {
            let mut buf = frame(KIND_WIRE_HELLO, 8);
            buf.put_u32_le(*client);
            buf.put_u32_le(*rank);
            seal(buf)
        }
        WireFrame::Subscribe {
            client,
            from_step,
            credits,
        } => {
            let mut buf = frame(KIND_WIRE_SUBSCRIBE, 16);
            buf.put_u32_le(*client);
            buf.put_u64_le(*from_step);
            buf.put_u32_le(*credits);
            seal(buf)
        }
        WireFrame::Batch {
            client,
            step,
            payload,
        } => {
            let encoded = payload.encoded();
            let mut buf = frame(KIND_WIRE_BATCH, 16 + encoded.len());
            buf.put_u32_le(*client);
            buf.put_u64_le(*step);
            buf.put_u32_le(encoded.len() as u32);
            buf.put_slice(&encoded);
            seal(buf)
        }
        WireFrame::Ack { client, step } => {
            let mut buf = frame(KIND_WIRE_ACK, 12);
            buf.put_u32_le(*client);
            buf.put_u64_le(*step);
            seal(buf)
        }
        WireFrame::Credit { client, grant } => {
            let mut buf = frame(KIND_WIRE_CREDIT, 8);
            buf.put_u32_le(*client);
            buf.put_u32_le(*grant);
            seal(buf)
        }
        WireFrame::Close { client } => {
            let mut buf = frame(KIND_WIRE_CLOSE, 4);
            buf.put_u32_le(*client);
            seal(buf)
        }
    }
}

/// Decodes one wire frame. Unlike the GCS checkpoint decoders there is
/// no JSON fallback — wire frames never had a legacy encoding — so any
/// non-frame byte string is an error. A decoded batch carries its
/// payload as [`BatchPayload::Encoded`] bytes; parsing the batch itself
/// is deferred to [`BatchPayload::batch`] so relays never pay for it.
pub fn decode_wire_frame(data: &[u8]) -> Result<WireFrame, CodecError> {
    let (kind, mut r) = open_any_frame(data)?;
    let frame_out = match kind {
        KIND_WIRE_HELLO => WireFrame::Hello {
            client: r.u32()?,
            rank: r.u32()?,
        },
        KIND_WIRE_SUBSCRIBE => WireFrame::Subscribe {
            client: r.u32()?,
            from_step: r.u64()?,
            credits: r.u32()?,
        },
        KIND_WIRE_BATCH => {
            let client = r.u32()?;
            let step = r.u64()?;
            let len = r.u32()? as usize;
            let payload = Bytes::copy_from_slice(r.take(len)?);
            WireFrame::Batch {
                client,
                step,
                payload: BatchPayload::Encoded(payload),
            }
        }
        KIND_WIRE_ACK => WireFrame::Ack {
            client: r.u32()?,
            step: r.u64()?,
        },
        KIND_WIRE_CREDIT => WireFrame::Credit {
            client: r.u32()?,
            grant: r.u32()?,
        },
        KIND_WIRE_CLOSE => WireFrame::Close { client: r.u32()? },
        other => {
            return Err(CodecError(format!("not a wire frame kind: {other}")));
        }
    };
    r.finish()?;
    Ok(frame_out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_cp() -> CoreCheckpoint {
        CoreCheckpoint {
            planner: PlannerCheckpoint {
                step: 42,
                rng_state: [1, u64::MAX, 3, 0x1234_5678_9ABC_DEF0],
            },
            replayed_steps: 7,
        }
    }

    fn loader_cp() -> LoaderCheckpoint {
        LoaderCheckpoint {
            loader_id: 9,
            cursor: 1 << 40,
            rng_state: [5, 6, 7, 8],
            version: 3,
        }
    }

    fn directives() -> BTreeMap<u32, Vec<u64>> {
        BTreeMap::from([(0, vec![10, 11, 12]), (3, vec![]), (7, vec![u64::MAX])])
    }

    fn controller_cp() -> ControllerCheckpoint {
        ControllerCheckpoint {
            seq: 11,
            next_loader_id: 17,
            scale_ups: 4,
            scale_downs: 2,
            rebalances: 1,
            slots: vec![
                SlotRecord {
                    source: 0,
                    loader_id: 0,
                    shard: 0,
                    shards: 1,
                },
                SlotRecord {
                    source: 0,
                    loader_id: 16,
                    shard: 1,
                    shards: 2,
                },
                SlotRecord {
                    source: 3,
                    loader_id: 3,
                    shard: 0,
                    shards: 1,
                },
            ],
        }
    }

    #[test]
    fn controller_checkpoint_roundtrips_and_falls_back() {
        let cp = controller_cp();
        assert_eq!(
            decode_controller_checkpoint(&encode_controller_checkpoint(&cp)).unwrap(),
            cp
        );
        // Empty topology is legal (everything retired mid-teardown).
        let empty = ControllerCheckpoint {
            slots: vec![],
            ..controller_cp()
        };
        assert_eq!(
            decode_controller_checkpoint(&encode_controller_checkpoint(&empty)).unwrap(),
            empty
        );
        // Legacy JSON blobs decode through the fallback reader.
        let json = serde_json::to_vec(&cp).unwrap();
        assert_eq!(decode_controller_checkpoint(&json).unwrap(), cp);
        // Corruption surfaces as an error, not a panic.
        let full = encode_controller_checkpoint(&cp);
        assert!(decode_controller_checkpoint(&full[..full.len() - 3]).is_err());
        assert!(decode_controller_checkpoint(b"{nope").is_err());
        // Kind confusion: a controller frame is not a loader checkpoint.
        assert!(decode_loader_checkpoint(&full).is_err());
    }

    #[test]
    fn binary_roundtrips() {
        assert_eq!(
            decode_planner_checkpoint(&encode_planner_checkpoint(&core_cp())).unwrap(),
            core_cp()
        );
        assert_eq!(
            decode_loader_checkpoint(&encode_loader_checkpoint(&loader_cp())).unwrap(),
            loader_cp()
        );
        assert_eq!(
            decode_plan_log(&encode_plan_log(&directives())).unwrap(),
            directives()
        );
    }

    #[test]
    fn binary_is_far_smaller_than_json() {
        let bin = encode_planner_checkpoint(&core_cp());
        let json = serde_json::to_vec(&core_cp()).unwrap();
        assert!(
            bin.len() < json.len(),
            "binary {} vs JSON {}",
            bin.len(),
            json.len()
        );
        // The per-step dominant blob is the plan log (one id per popped
        // sample); there the fixed 8-byte encoding wins big over decimal.
        // Realistic ids carry the source/shard prefix in the high bits
        // (see `SourceLoader::make_id`), so their decimal forms are long.
        let big: BTreeMap<u32, Vec<u64>> =
            BTreeMap::from([(0, (0..128u64).map(|i| u64::MAX - (i << 16)).collect())]);
        let bin = encode_plan_log(&big);
        let json = serde_json::to_vec(&big).unwrap();
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs JSON {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn legacy_json_blobs_still_decode() {
        let json = serde_json::to_vec(&core_cp()).unwrap();
        assert_eq!(decode_planner_checkpoint(&json).unwrap(), core_cp());
        let json = serde_json::to_vec(&loader_cp()).unwrap();
        assert_eq!(decode_loader_checkpoint(&json).unwrap(), loader_cp());
        let json = serde_json::to_vec(&directives()).unwrap();
        assert_eq!(decode_plan_log(&json).unwrap(), directives());
    }

    #[test]
    fn corrupt_blobs_error_through_both_paths() {
        // Neither magic nor JSON.
        assert!(decode_loader_checkpoint(b"{not json").is_err());
        // Valid magic, truncated body.
        let full = encode_loader_checkpoint(&loader_cp());
        for cut in [6, 10, full.len() - 1] {
            assert!(decode_loader_checkpoint(&full[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = full.clone();
        long.push(0);
        assert!(decode_loader_checkpoint(&long).is_err());
        // Kind confusion: a loader frame is not a planner checkpoint.
        assert!(decode_planner_checkpoint(&full).is_err());
        // Unknown version.
        let mut bad = full;
        bad[4] = 99;
        assert!(decode_loader_checkpoint(&bad).is_err());
    }
}
