//! `ClientPlaceTree`: the hierarchical topology the data plane schedules
//! against.
//!
//! The tree is a logical view of the trainer device mesh (paper Sec 4.1):
//! levels follow the mesh's outer-to-inner axis order and leaves are trainer
//! clients (ranks). `distribute(axis)` resolves to the nodes at that axis
//! level — e.g. with `DP=2, CP=2, TP=2`, `distribute(CP)` yields 4 buckets
//! (DP×CP consumer groups), each consumed by the TP-subtree beneath it.

use serde::{Deserialize, Serialize};

use crate::mesh::{Axis, DeviceMesh, Rank};

/// The axis argument of the `distribute` primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributeAxis {
    /// Partition across data-parallel groups (minibatches per DP rank).
    DP,
    /// Treat DP × CP ranks as uniform consumers (hybrid data parallelism).
    CP,
    /// Distribute across every rank (the encoder's world-wide DP).
    World,
}

impl DistributeAxis {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DistributeAxis::DP => "DP",
            DistributeAxis::CP => "CP",
            DistributeAxis::World => "WORLD",
        }
    }
}

/// A node in the place tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeNode {
    /// Axis this node's children subdivide (None for leaves).
    pub axis: Option<Axis>,
    /// Index among siblings.
    pub index: u32,
    /// Child nodes (empty for leaves).
    pub children: Vec<TreeNode>,
    /// The trainer rank, for leaves.
    pub rank: Option<Rank>,
}

impl TreeNode {
    /// Collects leaf ranks under this node, in rank order.
    pub fn leaves(&self) -> Vec<Rank> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out.sort_unstable();
        out
    }

    fn collect_leaves(&self, out: &mut Vec<Rank>) {
        if let Some(rank) = self.rank {
            out.push(rank);
        }
        for c in &self.children {
            c.collect_leaves(out);
        }
    }
}

/// Logical representation of the trainer device mesh.
///
/// # Examples
///
/// ```
/// use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
///
/// let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 2, 2).unwrap();
/// let tree = ClientPlaceTree::from_device_mesh(&mesh);
/// assert_eq!(tree.bucket_count(DistributeAxis::DP, None), 2);
/// assert_eq!(tree.bucket_count(DistributeAxis::CP, None), 4);
/// assert_eq!(tree.bucket_count(DistributeAxis::World, None), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientPlaceTree {
    mesh: DeviceMesh,
    root: TreeNode,
}

impl ClientPlaceTree {
    /// Builds the tree from a device mesh (levels in mesh dim order).
    pub fn from_device_mesh(mesh: &DeviceMesh) -> Self {
        fn build(
            mesh: &DeviceMesh,
            dims: &[(Axis, u32)],
            prefix: &mut Vec<(Axis, u32)>,
            index: u32,
        ) -> TreeNode {
            match dims.first() {
                None => {
                    let rank = mesh.rank_of(prefix).expect("coords valid by construction");
                    TreeNode {
                        axis: None,
                        index,
                        children: Vec::new(),
                        rank: Some(rank),
                    }
                }
                Some((axis, size)) => {
                    let children = (0..*size)
                        .map(|i| {
                            prefix.push((*axis, i));
                            let child = build(mesh, &dims[1..], prefix, i);
                            prefix.pop();
                            child
                        })
                        .collect();
                    TreeNode {
                        axis: Some(*axis),
                        index,
                        children,
                        rank: None,
                    }
                }
            }
        }
        let dims = mesh.dims().to_vec();
        let root = build(mesh, &dims, &mut Vec::new(), 0);
        ClientPlaceTree {
            mesh: mesh.clone(),
            root,
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &DeviceMesh {
        &self.mesh
    }

    /// The root node (for custom traversal / user overrides).
    pub fn root(&self) -> &TreeNode {
        &self.root
    }

    /// All trainer clients (ranks).
    pub fn clients(&self) -> Vec<Rank> {
        self.root.leaves()
    }

    /// Number of buckets `distribute(axis, group_size)` creates:
    /// `DP` → DP size; `CP` → DP×CP; `World` → world size. A `group_size`
    /// divides the count (ceil), trading balance quality for coordination
    /// cost in very large clusters (Table 2's group sweep).
    pub fn bucket_count(&self, axis: DistributeAxis, group_size: Option<u32>) -> u32 {
        let n = match axis {
            DistributeAxis::DP => self.mesh.size(Axis::DP),
            DistributeAxis::CP => self.mesh.size(Axis::DP) * self.mesh.size(Axis::CP),
            DistributeAxis::World => self.mesh.world_size(),
        };
        match group_size {
            Some(g) if g > 1 => n.div_ceil(g),
            _ => n,
        }
    }

    /// The consumer clients of each bucket, in bucket order. Every rank in
    /// the cluster appears in exactly one bucket.
    pub fn buckets(&self, axis: DistributeAxis, group_size: Option<u32>) -> Vec<Vec<Rank>> {
        let world = self.mesh.world_size();
        let base: Vec<Vec<Rank>> = match axis {
            DistributeAxis::World => (0..world).map(|r| vec![r]).collect(),
            DistributeAxis::DP => {
                let dp = self.mesh.size(Axis::DP);
                let mut buckets = vec![Vec::new(); dp as usize];
                for r in 0..world {
                    let d = self.mesh.coord(r, Axis::DP).expect("rank in range");
                    buckets[d as usize].push(r);
                }
                buckets
            }
            DistributeAxis::CP => {
                let dp = self.mesh.size(Axis::DP);
                let cp = self.mesh.size(Axis::CP);
                let mut buckets = vec![Vec::new(); (dp * cp) as usize];
                for r in 0..world {
                    let d = self.mesh.coord(r, Axis::DP).expect("rank in range");
                    let c = self.mesh.coord(r, Axis::CP).expect("rank in range");
                    buckets[(d * cp + c) as usize].push(r);
                }
                buckets
            }
        };
        match group_size {
            Some(g) if g > 1 => base
                .chunks(g as usize)
                .map(|chunk| {
                    let mut merged: Vec<Rank> = chunk.iter().flatten().copied().collect();
                    merged.sort_unstable();
                    merged
                })
                .collect(),
            _ => base,
        }
    }

    /// The bucket of `buckets(axis, group_size)` that consumes `rank`'s
    /// deliveries, or `None` when the rank lies outside the mesh. This is
    /// the placement lookup the distributed serving plane uses to map a
    /// dialing trainer rank onto its constructor bucket.
    pub fn bucket_of(
        &self,
        rank: Rank,
        axis: DistributeAxis,
        group_size: Option<u32>,
    ) -> Option<u32> {
        if rank >= self.mesh.world_size() {
            return None;
        }
        self.buckets(axis, group_size)
            .iter()
            .position(|bucket| bucket.contains(&rank))
            .map(|i| i as u32)
    }

    /// Clients excluded from data fetching when the trainer broadcasts
    /// along `axis` (the `broadcast_at` primitive): every rank whose
    /// coordinate on that axis is nonzero.
    pub fn broadcast_excluded(&self, axis: Axis) -> Vec<Rank> {
        (0..self.mesh.world_size())
            .filter(|r| self.mesh.coord(*r, axis).expect("rank in range") != 0)
            .collect()
    }

    /// Data-fetching clients after applying `broadcast_at` exclusions on
    /// the given axes.
    pub fn fetching_clients(&self, broadcast_axes: &[Axis]) -> Vec<Rank> {
        (0..self.mesh.world_size())
            .filter(|r| {
                broadcast_axes
                    .iter()
                    .all(|a| self.mesh.coord(*r, *a).expect("rank in range") == 0)
            })
            .collect()
    }

    /// The cost profile of broadcasting along `axes`: how many clients the
    /// data plane still synchronizes with directly, and how many ranks each
    /// of them re-broadcasts to (subgroup replication).
    pub fn broadcast_tradeoff(&self, axes: &[Axis]) -> BroadcastTradeoff {
        let sync_clients = self.fetching_clients(axes).len() as u32;
        let replication = axes
            .iter()
            .map(|a| self.mesh.size(*a).max(1))
            .product::<u32>()
            .max(1);
        BroadcastTradeoff {
            axes: axes.to_vec(),
            sync_clients,
            replication,
        }
    }

    /// Sec 6.2's *selective broadcasting*: chooses broadcast axes bottom-up
    /// over the tree — innermost replication-safe levels first (TP, then
    /// CP) — until at most `max_sync_clients` clients fetch directly, or
    /// no safe levels remain.
    ///
    /// Only TP and CP are candidates: TP ranks consume identical inputs
    /// and CP ranks consume shards of the same batch, so a subgroup root
    /// can re-broadcast locally. DP ranks consume *different* buckets and
    /// PP>0 stages already receive metadata only, so neither is ever
    /// selected. Each selected level multiplies per-root replication
    /// (memory + intra-group traffic) — the trade the paper describes.
    pub fn select_broadcast_axes(&self, max_sync_clients: u32) -> BroadcastTradeoff {
        let mut axes: Vec<Axis> = Vec::new();
        for (axis, size) in self.mesh.dims().iter().rev() {
            if self.fetching_clients(&axes).len() as u32 <= max_sync_clients {
                break;
            }
            if *size > 1 && matches!(axis, Axis::TP | Axis::CP) {
                axes.push(*axis);
            }
        }
        self.broadcast_tradeoff(&axes)
    }
}

/// The synchronization/replication trade-off of a broadcast-axis choice
/// (Sec 6.2, selective broadcasting).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BroadcastTradeoff {
    /// The chosen broadcast axes (innermost first).
    pub axes: Vec<Axis>,
    /// Clients the constructor synchronizes with directly.
    pub sync_clients: u32,
    /// Ranks each fetching client's payload is replicated to (itself
    /// included) via subgroup re-broadcast.
    pub replication: u32,
}

impl BroadcastTradeoff {
    /// Extra intra-subgroup bytes moved per delivered payload byte
    /// (`replication − 1` copies fan out below each fetching client).
    pub fn extra_traffic_factor(&self) -> u32 {
        self.replication.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree_2x2x2() -> ClientPlaceTree {
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 2, 2).unwrap();
        ClientPlaceTree::from_device_mesh(&mesh)
    }

    #[test]
    fn fig8_bucket_counts() {
        // Fig 8: DP=2, CP=2, TP=2 — distribute(CP) creates n=4 buckets.
        let tree = tree_2x2x2();
        assert_eq!(tree.bucket_count(DistributeAxis::DP, None), 2);
        assert_eq!(tree.bucket_count(DistributeAxis::CP, None), 4);
        assert_eq!(tree.bucket_count(DistributeAxis::World, None), 8);
    }

    #[test]
    fn group_size_reduces_buckets() {
        let tree = tree_2x2x2();
        assert_eq!(tree.bucket_count(DistributeAxis::CP, Some(2)), 2);
        assert_eq!(tree.bucket_count(DistributeAxis::World, Some(3)), 3);
        assert_eq!(tree.bucket_count(DistributeAxis::CP, Some(1)), 4);
    }

    #[test]
    fn buckets_partition_all_ranks() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 3, 2, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        for axis in [
            DistributeAxis::DP,
            DistributeAxis::CP,
            DistributeAxis::World,
        ] {
            for gs in [None, Some(2), Some(5)] {
                let buckets = tree.buckets(axis, gs);
                let mut all: Vec<Rank> = buckets.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(
                    all,
                    (0..mesh.world_size()).collect::<Vec<_>>(),
                    "axis {:?} gs {:?}",
                    axis,
                    gs
                );
            }
        }
    }

    #[test]
    fn dp_buckets_share_dp_coordinate() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 4, 1, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        for (d, bucket) in tree.buckets(DistributeAxis::DP, None).iter().enumerate() {
            for r in bucket {
                assert_eq!(mesh.coord(*r, Axis::DP).unwrap(), d as u32);
            }
        }
    }

    #[test]
    fn leaves_enumerate_world() {
        let tree = tree_2x2x2();
        assert_eq!(tree.clients(), (0..8).collect::<Vec<_>>());
        assert_eq!(tree.root().leaves().len(), 8);
    }

    #[test]
    fn broadcast_exclusion_matches_tp_coords() {
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 4).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let excluded = tree.broadcast_excluded(Axis::TP);
        // 3 of every 4 ranks are TP>0.
        assert_eq!(excluded.len(), 6);
        let fetching = tree.fetching_clients(&[Axis::TP]);
        assert_eq!(fetching.len(), 2);
        for r in &fetching {
            assert_eq!(mesh.coord(*r, Axis::TP).unwrap(), 0);
        }
    }

    #[test]
    fn multi_axis_broadcast_exclusion() {
        // The paper's VLM strategy broadcasts at TP and CP: only TP0∧CP0
        // clients fetch.
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 2, 2, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let fetching = tree.fetching_clients(&[Axis::TP, Axis::CP]);
        assert_eq!(fetching.len() as u32, 2 * 2); // PP × DP
        for r in fetching {
            assert_eq!(mesh.coord(r, Axis::TP).unwrap(), 0);
            assert_eq!(mesh.coord(r, Axis::CP).unwrap(), 0);
        }
    }

    #[test]
    fn selective_broadcast_picks_innermost_axes_first() {
        // 576-GPU mesh: PP4 × DP9 × CP4 × TP4.
        let mesh = DeviceMesh::pp_dp_cp_tp(4, 9, 4, 4).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        // No budget pressure: nothing selected.
        let t = tree.select_broadcast_axes(1000);
        assert!(t.axes.is_empty());
        assert_eq!(t.sync_clients, 576);
        assert_eq!(t.replication, 1);
        // Moderate budget: TP alone gets sync down to 144.
        let t = tree.select_broadcast_axes(150);
        assert_eq!(t.axes, vec![Axis::TP]);
        assert_eq!(t.sync_clients, 144);
        assert_eq!(t.replication, 4);
        // Tight budget: TP + CP → 36 sync clients, 16× replication.
        let t = tree.select_broadcast_axes(40);
        assert_eq!(t.axes, vec![Axis::TP, Axis::CP]);
        assert_eq!(t.sync_clients, 36);
        assert_eq!(t.replication, 16);
        assert_eq!(t.extra_traffic_factor(), 15);
    }

    #[test]
    fn selective_broadcast_never_selects_dp_or_pp() {
        // Even an impossible budget stops at TP+CP: DP buckets carry
        // different data and PP>0 is metadata-only.
        let mesh = DeviceMesh::pp_dp_cp_tp(8, 16, 2, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let t = tree.select_broadcast_axes(1);
        assert_eq!(t.axes, vec![Axis::TP, Axis::CP]);
        assert_eq!(t.sync_clients, 8 * 16); // PP × DP roots remain.
    }

    #[test]
    fn broadcast_tradeoff_consistency_with_fetching_clients() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 2, 2, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        for axes in [vec![], vec![Axis::TP], vec![Axis::TP, Axis::CP]] {
            let t = tree.broadcast_tradeoff(&axes);
            assert_eq!(t.sync_clients as usize, tree.fetching_clients(&axes).len());
            // sync × replication covers all payload-receiving ranks.
            assert_eq!(t.sync_clients * t.replication, mesh.world_size());
        }
    }

    #[test]
    fn size_one_axes_are_skipped() {
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let t = tree.select_broadcast_axes(1);
        assert!(t.axes.is_empty(), "no size>1 TP/CP to select");
        assert_eq!(t.sync_clients, 4);
    }

    #[test]
    fn bucket_of_agrees_with_buckets() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 3, 2, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        for axis in [
            DistributeAxis::DP,
            DistributeAxis::CP,
            DistributeAxis::World,
        ] {
            for gs in [None, Some(2)] {
                let buckets = tree.buckets(axis, gs);
                for r in 0..mesh.world_size() {
                    let b = tree.bucket_of(r, axis, gs).expect("rank in mesh") as usize;
                    assert!(buckets[b].contains(&r), "axis {axis:?} gs {gs:?} rank {r}");
                }
            }
        }
        assert_eq!(
            tree.bucket_of(mesh.world_size(), DistributeAxis::DP, None),
            None
        );
    }

    #[test]
    fn rebuild_after_mesh_change_is_cheap_and_consistent() {
        // Elastic resharding (Sec 6.1): rebuild the tree for a new mesh and
        // confirm bucket counts follow.
        let before =
            ClientPlaceTree::from_device_mesh(&DeviceMesh::pp_dp_cp_tp(1, 4, 2, 1).unwrap());
        assert_eq!(before.bucket_count(DistributeAxis::CP, None), 8);
        let after =
            ClientPlaceTree::from_device_mesh(&DeviceMesh::pp_dp_cp_tp(1, 2, 2, 2).unwrap());
        assert_eq!(after.bucket_count(DistributeAxis::CP, None), 4);
        assert_eq!(after.clients().len(), 8);
    }
}
