//! Integration tests for the distributed serving plane.
//!
//! The contract under test: serving trainer clients over the MSDB wire
//! protocol — loopback or a lossy simulated network — is *invisible* to
//! them. Every remote client's stream is byte-identical to what the
//! same client would pull from a local `ThreadedPipeline::serve`
//! session, a dropped connection resumes gap-free and duplicate-free
//! from the client's cursor, and credit-based flow control keeps
//! constructor queues bounded even when a client vanishes mid-serve.
//!
//! The pipeline recipe and stream assertions live in `harness/`, shared
//! with the cross-transport conformance suite in `tcp_transport.rs`.

mod harness;

use std::collections::HashSet;
use std::sync::Arc;

use harness::{
    assert_byte_identical, assert_ordered_full, local_streams, opts, pipeline, placements,
    remote_streams, sample_ids, Stream,
};
use megascale_data::core::system::net::{LoopbackTransport, SimTransport};
use megascale_data::core::system::runtime::ServeOptions;
use megascale_data::sim::NetModel;

#[test]
fn loopback_distributed_serve_is_byte_identical_to_local() {
    let (clients, steps) = (4u32, 6u64);
    let local = local_streams(77, clients, steps);
    let remote = remote_streams(Arc::new(LoopbackTransport), 77, clients, steps);
    assert_ordered_full(&local, steps);
    assert_ordered_full(&remote, steps);
    assert_byte_identical(&local, &remote, "loopback");
    // Loopback is zero-copy end to end: clients sharing a constructor
    // bucket hold the *same* constructed batch allocation.
    let (_, s0) = &remote[0];
    let (_, s2) = &remote[2]; // Clients 0 and 2 both map to bucket 0.
    for ((_, a), (_, b)) in s0.iter().zip(s2) {
        assert!(
            Arc::ptr_eq(a, b),
            "loopback fan-out copied a batch instead of sharing it"
        );
    }
}

#[test]
fn dropped_remote_client_reconnects_and_resumes_gap_free() {
    let (clients, steps) = (2u32, 8u64);
    let mut p = pipeline(91);
    let (session, handle) = p.serve_distributed(
        opts(clients, steps),
        Arc::new(LoopbackTransport),
        &placements(clients),
    );

    // Client 1 consumes its whole stream normally, in parallel.
    let mut peer = handle.connect(1);
    let peer_thread = std::thread::spawn(move || {
        let mut stream = Stream::new();
        while let Some(item) = peer.next() {
            stream.push(item);
        }
        stream
    });

    // Client 0 consumes three steps, loses its connection (no Close —
    // a crash, not a goodbye), then resumes.
    let mut victim = handle.connect(0);
    let mut stream = Stream::new();
    for _ in 0..3 {
        stream.push(victim.next().expect("pre-drop pull"));
    }
    victim.disconnect();
    while let Some(item) = victim.next() {
        stream.push(item);
    }
    assert!(victim.reconnects() >= 1, "disconnect was never observed");

    let peer_stream = peer_thread.join().expect("peer thread");
    assert_eq!(session.join(), steps, "driver fell short");

    // The resumed stream is gap-free, in order, and duplicate-free down
    // to individual samples; the undisturbed peer saw a full stream too.
    for (streams, who) in [(&stream, "victim"), (&peer_stream, "peer")] {
        assert_eq!(streams.len(), steps as usize, "{who} missed steps");
        let mut seen: HashSet<u64> = HashSet::new();
        for (i, (step, batch)) in streams.iter().enumerate() {
            assert_eq!(*step, i as u64, "{who} stream has a gap");
            for sid in sample_ids(batch) {
                assert!(seen.insert(sid), "{who} got sample {sid} twice");
            }
        }
    }

    // The server observed the resume.
    let status = handle.status().expect("server status");
    let victim_stat = status.clients.iter().find(|c| c.client == 0).unwrap();
    assert!(victim_stat.resumes >= 1, "server never saw a re-subscribe");
    assert!(victim_stat.done, "victim's stream not finished");
    p.shutdown();
}

#[test]
fn lossy_sim_transport_stays_correct() {
    let (clients, steps) = (2u32, 6u64);
    // Reference: the same pipeline served over loopback.
    let reference = remote_streams(Arc::new(LoopbackTransport), 55, clients, steps);

    let sim = Arc::new(SimTransport::new(NetModel::default(), 0.2, 13));
    let lossy = remote_streams(sim.clone(), 55, clients, steps);

    assert_ordered_full(&lossy, steps);
    assert_byte_identical(&reference, &lossy, "lossy sim");
    let stats = sim.stats();
    assert!(
        stats.dropped > 0,
        "loss never fired ({} frames offered) — the test proved nothing",
        stats.offered
    );
    assert!(stats.delivered_bytes > 0);
    // The binary batch codec is on the wire: batch frames pay ~payload
    // bytes, not the old ~10× JSON rendering.
    assert!(
        stats.batch_samples > 0,
        "no batch samples crossed the sim wire"
    );
}

#[test]
fn dropped_client_mid_serve_leaves_others_gap_free_and_queues_bounded() {
    let (clients, steps) = (4u32, 8u64);
    let queue_depth = 2u64;
    let mut p = pipeline(33);
    let mut session = p.serve(ServeOptions {
        queue_depth,
        ..opts(clients, steps)
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let id = c.id;
                let mut stream = Vec::new();
                while let Some((step, batch)) = c.next() {
                    stream.push((step, batch));
                    if id == 3 && stream.len() == 2 {
                        break; // Client 3 walks away mid-serve; Drop runs.
                    }
                }
                (id, stream)
            })
        })
        .collect();
    let streams: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    // The driver must complete all steps: the dropped client's Drop
    // deregistered it, so backpressure stopped waiting on its cursor.
    assert_eq!(session.join(), steps, "dropped client wedged the driver");

    for (id, stream) in &streams {
        let want = if *id == 3 { 2 } else { steps as usize };
        assert_eq!(stream.len(), want, "client {id} missed steps");
        for (i, (step, _)) in stream.iter().enumerate() {
            assert_eq!(*step, i as u64, "client {id} stream has a gap");
        }
    }

    // stats(): the dropped client's cursor was advanced to the end of
    // the stream (no leak — its batches are prunable), and no
    // constructor retains more ready batches than the backpressure
    // window allows.
    let stats = p.stats();
    let cursors: Vec<(u32, u64)> = stats
        .constructors
        .iter()
        .flat_map(|c| c.client_cursors.iter().copied())
        .collect();
    assert!(
        cursors.contains(&(3, steps)),
        "dropped client still pins the prune floor: {cursors:?}"
    );
    for c in &stats.constructors {
        assert!(
            c.ready_steps.len() as u64 <= queue_depth + 2,
            "constructor {} leaked its ready queue: {:?}",
            c.index,
            c.ready_steps
        );
    }
    p.shutdown();
}

#[test]
fn dropped_remote_client_releases_the_session() {
    let (clients, steps) = (2u32, 6u64);
    let mut p = pipeline(44);
    let (session, handle) = p.serve_distributed(
        opts(clients, steps),
        Arc::new(LoopbackTransport),
        &placements(clients),
    );
    let mut survivor = handle.connect(0);
    let survivor_thread = std::thread::spawn(move || {
        let mut n = 0u64;
        while survivor.next().is_some() {
            n += 1;
        }
        n
    });
    {
        let mut quitter = handle.connect(1);
        assert!(quitter.next().is_some());
        assert!(quitter.next().is_some());
        // Dropped here: Drop sends Close, the server completes the
        // client, and the driver stops waiting for it.
    }
    assert_eq!(survivor_thread.join().unwrap(), steps);
    assert_eq!(
        session.join(),
        steps,
        "abandoned remote client wedged serve"
    );
    let status = handle.status().expect("server status");
    let quitter_stat = status.clients.iter().find(|c| c.client == 1).unwrap();
    assert!(
        quitter_stat.done,
        "server still waits on the dropped client"
    );
    p.shutdown();
}
