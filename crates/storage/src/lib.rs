//! Columnar storage substrate with per-handle access-state accounting.
//!
//! LFM training data lives in columnar files (Parquet in the paper): data is
//! partitioned into *row groups*, a *footer* carries schema and row-group
//! metadata, and a reader holds a socket, the parsed footer, and a row-group
//! buffer for the lifetime of the scan. Those three allocations are the
//! "per-source file access states" whose replication across loader workers
//! is the central memory problem MegaScale-Data attacks (Sec 2.3, Fig 4/5a).
//!
//! This crate implements:
//!
//! - [`schema`]: column schemas and typed values.
//! - [`mod@format`]: the `MSDCOL01` byte format — real encode/decode, not a
//!   mock — with row groups, column chunks, and a stats-bearing footer.
//! - [`writer`] / [`reader`]: streaming writer and a reader whose
//!   [`reader::ColumnarReader::access_state`] reports exactly the memory the
//!   paper's model attributes to an open source file.
//! - [`store`]: an [`store::ObjectStore`] abstraction with an in-memory
//!   implementation and an HDFS-like latency model.
//! - [`handle`]: [`handle::AccessState`] — the unit of source-state memory
//!   used by every memory experiment.

// Decoded block buffers hand out `Bytes` sub-views; a redundant clone
// here is a full payload copy on the storage → loader hop. ci.sh runs
// clippy with -D warnings, so this is enforced.
#![warn(clippy::redundant_clone)]

pub mod error;
pub mod format;
pub mod handle;
pub mod reader;
pub mod schema;
pub mod store;
pub mod writer;

pub use error::StorageError;
pub use format::{BlockAlloc, HeapAlloc};
pub use handle::AccessState;
pub use reader::ColumnarReader;
pub use schema::{DataType, Field, Row, Schema, Value};
pub use store::{LatencyModel, MemStore, ObjectStore};
pub use writer::ColumnarWriter;

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
