//! Replay Mode (paper §9, "Future Work"): pre-computed orchestration plans.
//!
//! Many production training runs use *predictable* learning schedules: the
//! mixture weights, topology, and batch geometry of every step are known
//! before launch. For those runs the per-step orchestration plan can be
//! computed offline, checkpointed, and *replayed* at training time —
//! reducing the online Planner's job to plan validation, broadcast, and
//! high-level health monitoring.
//!
//! - [`PlanStore`]: a step-indexed store of [`LoadingPlan`]s with JSON
//!   (de)serialization for checkpointing, plus an offline recorder.
//! - [`ReplayPlanner`]: serves plans from the store when they validate
//!   against live buffers, falling back to live planning when they do not
//!   (topology drift, divergent loader state, store gaps).
//! - [`HealthMonitor`]: the "high-level health monitoring" the paper says
//!   the Planner shifts to in Replay Mode — flags loaders whose buffers
//!   stay empty or stall across consecutive steps.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::buffer::BufferInfo;
use crate::dgraph::DGraphError;
use crate::plan::LoadingPlan;
use crate::planner::{PhaseBreakdown, Planner};

/// A step-indexed store of pre-computed loading plans.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanStore {
    plans: BTreeMap<u64, LoadingPlan>,
}

impl PlanStore {
    /// An empty store.
    pub fn new() -> Self {
        PlanStore::default()
    }

    /// Records `steps` plans by running `planner` offline against buffer
    /// views produced by `buffers(step)` — the "decoupled planning" half of
    /// Replay Mode. The planner is consumed: offline planning advances its
    /// RNG and step counter, so reusing it online would double-plan.
    pub fn record(
        mut planner: Planner,
        steps: u64,
        mut buffers: impl FnMut(u64) -> BufferInfo,
    ) -> Result<Self, DGraphError> {
        let mut store = PlanStore::new();
        for step in 0..steps {
            let info = buffers(step);
            let (plan, _) = planner.generate(&info)?;
            store.insert(plan.clone());
            debug_assert_eq!(plan.step, step);
        }
        Ok(store)
    }

    /// Inserts a plan at its own step index (last write wins).
    pub fn insert(&mut self, plan: LoadingPlan) {
        self.plans.insert(plan.step, plan);
    }

    /// The plan for `step`, if present.
    pub fn get(&self, step: u64) -> Option<&LoadingPlan> {
        self.plans.get(&step)
    }

    /// Number of stored plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// Smallest stored step.
    pub fn first_step(&self) -> Option<u64> {
        self.plans.keys().next().copied()
    }

    /// Largest stored step.
    pub fn last_step(&self) -> Option<u64> {
        self.plans.keys().next_back().copied()
    }

    /// Serializes the store to JSON (the checkpoint artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("PlanStore is serializable")
    }

    /// Restores a store from its JSON checkpoint.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Why a stored plan could not be replayed for a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FallbackReason {
    /// No plan stored for this step.
    Missing,
    /// The stored plan names samples absent from live buffers (loader
    /// divergence, e.g. after an unsynchronized failover).
    StaleSamples {
        /// How many referenced samples were absent.
        missing: usize,
    },
    /// The stored plan's bucket count no longer matches the live topology
    /// (elastic resharding since recording).
    TopologyDrift {
        /// Buckets in the stored plan.
        stored: u32,
        /// Buckets the live topology expects.
        live: u32,
    },
}

/// How a step was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplayOutcome {
    /// Served from the store; online planning skipped.
    Replayed,
    /// Live planning ran.
    Fallback(FallbackReason),
}

/// A loader-health event surfaced by the [`HealthMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthEvent {
    /// The loader concerned.
    pub loader_id: u32,
    /// Consecutive steps its buffer has been empty.
    pub consecutive_empty: u32,
}

/// Tracks per-loader buffer health across steps — the planner's residual
/// responsibility in Replay Mode.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    empty_streak: BTreeMap<u32, u32>,
    threshold: u32,
}

impl HealthMonitor {
    /// Flags loaders whose buffer is empty for `threshold` consecutive
    /// observations.
    pub fn new(threshold: u32) -> Self {
        HealthMonitor {
            empty_streak: BTreeMap::new(),
            threshold: threshold.max(1),
        }
    }

    /// Observes one gathered buffer view; returns events for loaders at or
    /// past the empty-streak threshold.
    pub fn observe(&mut self, info: &BufferInfo) -> Vec<HealthEvent> {
        let mut events = Vec::new();
        for s in &info.summaries {
            let streak = self.empty_streak.entry(s.loader_id).or_insert(0);
            if s.is_empty() {
                *streak += 1;
                if *streak >= self.threshold {
                    events.push(HealthEvent {
                        loader_id: s.loader_id,
                        consecutive_empty: *streak,
                    });
                }
            } else {
                *streak = 0;
            }
        }
        events
    }

    /// Current empty streak of a loader (0 when healthy or unseen).
    pub fn streak(&self, loader_id: u32) -> u32 {
        self.empty_streak.get(&loader_id).copied().unwrap_or(0)
    }
}

/// Validates a stored plan against live buffers and the expected bucket
/// count. Shared by [`ReplayPlanner`] and the threaded runtime's replay
/// path so both apply identical admission rules.
pub fn validate_stored(
    plan: &LoadingPlan,
    info: &BufferInfo,
    live_buckets: u32,
) -> Result<(), FallbackReason> {
    if plan.buckets.len() as u32 != live_buckets {
        return Err(FallbackReason::TopologyDrift {
            stored: plan.buckets.len() as u32,
            live: live_buckets,
        });
    }
    let buffered: std::collections::HashSet<u64> =
        info.iter_samples().map(|(_, m)| m.sample_id).collect();
    let mut missing = 0usize;
    for id in plan.all_samples() {
        if !buffered.contains(&id) {
            missing += 1;
        }
    }
    for sub in plan.subplans.values() {
        for id in sub.all_samples() {
            if !buffered.contains(&id) {
                missing += 1;
            }
        }
    }
    if missing > 0 {
        return Err(FallbackReason::StaleSamples { missing });
    }
    Ok(())
}

/// A planner that executes pre-computed schedules, falling back to live
/// planning when a stored plan does not validate.
pub struct ReplayPlanner {
    store: PlanStore,
    live: Planner,
    monitor: HealthMonitor,
    /// Steps served from the store.
    pub replayed: u64,
    /// Steps that fell back to live planning.
    pub fallbacks: u64,
    /// Health events raised so far.
    pub health_events: Vec<HealthEvent>,
}

impl ReplayPlanner {
    /// Wraps a live planner with a plan store. The live planner is the
    /// fallback path and the authority on the current step counter.
    pub fn new(store: PlanStore, live: Planner) -> Self {
        ReplayPlanner {
            store,
            live,
            monitor: HealthMonitor::new(3),
            replayed: 0,
            fallbacks: 0,
            health_events: Vec::new(),
        }
    }

    /// Read access to the wrapped live planner.
    pub fn live(&self) -> &Planner {
        &self.live
    }

    /// Replaces the health monitor (custom thresholds).
    pub fn set_monitor(&mut self, monitor: HealthMonitor) {
        self.monitor = monitor;
    }

    /// Validates a stored plan against the live buffers and topology.
    fn validate(&self, plan: &LoadingPlan, info: &BufferInfo) -> Result<(), FallbackReason> {
        let live_buckets = self
            .live
            .tree()
            .bucket_count(self.live.config.axis, self.live.config.group_size);
        validate_stored(plan, info, live_buckets)
    }

    /// Serves the next step: replayed from the store when the stored plan
    /// validates, otherwise via live planning. Health monitoring runs
    /// either way.
    pub fn next(
        &mut self,
        info: &BufferInfo,
    ) -> Result<(LoadingPlan, PhaseBreakdown, ReplayOutcome), DGraphError> {
        self.health_events.extend(self.monitor.observe(info));
        let step = self.live.step();
        let verdict = match self.store.get(step) {
            None => Err(FallbackReason::Missing),
            Some(plan) => self.validate(plan, info).map(|()| plan.clone()),
        };
        match verdict {
            Ok(stored) => {
                // Replay: no gather fan-in, no strategy compute beyond the
                // validation scan (measured); broadcast still happens.
                let t0 = std::time::Instant::now();
                let plan = self.live.adopt_plan(stored);
                let phases = PhaseBreakdown {
                    gather_ns: 0,
                    compute_ns: t0.elapsed().as_nanos() as u64,
                    broadcast_ns: self.live.broadcast_cost_ns(&plan),
                    cost_api_ns: 0,
                    balance_api_ns: 0,
                };
                self.replayed += 1;
                Ok((plan, phases, ReplayOutcome::Replayed))
            }
            Err(reason) => {
                let (plan, phases) = self.live.generate(info)?;
                self.fallbacks += 1;
                Ok((plan, phases, ReplayOutcome::Fallback(reason)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferSummary;
    use crate::planner::{PlannerConfig, Strategy};
    use crate::schedule::MixSchedule;
    use msd_data::{Modality, SampleMeta, SourceId};
    use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};

    fn info_for_step(step: u64) -> BufferInfo {
        // Deterministic buffers: step s exposes samples [s*64, s*64+128)
        // per loader — overlapping windows, like real prefetch buffers.
        let mk = |loader: u32, src: u32| BufferSummary {
            loader_id: loader,
            source: SourceId(src),
            samples: (step * 64..step * 64 + 128)
                .map(|i| SampleMeta {
                    sample_id: (u64::from(src) << 48) | i,
                    source: SourceId(src),
                    modality: Modality::Image,
                    text_tokens: 16 + (i as u32 * 37) % 256,
                    image_patches: 64 + (i as u32 * 101) % 1024,
                    raw_bytes: 512,
                })
                .collect(),
            mean_transform_ns: 900.0,
        };
        BufferInfo::new(vec![mk(0, 0), mk(1, 1)])
    }

    fn planner(seed: u64) -> Planner {
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).unwrap();
        Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 32,
                schedule: MixSchedule::uniform(2),
            },
            Strategy::Vanilla,
            ClientPlaceTree::from_device_mesh(&mesh),
            vec![SourceId(0), SourceId(1)],
            seed,
        )
    }

    fn recorded_store(steps: u64) -> PlanStore {
        PlanStore::record(planner(7), steps, info_for_step).unwrap()
    }

    #[test]
    fn record_produces_one_plan_per_step() {
        let store = recorded_store(5);
        assert_eq!(store.len(), 5);
        assert_eq!(store.first_step(), Some(0));
        assert_eq!(store.last_step(), Some(4));
        for step in 0..5 {
            assert_eq!(store.get(step).unwrap().step, step);
        }
    }

    #[test]
    fn json_round_trip_preserves_plans() {
        let store = recorded_store(3);
        let json = store.to_json();
        let restored = PlanStore::from_json(&json).unwrap();
        assert_eq!(store, restored);
    }

    #[test]
    fn replay_serves_identical_plans_with_near_zero_compute() {
        let store = recorded_store(4);
        let mut rp = ReplayPlanner::new(store.clone(), planner(7));
        for step in 0..4 {
            let info = info_for_step(step);
            let (plan, phases, outcome) = rp.next(&info).unwrap();
            assert_eq!(outcome, ReplayOutcome::Replayed);
            assert_eq!(&plan, store.get(step).unwrap());
            // Replay skips gather entirely and does only a validation scan.
            assert_eq!(phases.gather_ns, 0);
            assert_eq!(phases.cost_api_ns, 0);
            assert!(phases.broadcast_ns > 0);
        }
        assert_eq!(rp.replayed, 4);
        assert_eq!(rp.fallbacks, 0);
        // The live planner's history advanced exactly as if it had planned.
        assert_eq!(rp.live().history().len(), 4);
    }

    #[test]
    fn missing_step_falls_back_to_live_planning() {
        let mut store = recorded_store(2);
        // Drop step 1 to create a gap.
        let kept = store.get(0).unwrap().clone();
        store = PlanStore::new();
        store.insert(kept);
        let mut rp = ReplayPlanner::new(store, planner(7));
        let (_, _, o0) = rp.next(&info_for_step(0)).unwrap();
        assert_eq!(o0, ReplayOutcome::Replayed);
        let (plan1, phases1, o1) = rp.next(&info_for_step(1)).unwrap();
        assert_eq!(o1, ReplayOutcome::Fallback(FallbackReason::Missing));
        assert_eq!(plan1.all_samples().len(), 32);
        assert!(phases1.gather_ns > 0, "live planning gathers");
        assert_eq!(rp.replayed, 1);
        assert_eq!(rp.fallbacks, 1);
    }

    #[test]
    fn stale_samples_fall_back() {
        let store = recorded_store(1);
        let mut rp = ReplayPlanner::new(store, planner(7));
        // Live buffers diverged: expose a different window than recorded.
        let stale = info_for_step(50);
        let (_, _, outcome) = rp.next(&stale).unwrap();
        assert!(matches!(
            outcome,
            ReplayOutcome::Fallback(FallbackReason::StaleSamples { missing }) if missing > 0
        ));
    }

    #[test]
    fn topology_drift_falls_back() {
        let store = recorded_store(1);
        let mut live = planner(7);
        // Reshard to a different DP size before step 0 executes.
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 1).unwrap();
        live.set_tree(ClientPlaceTree::from_device_mesh(&mesh));
        let mut rp = ReplayPlanner::new(store, live);
        let (plan, _, outcome) = rp.next(&info_for_step(0)).unwrap();
        assert_eq!(
            outcome,
            ReplayOutcome::Fallback(FallbackReason::TopologyDrift { stored: 4, live: 2 })
        );
        assert_eq!(plan.buckets.len(), 2);
    }

    #[test]
    fn replay_then_resume_live_continues_step_sequence() {
        // A 3-step store, then the run continues past it: steps 3+ plan
        // live with correct step numbering.
        let store = recorded_store(3);
        let mut rp = ReplayPlanner::new(store, planner(7));
        for step in 0..5 {
            let (plan, _, outcome) = rp.next(&info_for_step(step)).unwrap();
            assert_eq!(plan.step, step);
            if step < 3 {
                assert_eq!(outcome, ReplayOutcome::Replayed);
            } else {
                assert_eq!(outcome, ReplayOutcome::Fallback(FallbackReason::Missing));
            }
        }
    }

    #[test]
    fn health_monitor_flags_stalled_loaders() {
        let mut hm = HealthMonitor::new(2);
        let empty = BufferInfo::new(vec![BufferSummary {
            loader_id: 9,
            source: SourceId(0),
            samples: vec![],
            mean_transform_ns: 0.0,
        }]);
        assert!(hm.observe(&empty).is_empty()); // Streak 1 < threshold.
        let events = hm.observe(&empty); // Streak 2 = threshold.
        assert_eq!(
            events,
            vec![HealthEvent {
                loader_id: 9,
                consecutive_empty: 2
            }]
        );
        assert_eq!(hm.streak(9), 2);
        // Recovery resets the streak.
        assert!(hm.observe(&info_for_step(0)).is_empty());
        assert_eq!(hm.streak(0), 0);
    }

    #[test]
    fn replay_planner_surfaces_health_events() {
        let store = recorded_store(1);
        let mut rp = ReplayPlanner::new(store, planner(7));
        rp.set_monitor(HealthMonitor::new(1));
        let empty = BufferInfo::new(vec![BufferSummary {
            loader_id: 4,
            source: SourceId(0),
            samples: vec![],
            mean_transform_ns: 0.0,
        }]);
        let _ = rp.next(&empty); // StaleSamples fallback, but health observed.
        assert_eq!(rp.health_events.len(), 1);
        assert_eq!(rp.health_events[0].loader_id, 4);
    }
}
