//! Elastic resharding: adapting resident data to trainer topology changes.
//!
//! When the training framework resizes (elastic scale-out/in, redeployment,
//! failure-driven resharding), MegaScale-Data recalculates its distribution
//! plan for *future* metadata and fast-reshards the data already resident
//! in Data Constructors to match the new device topology (Sec 6.1).

use msd_mesh::{ClientPlaceTree, DistributeAxis};
use serde::{Deserialize, Serialize};

/// One movement of a resident sample between buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// The sample being moved.
    pub sample_id: u64,
    /// Source bucket under the old topology.
    pub from_bucket: u32,
    /// Destination bucket under the new topology.
    pub to_bucket: u32,
}

/// Result of a reshard computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardPlan {
    /// New bucket count.
    pub new_buckets: u32,
    /// Required data movements (samples that change buckets).
    pub moves: Vec<Move>,
    /// Samples that stay in place.
    pub stationary: usize,
}

impl ReshardPlan {
    /// Fraction of resident samples that had to move.
    pub fn move_fraction(&self) -> f64 {
        let total = self.moves.len() + self.stationary;
        if total == 0 {
            0.0
        } else {
            self.moves.len() as f64 / total as f64
        }
    }
}

/// Computes the minimal-disruption reassignment of resident samples when
/// the topology changes from `old` to `new` buckets along `axis`.
///
/// Samples keep their old bucket when it still exists (bucket index <
/// new bucket count); samples from removed buckets are spread round-robin
/// over surviving buckets, favoring the least-loaded ones.
pub fn reshard(
    resident: &[(u64, u32)], // (sample_id, old_bucket)
    old_tree: &ClientPlaceTree,
    new_tree: &ClientPlaceTree,
    axis: DistributeAxis,
) -> ReshardPlan {
    let old_n = old_tree.bucket_count(axis, None);
    let new_n = new_tree.bucket_count(axis, None);
    let mut loads = vec![0usize; new_n as usize];
    for (_, b) in resident {
        if *b < new_n {
            loads[*b as usize] += 1;
        }
    }
    let mut moves = Vec::new();
    let mut stationary = 0usize;
    for (sample_id, old_bucket) in resident {
        if *old_bucket < new_n {
            stationary += 1;
            continue;
        }
        // Least-loaded surviving bucket.
        let (to, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| **l)
            .expect("new_n >= 1");
        loads[to] += 1;
        moves.push(Move {
            sample_id: *sample_id,
            from_bucket: *old_bucket,
            to_bucket: to as u32,
        });
    }
    let _ = old_n;
    ReshardPlan {
        new_buckets: new_n,
        moves,
        stationary,
    }
}

/// The naive baseline [`reshard`] must beat: reassign every resident
/// sample round-robin from scratch, ignoring current placement. Every
/// orphan (old bucket removed) moves here too, plus any sample whose
/// round-robin slot happens to differ from its current bucket — so its
/// [`ReshardPlan::move_fraction`] upper-bounds the minimal-disruption
/// plan's (pinned by a property test).
pub fn naive_full_reshuffle(
    resident: &[(u64, u32)],
    new_tree: &ClientPlaceTree,
    axis: DistributeAxis,
) -> ReshardPlan {
    let new_n = new_tree.bucket_count(axis, None).max(1);
    let mut moves = Vec::new();
    let mut stationary = 0usize;
    for (i, (sample_id, old_bucket)) in resident.iter().enumerate() {
        let to = (i as u32) % new_n;
        if to == *old_bucket {
            stationary += 1;
        } else {
            moves.push(Move {
                sample_id: *sample_id,
                from_bucket: *old_bucket,
                to_bucket: to,
            });
        }
    }
    ReshardPlan {
        new_buckets: new_n,
        moves,
        stationary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_mesh::DeviceMesh;

    fn tree(dp: u32) -> ClientPlaceTree {
        ClientPlaceTree::from_device_mesh(&DeviceMesh::pp_dp_cp_tp(1, dp, 1, 1).unwrap())
    }

    #[test]
    fn shrink_moves_only_orphans() {
        // 8 buckets → 4: samples in buckets 0..4 stay, 4..8 move.
        let resident: Vec<(u64, u32)> = (0..80).map(|i| (i, (i % 8) as u32)).collect();
        let plan = reshard(&resident, &tree(8), &tree(4), DistributeAxis::DP);
        assert_eq!(plan.new_buckets, 4);
        assert_eq!(plan.stationary, 40);
        assert_eq!(plan.moves.len(), 40);
        assert!((plan.move_fraction() - 0.5).abs() < 1e-12);
        for m in &plan.moves {
            assert!(m.from_bucket >= 4);
            assert!(m.to_bucket < 4);
        }
    }

    #[test]
    fn shrink_balances_destination_load() {
        let resident: Vec<(u64, u32)> = (0..64).map(|i| (i, (i % 8) as u32)).collect();
        let plan = reshard(&resident, &tree(8), &tree(4), DistributeAxis::DP);
        let mut loads = vec![0; 4];
        for (_, b) in resident.iter().filter(|(_, b)| *b < 4) {
            loads[*b as usize] += 1;
        }
        for m in &plan.moves {
            loads[m.to_bucket as usize] += 1;
        }
        let max = loads.iter().max().unwrap();
        let min = loads.iter().min().unwrap();
        assert!(max - min <= 1, "loads = {loads:?}");
    }

    #[test]
    fn grow_keeps_everything_stationary() {
        let resident: Vec<(u64, u32)> = (0..40).map(|i| (i, (i % 4) as u32)).collect();
        let plan = reshard(&resident, &tree(4), &tree(8), DistributeAxis::DP);
        assert_eq!(plan.new_buckets, 8);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.stationary, 40);
        assert_eq!(plan.move_fraction(), 0.0);
    }

    #[test]
    fn empty_residency() {
        let plan = reshard(&[], &tree(4), &tree(2), DistributeAxis::DP);
        assert!(plan.moves.is_empty());
        assert_eq!(plan.move_fraction(), 0.0);
    }
}
