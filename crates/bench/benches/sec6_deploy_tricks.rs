//! Sec 6.2 — Deployment tricks, quantified.
//!
//! The paper describes three production deployment tricks without a
//! dedicated figure; this target measures the two that change dataflow:
//!
//! 1. **Hybrid deployment** (trick 1): pack loader actors into idle
//!    accelerator-pod sidecars first, renting remote CPU pods only on
//!    overflow.
//! 2. **Transformation reordering** (trick 2, Pecan-inspired): defer
//!    payload-inflating transforms (image decode) past the
//!    loader → constructor link.
//! 3. **Selective broadcasting** (trick 3): broadcast within TP/CP
//!    subgroups bottom-up over the `ClientPlaceTree`, trading replication
//!    for fewer synchronized clients.

use msd_balance::BalanceMethod;
use msd_bench::{banner, f, table_header, table_row, Scenario};
use msd_core::autoscale::{
    partition_sources, place_actors, ClusterResources, HybridDeployment, PartitionOpts, PodSpec,
};
use msd_core::planner::Strategy;
use msd_data::catalog::{coyo700m_like, navit_sized};
use msd_data::Catalog;
use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh};
use msd_sim::{NetModel, SimRng};

fn hybrid_deployment_section() {
    banner(
        "Sec 6.2 trick 1",
        "Hybrid deployment: sidecar-first placement, remote pods on overflow",
    );
    let mut rng = SimRng::seed(61);
    let catalog = navit_sized(&mut rng, 100);
    let setups = partition_sources(
        &catalog,
        ClusterResources {
            total_cores: 1024,
            total_mem_bytes: 16 << 40,
        },
        &PartitionOpts::default(),
        &mut rng,
    );
    let total_actors: u32 = setups.iter().map(|s| s.actors).sum();
    println!("{total_actors} loader actors over {} sources", setups.len());
    table_header(&[
        "sidecar_idle",
        "accel_pods",
        "on_sidecar_%",
        "remote_pods",
        "sidecar_cores",
    ]);
    // Sweep the idle capacity fraction the accelerators donate: the paper
    // cites ~75% idle auxiliary CPU under static allocations.
    let mut prev_remote = u32::MAX;
    for (label, cores, mem_gib) in [
        ("10%", 4u64, 64u64),
        ("25%", 10, 160),
        ("50%", 20, 320),
        ("75%", 30, 480),
    ] {
        let plan = place_actors(
            &setups,
            &HybridDeployment {
                accelerator_pods: 36,
                sidecar: PodSpec {
                    cores,
                    mem_bytes: mem_gib << 30,
                },
                remote: PodSpec {
                    cores: 64,
                    mem_bytes: 1 << 40,
                },
            },
        );
        table_row(&[
            label.to_string(),
            "36".to_string(),
            f(plan.sidecar_fraction() * 100.0),
            plan.remote_pods.to_string(),
            plan.sidecar_cores().to_string(),
        ]);
        assert!(plan.remote_pods <= prev_remote, "spill must shrink");
        prev_remote = plan.remote_pods;
    }
    println!(
        "\nMore donated sidecar capacity -> fewer rented CPU pods \
         (paper: sidecars first, remote pods only when insufficient)."
    );
}

fn reordering_section() {
    banner(
        "Sec 6.2 trick 2",
        "Transformation reordering: ship bytes, loader-side vs deferred decode",
    );
    let mut rng = SimRng::seed(62);
    let catalogs: Vec<(&str, Catalog)> = vec![
        ("coyo700m (image)", coyo700m_like(&mut rng)),
        ("navit-20 (mixed)", navit_sized(&mut rng, 20)),
    ];
    table_header(&[
        "catalog",
        "mode",
        "ship_KiB",
        "loader_ms",
        "constr_ms",
        "fetch_ms",
    ]);
    for (name, catalog) in catalogs {
        let scenario = Scenario {
            mesh: DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).unwrap(),
            model: msd_train::models::vlm_preset("ViT-1B", "Llama-12B"),
            ctx: 8192,
            microbatches: 4,
            samples_per_step: 96,
            catalog: catalog.clone(),
        };
        let strategy = Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: scenario.model.backbone,
        };
        let mut results = Vec::new();
        for reorder in [false, true] {
            let mut msd = scenario.pipeline(strategy.clone(), 62);
            if reorder {
                msd.enable_transform_reordering();
            }
            // Warm, then average 3 steps.
            msd.step().expect("warmup");
            let (mut ship, mut loader, mut constr, mut fetch) = (0u64, 0u64, 0u64, 0u64);
            let steps = 3u64;
            for _ in 0..steps {
                let out = msd.step().expect("step");
                ship += out.ship_bytes;
                loader += out.loader_ns;
                constr += out.constructor_ns;
                fetch += out.fetch_ns;
            }
            results.push(ship / steps);
            table_row(&[
                name.to_string(),
                if reorder { "deferred" } else { "loader-side" }.to_string(),
                (ship / steps / 1024).to_string(),
                f(loader as f64 / steps as f64 / 1e6),
                f(constr as f64 / steps as f64 / 1e6),
                f(fetch as f64 / steps as f64 / 1e6),
            ]);
        }
        assert!(
            results[1] < results[0],
            "{name}: deferral must shrink shipped bytes ({} vs {})",
            results[1],
            results[0]
        );
    }
    println!(
        "\nDeferring decode keeps payloads encoded across the loader->constructor \
         link (paper: Pecan-inspired reordering)."
    );
}

fn selective_broadcast_section() {
    banner(
        "Sec 6.2 trick 3",
        "Selective broadcasting: synchronized clients vs subgroup replication",
    );
    let meshes = vec![
        (
            "288 (PP8 DP9 TP4)",
            DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap(),
        ),
        (
            "576 (PP4 DP9 CP4 TP4)",
            DeviceMesh::pp_dp_cp_tp(4, 9, 4, 4).unwrap(),
        ),
        (
            "1152 (PP4 DP18 CP4 TP4)",
            DeviceMesh::pp_dp_cp_tp(4, 18, 4, 4).unwrap(),
        ),
    ];
    let net = NetModel::default();
    let payload_bytes = 64u64 << 20; // One bucket batch (~64 MiB tensors).
    table_header(&[
        "mesh",
        "bcast_axes",
        "sync_clients",
        "barrier_ms",
        "replication",
        "extra_MiB",
    ]);
    for (label, mesh) in &meshes {
        let tree = ClientPlaceTree::from_device_mesh(mesh);
        for axes in [vec![], vec![Axis::TP], vec![Axis::TP, Axis::CP]] {
            let t = tree.broadcast_tradeoff(&axes);
            let barrier_ms = net.barrier(t.sync_clients).as_nanos() as f64 / 1e6;
            let extra_mib = payload_bytes * u64::from(t.extra_traffic_factor()) / (1 << 20);
            table_row(&[
                label.to_string(),
                format!("{:?}", t.axes),
                t.sync_clients.to_string(),
                f(barrier_ms),
                format!("{}x", t.replication),
                extra_mib.to_string(),
            ]);
        }
        // Bottom-up auto-selection under a 64-client barrier budget.
        let auto = tree.select_broadcast_axes(64);
        println!(
            "  {label}: budget 64 sync clients -> select {:?} ({} clients, {}x replication)",
            auto.axes, auto.sync_clients, auto.replication
        );
        // Broadcasting monotonically reduces the barrier size.
        let none = tree.broadcast_tradeoff(&[]).sync_clients;
        let tp = tree.broadcast_tradeoff(&[Axis::TP]).sync_clients;
        assert!(tp < none);
    }
    println!(
        "\nEach broadcast level shrinks the client barrier at the cost of \
         subgroup replication (paper: bottom-up selective broadcasting)."
    );
}

fn main() {
    hybrid_deployment_section();
    reordering_section();
    selective_broadcast_section();
    println!("\nSec 6.2 deployment tricks verified on this implementation.");
}
