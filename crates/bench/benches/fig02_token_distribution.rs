//! Fig 2 — Skewed token distributions in `coyo700m` and `navit_data`.
//!
//! Reproduces both panels: per-bucket *sample ratios* (the bars) and
//! *token shares* (the pies) for text tokens and image patches, plus the
//! headline skew statistics quoted in Sec 2.3.

use msd_bench::{banner, f, table_header, table_row};
use msd_data::catalog::{coyo_image_dist, coyo_text_dist, navit_image_dist, navit_text_dist};
use msd_data::LengthDist;
use msd_sim::{Histogram, SimRng};

fn distribution_report(name: &str, dist: &LengthDist, lo: u64, hi: u64, n: usize, seed: u64) {
    let mut rng = SimRng::seed(seed);
    let mut hist = Histogram::pow2(lo, hi);
    for _ in 0..n {
        let v = f64::from(dist.sample_len(&mut rng));
        hist.add_weighted(v, v);
    }
    println!("\n{name} (n = {n}):");
    table_header(&["bucket", "sample_ratio", "token_share"]);
    for b in 0..hist.buckets() {
        if hist.count(b) == 0 {
            continue;
        }
        table_row(&[
            hist.label(b),
            f(hist.sample_ratio(b)),
            f(hist.weight_ratio(b)),
        ]);
    }
}

fn main() {
    banner("Figure 2", "Token distributions of coyo700m and navit_data");
    let n = 100_000;

    distribution_report("coyo700m / text tokens", &coyo_text_dist(), 16, 32768, n, 1);
    distribution_report(
        "coyo700m / image patches",
        &coyo_image_dist(),
        16,
        32768,
        n,
        2,
    );
    distribution_report(
        "navit_data / text tokens",
        &navit_text_dist(),
        16,
        32768,
        n,
        3,
    );
    distribution_report(
        "navit_data / image patches",
        &navit_image_dist(),
        16,
        32768,
        n,
        4,
    );

    // Headline skew stats (Sec 2.3): 98.23% of coyo text samples <= 64
    // tokens; the >64 tail carries 9.3% of tokens.
    let mut rng = SimRng::seed(5);
    let d = coyo_text_dist();
    let mut le64 = 0u64;
    let mut tokens_total = 0u64;
    let mut tokens_tail = 0u64;
    for _ in 0..n {
        let len = u64::from(d.sample_len(&mut rng));
        tokens_total += len;
        if len <= 64 {
            le64 += 1;
        } else {
            tokens_tail += len;
        }
    }
    println!("\nHeadline skew (paper: 98.23% samples <=64 tok; tail carries 9.3% of tokens):");
    println!(
        "  measured: {:.2}% samples <=64 tok; tail carries {:.1}% of tokens",
        100.0 * le64 as f64 / n as f64,
        100.0 * tokens_tail as f64 / tokens_total as f64
    );
}
