//! Columnar reader with access-state accounting.

use bytes::Bytes;

use crate::error::StorageError;
use crate::format::{decode_column_chunk, decode_row_group, parse_file, Footer};
use crate::handle::{AccessState, DEFAULT_SOCKET_BYTES};
use crate::schema::Value;
use crate::schema::{Row, Schema};
use crate::store::{LatencyModel, ObjectStore};

/// Reads rows from an `MSDCOL01` file stored in an [`ObjectStore`].
///
/// The reader mirrors a production Parquet client: on open it fetches and
/// parses the footer; row groups are then range-read one at a time into a
/// resident buffer. [`ColumnarReader::access_state`] reports the memory this
/// handle pins, and [`ColumnarReader::io_ns`] accumulates the virtual-time
/// cost of the I/O performed so far.
pub struct ColumnarReader<'s> {
    store: &'s dyn ObjectStore,
    path: String,
    footer: Footer,
    footer_bytes: u64,
    latency: LatencyModel,
    io_ns: u64,
    current_group: Option<(usize, Vec<Row>, u64)>,
}

impl<'s> ColumnarReader<'s> {
    /// Opens a file: fetches the object, validates magic, parses the footer.
    pub fn open(store: &'s dyn ObjectStore, path: &str) -> Result<Self, StorageError> {
        Self::open_with_latency(store, path, LatencyModel::default())
    }

    /// Opens with an explicit latency model.
    pub fn open_with_latency(
        store: &'s dyn ObjectStore,
        path: &str,
        latency: LatencyModel,
    ) -> Result<Self, StorageError> {
        let all = store.get(path)?;
        let (_, footer) = parse_file(&all)?;
        let footer_bytes = footer.encoded_len() as u64;
        let io_ns = latency.open_ns(footer_bytes);
        Ok(ColumnarReader {
            store,
            path: path.to_string(),
            footer,
            footer_bytes,
            latency,
            io_ns,
            current_group: None,
        })
    }

    /// The file's schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Number of row groups.
    pub fn group_count(&self) -> usize {
        self.footer.row_groups.len()
    }

    /// Total rows in the file.
    pub fn total_rows(&self) -> u64 {
        self.footer.total_rows()
    }

    /// Footer metadata (sequence-length stats live here — this is what the
    /// Planner reads without touching data pages).
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Accumulated virtual-time I/O cost in nanoseconds.
    pub fn io_ns(&self) -> u64 {
        self.io_ns
    }

    /// Loads row group `idx` into the resident buffer and returns its rows.
    pub fn read_group(&mut self, idx: usize) -> Result<&[Row], StorageError> {
        let n = self.footer.row_groups.len();
        if idx >= n {
            return Err(StorageError::OutOfBounds { index: idx, len: n });
        }
        if self.current_group.as_ref().map(|(i, _, _)| *i) != Some(idx) {
            let meta = self.footer.row_groups[idx].clone();
            let bytes: Bytes = self
                .store
                .get_range(&self.path, meta.offset, meta.byte_len)?;
            self.io_ns += self.latency.read_ns(meta.byte_len);
            let rows = decode_row_group(&self.footer.schema, &meta, bytes)?;
            self.current_group = Some((idx, rows, meta.byte_len));
        }
        Ok(self
            .current_group
            .as_ref()
            .map(|(_, rows, _)| rows.as_slice())
            .expect("just populated"))
    }

    /// Column-projection read: fetches and decodes *only* the named columns
    /// of row group `idx`, range-reading each chunk's bytes individually.
    ///
    /// This is the storage half of Ahead-of-Fetch load balancing (paper
    /// §9): a planner can read the lightweight metadata columns (sequence
    /// lengths, embedded costs) of every row without ever transferring the
    /// payload columns. Returned columns are in `cols` order. The resident
    /// row-group buffer is not populated — projection reads are transient.
    pub fn read_columns(
        &mut self,
        idx: usize,
        cols: &[usize],
    ) -> Result<Vec<Vec<Value>>, StorageError> {
        let n = self.footer.row_groups.len();
        if idx >= n {
            return Err(StorageError::OutOfBounds { index: idx, len: n });
        }
        let meta = self.footer.row_groups[idx].clone();
        let mut out = Vec::with_capacity(cols.len());
        for &col in cols {
            if col >= meta.columns.len() {
                return Err(StorageError::OutOfBounds {
                    index: col,
                    len: meta.columns.len(),
                });
            }
            let chunk = &meta.columns[col];
            let bytes =
                self.store
                    .get_range(&self.path, meta.column_offset(col), chunk.byte_len)?;
            self.io_ns += self.latency.read_ns(chunk.byte_len);
            let dtype = self.footer.schema.fields()[col].dtype;
            out.push(decode_column_chunk(dtype, meta.rows as usize, bytes)?);
        }
        Ok(out)
    }

    /// Projects the named columns across **all** row groups, concatenated in
    /// file order. Returns one `Vec<Value>` per requested column.
    pub fn scan_columns(&mut self, cols: &[usize]) -> Result<Vec<Vec<Value>>, StorageError> {
        // Every column collects one Value per row in the file; size the
        // accumulators up front so the per-group extends never regrow.
        let rows = self.total_rows() as usize;
        let mut out: Vec<Vec<Value>> = (0..cols.len()).map(|_| Vec::with_capacity(rows)).collect();
        for g in 0..self.group_count() {
            for (slot, col) in self.read_columns(g, cols)?.into_iter().enumerate() {
                out[slot].extend(col);
            }
        }
        Ok(out)
    }

    /// Iterates all rows in file order, loading groups as needed.
    pub fn scan(&mut self) -> Result<Vec<Row>, StorageError> {
        let mut out = Vec::with_capacity(self.total_rows() as usize);
        for g in 0..self.group_count() {
            out.extend_from_slice(self.read_group(g)?);
        }
        Ok(out)
    }

    /// Current resident memory of this handle.
    pub fn access_state(&self) -> AccessState {
        let buffer = self
            .current_group
            .as_ref()
            .map(|(_, _, bytes)| *bytes)
            .unwrap_or(0);
        AccessState::new(DEFAULT_SOCKET_BYTES, self.footer_bytes, buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field, Value};
    use crate::store::MemStore;
    use crate::writer::ColumnarWriter;

    fn write_file(store: &MemStore, path: &str, rows: usize, group_bytes: usize) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("tokens", DataType::Int64),
            Field::new("blob", DataType::Bytes),
        ]);
        let mut w = ColumnarWriter::with_group_size(schema, group_bytes);
        for i in 0..rows {
            w.push(vec![
                Value::Int64(i as i64),
                Value::Int64((i % 128) as i64),
                Value::Bytes(vec![i as u8; 64].into()),
            ])
            .unwrap();
        }
        store.put(path, w.finish().unwrap());
    }

    #[test]
    fn open_scan_roundtrip() {
        let store = MemStore::new();
        write_file(&store, "ds/src0", 200, 1 << 12);
        let mut r = ColumnarReader::open(&store, "ds/src0").unwrap();
        assert_eq!(r.total_rows(), 200);
        assert!(r.group_count() > 1);
        let rows = r.scan().unwrap();
        assert_eq!(rows.len(), 200);
        assert_eq!(rows[42][0].as_i64(), Some(42));
    }

    #[test]
    fn access_state_reflects_loaded_group() {
        let store = MemStore::new();
        write_file(&store, "f", 100, 1 << 12);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        let before = r.access_state();
        assert_eq!(before.buffer_bytes, 0);
        assert!(before.metadata_bytes > 0);
        r.read_group(0).unwrap();
        let after = r.access_state();
        assert!(after.buffer_bytes > 0);
        assert_eq!(after.metadata_bytes, before.metadata_bytes);
    }

    #[test]
    fn io_cost_accumulates() {
        let store = MemStore::new();
        write_file(&store, "f", 100, 1 << 12);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        let open_cost = r.io_ns();
        assert!(open_cost > 0);
        r.read_group(0).unwrap();
        let after_one = r.io_ns();
        assert!(after_one > open_cost);
        // Re-reading the same group is free (already resident).
        r.read_group(0).unwrap();
        assert_eq!(r.io_ns(), after_one);
        r.read_group(1).unwrap();
        assert!(r.io_ns() > after_one);
    }

    #[test]
    fn out_of_bounds_group() {
        let store = MemStore::new();
        write_file(&store, "f", 10, 1 << 20);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        assert!(matches!(
            r.read_group(99),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn missing_file() {
        let store = MemStore::new();
        assert!(matches!(
            ColumnarReader::open(&store, "nope"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn column_projection_matches_full_scan() {
        let store = MemStore::new();
        write_file(&store, "f", 300, 1 << 12);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        let full = r.scan().unwrap();
        let tokens_col = r.schema().index_of("tokens").unwrap();
        let projected = r.scan_columns(&[tokens_col]).unwrap();
        assert_eq!(projected.len(), 1);
        assert_eq!(projected[0].len(), 300);
        for (row, v) in full.iter().zip(&projected[0]) {
            assert_eq!(row[tokens_col], *v);
        }
    }

    #[test]
    fn column_projection_reads_fewer_bytes() {
        // When the payload column dominates the group (the paper's 200×
        // OCR-inflation scenario), projecting the two Int64 metadata columns
        // must cost far less virtual I/O than a full group read — even
        // though projection pays one fixed request cost per chunk.
        let store = MemStore::new();
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("tokens", DataType::Int64),
            Field::new("blob", DataType::Bytes),
        ]);
        let mut w = ColumnarWriter::with_group_size(schema, 1 << 26);
        for i in 0..200 {
            w.push(vec![
                Value::Int64(i),
                Value::Int64(i % 128),
                Value::Bytes(vec![0xAB; 64 << 10].into()), // 64 KiB payload per row.
            ])
            .unwrap();
        }
        store.put("f", w.finish().unwrap());
        let mut proj = ColumnarReader::open(&store, "f").unwrap();
        let open_ns = proj.io_ns();
        proj.read_columns(0, &[0, 1]).unwrap();
        let proj_ns = proj.io_ns() - open_ns;

        let mut full = ColumnarReader::open(&store, "f").unwrap();
        let open_ns = full.io_ns();
        full.read_group(0).unwrap();
        let full_ns = full.io_ns() - open_ns;
        assert!(
            proj_ns * 2 < full_ns,
            "projection {proj_ns} ns vs full {full_ns} ns"
        );
        // Projection reads do not pin a resident buffer.
        assert_eq!(proj.access_state().buffer_bytes, 0);
    }

    #[test]
    fn column_projection_multiple_columns_ordered() {
        let store = MemStore::new();
        write_file(&store, "f", 64, 1 << 12);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        // Request in reverse schema order; output follows request order.
        let cols = r.read_columns(0, &[1, 0]).unwrap();
        assert_eq!(cols[1][5].as_i64(), Some(5)); // id column second.
        assert_eq!(cols[0][5].as_i64(), Some(5)); // tokens (5 % 128) first.
    }

    #[test]
    fn column_projection_out_of_bounds() {
        let store = MemStore::new();
        write_file(&store, "f", 10, 1 << 20);
        let mut r = ColumnarReader::open(&store, "f").unwrap();
        assert!(matches!(
            r.read_columns(0, &[99]),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert!(matches!(
            r.read_columns(99, &[0]),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn stats_visible_through_footer() {
        let store = MemStore::new();
        write_file(&store, "f", 500, 1 << 12);
        let r = ColumnarReader::open(&store, "f").unwrap();
        let tokens_col = r.schema().index_of("tokens").unwrap();
        for rg in &r.footer().row_groups {
            let stats = rg.columns[tokens_col].stats.expect("int col has stats");
            assert!(stats.min >= 0 && stats.max < 128);
        }
    }
}
