//! Shim for `bytes`: cheaply-cloneable immutable [`Bytes`] views over a
//! shared buffer, a growable [`BytesMut`], and the [`Buf`]/[`BufMut`]
//! cursor traits (little-endian accessors only — that is all the
//! `MSDCOL01` format uses).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning and slicing are
/// O(1): both produce new views over the same allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Buffer viewing a static byte slice (copies here; the real crate
    /// borrows, but nothing observes the difference).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-view of `range` (O(1), shares the allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `n` bytes; `self` keeps the rest.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Copies this view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Whether two views share the same backing allocation (regardless of
    /// their ranges). This is the zero-copy observability hook: tests use
    /// it to assert that slicing, cloning, and cross-component handoff
    /// never copied payload bytes. (The real crate offers the same check
    /// via `Bytes::as_ptr` range comparisons; a named method keeps the
    /// assertion sites readable.)
    pub fn ptr_eq(a: &Bytes, b: &Bytes) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }

    /// Whether this is the only live view of the backing allocation.
    ///
    /// A `true` here is stable for a holder that never shares the view:
    /// no other handle exists, so no concurrent clone can appear. Buffer
    /// pools use this to find parked buffers whose consumers are all
    /// done. (The real crate exposes the equivalent check through
    /// `BytesMut::try_reclaim` / `Bytes::try_into_mut`.)
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Recovers the backing `Vec<u8>` if this is the only live view
    /// (timely-allocator style reclaim): the whole original allocation
    /// comes back — full capacity, regardless of this view's range — so
    /// a pool can hand it out again without touching the allocator. When
    /// other views are still alive, returns `self` unchanged.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        let Bytes { data, start, end } = self;
        match Arc::try_unwrap(data) {
            Ok(vec) => Ok(vec),
            Err(data) => Err(Bytes { data, start, end }),
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(data: &'static str) -> Self {
        Bytes::from(data.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

// Serde support (the real crate gates this behind the `serde` feature;
// the shim provides it unconditionally — both crates are local). Encoded
// as a plain byte sequence, matching how `Vec<u8>` serializes, so types
// that migrate a field from `Vec<u8>` to `Bytes` keep their wire shape.
impl serde::Serialize for Bytes {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(
            self.as_slice()
                .iter()
                .map(|b| serde::Content::I64(i64::from(*b)))
                .collect(),
        )
    }
}

impl serde::Deserialize for Bytes {
    fn from_content(content: &serde::Content) -> Result<Self, serde::Error> {
        Vec::<u8>::from_content(content).map(Bytes::from)
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] when done writing.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing `Vec<u8>` without copying (pool reuse: a
    /// reclaimed backing vector becomes writable again).
    pub fn from_vec(data: Vec<u8>) -> Self {
        BytesMut { data }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Drops the contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Unwraps the backing `Vec<u8>` without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (little-endian accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }

    /// Reads `N` bytes into an array.
    #[doc(hidden)]
    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.chunk()[..N]);
        self.advance(N);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte sink (little-endian writers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_i64_le(-9);
        buf.put_f64_le(2.5);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i64_le(), -9);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(&b[..], b"xyz");
    }

    #[test]
    fn slice_and_split_share_data() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut rest = b.slice(..);
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
        assert_eq!(rest.remaining(), 4);
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn split_to_checks_bounds() {
        let mut b = Bytes::from(vec![1]);
        b.split_to(2);
    }

    #[test]
    fn clone_slice_and_split_share_one_allocation() {
        let b = Bytes::from(vec![7u8; 64]);
        let c = b.clone();
        let s = b.slice(8..32);
        let mut rest = b.clone();
        let head = rest.split_to(16);
        assert!(Bytes::ptr_eq(&b, &c));
        assert!(Bytes::ptr_eq(&b, &s));
        assert!(Bytes::ptr_eq(&b, &head));
        assert!(Bytes::ptr_eq(&b, &rest));
        // A fresh copy does not share.
        assert!(!Bytes::ptr_eq(&b, &Bytes::copy_from_slice(&b)));
        // Nested slices of slices still share.
        assert!(Bytes::ptr_eq(&b, &s.slice(1..3)));
    }

    #[test]
    fn freeze_then_slice_is_no_copy() {
        let mut m = BytesMut::with_capacity(16);
        m.extend_from_slice(b"0123456789abcdef");
        let frozen = m.freeze();
        let tail = frozen.slice(10..);
        assert!(Bytes::ptr_eq(&frozen, &tail));
        assert_eq!(&tail[..], b"abcdef");
    }

    #[test]
    fn reclaim_recovers_the_backing_vec_only_when_unique() {
        let mut v = Vec::with_capacity(64);
        v.extend_from_slice(b"reclaim me");
        let b = Bytes::from(v);
        assert!(b.is_unique());
        let view = b.slice(2..6);
        assert!(!b.is_unique());
        // A live sub-view blocks reclaim; the original comes back intact.
        let b = b.try_reclaim().unwrap_err();
        assert_eq!(&b[..], b"reclaim me");
        drop(view);
        assert!(b.is_unique());
        let vec = b.try_reclaim().unwrap();
        assert_eq!(&vec[..], b"reclaim me");
        assert!(vec.capacity() >= 64, "reclaim lost the allocation");
        // Reclaiming through a sub-view still returns the whole vec.
        let sub = Bytes::from(vec).slice(3..5);
        assert_eq!(sub.try_reclaim().unwrap().len(), 10);
    }

    #[test]
    fn bytes_mut_vec_roundtrip_keeps_capacity() {
        let mut m = BytesMut::from_vec(Vec::with_capacity(128));
        assert_eq!(m.capacity(), 128);
        m.extend_from_slice(b"abc");
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 128);
        m.reserve(256);
        assert!(m.capacity() >= 256);
        assert!(m.into_vec().capacity() >= 256);
    }

    #[test]
    fn serde_roundtrip_matches_vec_encoding() {
        use serde::{Deserialize, Serialize};
        let b = Bytes::from(vec![1u8, 2, 250]);
        let v = vec![1u8, 2, 250];
        assert_eq!(b.to_content(), v.to_content());
        let back = Bytes::from_content(&b.to_content()).unwrap();
        assert_eq!(back, b);
        assert!(Bytes::from_content(&serde::Content::Bool(true)).is_err());
    }
}
