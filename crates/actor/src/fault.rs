//! Failure-injection plans for resilience experiments.
//!
//! The fault-tolerance evaluation (Fig 11, Fig 16e) needs reproducible
//! failure scenarios: "kill loader 3 at t≈2 s, stall loader 7 for 500 ms".
//! [`FaultPlan`] is a declarative schedule of such events that test
//! harnesses replay against live actors via [`crate::ActorRef::inject_crash`]
//! and [`crate::ActorRef::inject_delay`].

use std::time::Duration;

/// One fault to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic the target actor.
    Crash,
    /// Stall the target actor for the given duration.
    Stall(Duration),
}

/// A scheduled fault event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from scenario start.
    pub at: Duration,
    /// Name of the target actor.
    pub target: String,
    /// The fault.
    pub kind: FaultKind,
}

/// An ordered schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a crash of `target` at offset `at`.
    pub fn crash_at(mut self, target: impl Into<String>, at: Duration) -> Self {
        self.events.push(FaultEvent {
            at,
            target: target.into(),
            kind: FaultKind::Crash,
        });
        self
    }

    /// Adds a stall of `target` at offset `at` for `len`.
    pub fn stall_at(mut self, target: impl Into<String>, at: Duration, len: Duration) -> Self {
        self.events.push(FaultEvent {
            at,
            target: target.into(),
            kind: FaultKind::Stall(len),
        });
        self
    }

    /// Events sorted by offset.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of crash events targeting `name`.
    pub fn crashes_for(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.target == name && e.kind == FaultKind::Crash)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_and_ordering() {
        let plan = FaultPlan::new()
            .crash_at("loader/3", Duration::from_secs(2))
            .stall_at(
                "loader/7",
                Duration::from_millis(500),
                Duration::from_millis(200),
            )
            .crash_at("loader/3", Duration::from_secs(1));
        assert_eq!(plan.len(), 3);
        let events = plan.events();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert_eq!(events[0].target, "loader/7");
        assert_eq!(plan.crashes_for("loader/3"), 2);
        assert_eq!(plan.crashes_for("loader/7"), 0);
    }

    #[test]
    fn empty_plan() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.events().is_empty());
    }
}
