//! Property-based tests for the §9 future-work features: the Strategy
//! Optimizer's plan-identity guarantee under *random* programs, Replay
//! Mode determinism under random workloads, Ahead-of-Fetch index
//! invariants, and column-projection consistency.

use proptest::prelude::*;

use megascale_data::balance::BalanceMethod;
use megascale_data::core::aheadfetch::MetaIndex;
use megascale_data::core::buffer::{BufferInfo, BufferSummary};
use megascale_data::core::dgraph::{BalanceOpts, DGraph, MetaView};
use megascale_data::core::optimizer::{CostExpr, OptimizeOpts, StrategyOp, StrategyProgram};
use megascale_data::core::plan::{BinPlan, BucketPlan, LoadingPlan};
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy as PlannerStrategy};
use megascale_data::core::replay::{PlanStore, ReplayOutcome, ReplayPlanner};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::gen::materialize_source_with_cost;
use megascale_data::data::{Modality, SampleMeta, SourceId};
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;
use megascale_data::storage::{ColumnarReader, MemStore};

fn buffers(samples_per_loader: u64, salt: u64) -> BufferInfo {
    let mk = |loader: u32, src: u32| BufferSummary {
        loader_id: loader,
        source: SourceId(src),
        samples: (0..samples_per_loader)
            .map(|i| SampleMeta {
                sample_id: (u64::from(src) << 48) | i,
                source: SourceId(src),
                modality: Modality::Image,
                text_tokens: 8 + ((i * 37 + salt * 13) % 512) as u32,
                image_patches: 32 + ((i * 101 + salt * 7) % 2048) as u32,
                raw_bytes: 256,
            })
            .collect(),
        mean_transform_ns: 500.0,
    };
    BufferInfo::new(vec![mk(0, 0), mk(1, 1)])
}

fn tree(dp: u32) -> ClientPlaceTree {
    let mesh = DeviceMesh::pp_dp_cp_tp(1, dp, 1, 2).unwrap();
    ClientPlaceTree::from_device_mesh(&mesh)
}

/// Random cost expressions (shape-free variants only, for speed).
fn cost_expr() -> impl Strategy<Value = CostExpr> {
    prop_oneof![
        Just(CostExpr::Tokens),
        Just(CostExpr::TextTokens),
        Just(CostExpr::ImagePatches),
        (0.001f64..10.0).prop_map(|scale| CostExpr::QuadraticTokens { scale }),
    ]
}

fn method() -> impl Strategy<Value = BalanceMethod> {
    prop_oneof![
        Just(BalanceMethod::Greedy),
        Just(BalanceMethod::KarmarkarKarp),
        Just(BalanceMethod::Interleave),
    ]
}

/// A random *tail* op — anything legal after `distribute`.
fn tail_op() -> impl Strategy<Value = StrategyOp> {
    prop_oneof![
        cost_expr().prop_map(StrategyOp::Cost),
        (method(), 1u32..5, any::<bool>(), any::<bool>()).prop_map(|(m, mb, inter, intra)| {
            StrategyOp::Balance {
                method: m,
                opts: BalanceOpts {
                    microbatches: mb,
                    inter_bucket: inter,
                    intra_bucket: intra,
                },
            }
        }),
        (1u32..5).prop_map(|m| StrategyOp::Chunk { microbatches: m }),
        prop_oneof![Just(Axis::TP), Just(Axis::CP), Just(Axis::PP)]
            .prop_map(StrategyOp::BroadcastAt),
        (proptest::collection::vec(0.0f64..4.0, 2), 1usize..64)
            .prop_map(|(weights, take)| StrategyOp::Mix { weights, take }),
    ]
}

/// A random well-formed program: optional leading mixes, a distribute,
/// then an arbitrary tail.
fn program() -> impl Strategy<Value = StrategyProgram> {
    (
        proptest::collection::vec(
            (proptest::collection::vec(0.1f64..4.0, 2), 1usize..96)
                .prop_map(|(weights, take)| StrategyOp::Mix { weights, take }),
            0..3,
        ),
        proptest::option::of(1u32..3),
        proptest::collection::vec(tail_op(), 0..6),
    )
        .prop_map(|(mixes, group, tail)| {
            let mut ops = mixes;
            ops.push(StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: group,
            });
            ops.extend(tail);
            StrategyProgram::new(ops)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The optimizer's core contract: for ANY well-formed program, the
    /// rewritten program produces a byte-identical loading plan.
    #[test]
    fn optimizer_preserves_plans_on_random_programs(
        p in program(),
        seed in 0u64..1000,
        n in 16u64..96,
    ) {
        let info = buffers(n, seed);
        let (optimized, report) = p.optimize(OptimizeOpts::default());
        prop_assert!(optimized.ops.len() <= p.ops.len());

        let run = |prog: &StrategyProgram| {
            let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
            g.init(tree(4));
            let mut rng = SimRng::seed(seed);
            prog.run(&mut g, &mut rng).unwrap();
            g.plan(0).unwrap()
        };
        let raw = run(&p);
        let opt = run(&optimized);
        prop_assert_eq!(raw, opt, "report: {:?}", report);
    }

    /// Optimization is idempotent: a second pass finds nothing.
    #[test]
    fn optimizer_reaches_fixpoint(p in program()) {
        let (once, _) = p.optimize(OptimizeOpts::default());
        let (twice, second_report) = once.optimize(OptimizeOpts::default());
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(second_report.total_rewrites(), 0);
    }

    /// Lineage elision changes only the lineage: plans match, trace empties.
    #[test]
    fn lineage_elision_only_drops_lineage(
        p in program(),
        seed in 0u64..1000,
    ) {
        let info = buffers(48, seed);
        let (prod, report) = p.optimize(OptimizeOpts { elide_lineage: true });
        prop_assert!(report.lineage_elided);
        let run = |prog: &StrategyProgram| {
            let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
            g.init(tree(2));
            let mut rng = SimRng::seed(seed);
            prog.run(&mut g, &mut rng).unwrap();
            let lineage_len = g.lineage().len();
            (g.plan(0).unwrap(), lineage_len)
        };
        let (raw_plan, raw_lineage) = run(&p);
        let (prod_plan, prod_lineage) = run(&prod);
        prop_assert_eq!(raw_plan, prod_plan);
        prop_assert_eq!(prod_lineage, 0);
        let _ = raw_lineage;
    }

    /// Serialization: programs survive a JSON round trip exactly.
    #[test]
    fn programs_round_trip_json(p in program()) {
        let json = serde_json::to_string(&p).unwrap();
        let back: StrategyProgram = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(p, back);
    }
}

/// Random plans for store round-trip testing.
fn arb_plan() -> impl Strategy<Value = LoadingPlan> {
    (
        0u64..100,
        proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(0u64..10_000, 0..8), 0.0f64..1e9),
                1..4,
            ),
            1..5,
        ),
    )
        .prop_map(|(step, buckets)| LoadingPlan {
            step,
            axis: DistributeAxis::DP,
            buckets: buckets
                .into_iter()
                .enumerate()
                .map(|(b, bins)| BucketPlan {
                    bucket: b as u32,
                    clients: vec![b as u32],
                    bins: bins
                        .into_iter()
                        .enumerate()
                        .map(|(k, (samples, cost))| BinPlan {
                            bin: k as u32,
                            samples,
                            total_cost: cost,
                        })
                        .collect(),
                })
                .collect(),
            excluded: vec![],
            broadcast_axes: vec![Axis::TP],
            directives: Default::default(),
            subplans: Default::default(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// PlanStore JSON checkpoints are lossless for arbitrary plans.
    #[test]
    fn plan_store_round_trips(plans in proptest::collection::vec(arb_plan(), 1..8)) {
        let mut store = PlanStore::new();
        for p in &plans {
            store.insert(p.clone());
        }
        let restored = PlanStore::from_json(&store.to_json()).unwrap();
        prop_assert_eq!(&store, &restored);
        for p in &plans {
            // Last write wins per step; the restored entry must be a plan
            // we inserted for that step.
            prop_assert!(restored.get(p.step).is_some());
        }
    }

    /// Replay serves identical plans for any (seed, batch) combination as
    /// long as buffers match the recording run.
    #[test]
    fn replay_is_deterministic_for_any_workload(
        seed in 0u64..500,
        batch in 4usize..32,
        steps in 1u64..6,
    ) {
        let mk_planner = || Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: batch,
                schedule: MixSchedule::uniform(2),
            },
            PlannerStrategy::Vanilla,
            tree(2),
            vec![SourceId(0), SourceId(1)],
            seed,
        );
        let bufs = |step: u64| buffers(96, step.wrapping_mul(31).wrapping_add(seed));
        let store = PlanStore::record(mk_planner(), steps, bufs).unwrap();
        let mut rp = ReplayPlanner::new(store.clone(), mk_planner());
        for step in 0..steps {
            let (plan, phases, outcome) = rp.next(&bufs(step)).unwrap();
            prop_assert_eq!(outcome, ReplayOutcome::Replayed);
            prop_assert_eq!(&plan, store.get(step).unwrap());
            prop_assert_eq!(phases.gather_ns, 0);
        }
    }
}

proptest! {
    // Storage materialization per case: keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// MetaIndex invariants over random source files: full coverage,
    /// reversible ids, footer-consistent payload accounting, exact stored
    /// costs.
    #[test]
    fn meta_index_invariants(
        rows in 20u64..200,
        seed in 0u64..100,
        coeff in 0.5f64..8.0,
    ) {
        let store = MemStore::new();
        let mut rng = SimRng::seed(seed);
        let spec = coyo700m_like(&mut rng).sources()[0].clone();
        let costfn = move |m: &SampleMeta| m.total_tokens() as f64 * coeff;
        let manifest =
            materialize_source_with_cost(&store, "p", &spec, rows, &mut rng, costfn)
                .unwrap();
        let ix = MetaIndex::build(&store, &manifest.path, spec.id, spec.modality, 0).unwrap();

        prop_assert_eq!(ix.len() as u64, rows);
        for (ordinal, e) in ix.entries().iter().enumerate() {
            prop_assert_eq!(ix.ordinal_of(e.sample_id), Some(ordinal as u64));
            let expect = (e.total_tokens() as f64 * coeff).round();
            prop_assert_eq!(ix.stored_cost(e.sample_id), Some(expect));
        }
        // Window accounting: full window equals the sum over all groups,
        // and is monotone in window length.
        let full = ix.window_payload_bytes(0, rows as usize);
        let reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        let img = reader.schema().index_of("image").unwrap();
        let footer_total: u64 = reader
            .footer()
            .row_groups
            .iter()
            .map(|rg| rg.columns[img].byte_len)
            .sum();
        prop_assert_eq!(full, footer_total);
        let mut prev = 0u64;
        for len in [1usize, rows as usize / 2, rows as usize] {
            let w = ix.window_payload_bytes(0, len);
            prop_assert!(w >= prev);
            prev = w;
        }
    }

    /// Column projection agrees with the full scan for every column, on
    /// random files.
    #[test]
    fn projection_matches_scan(rows in 10u64..150, seed in 0u64..100) {
        let store = MemStore::new();
        let mut rng = SimRng::seed(seed);
        let spec = coyo700m_like(&mut rng).sources()[1].clone();
        let manifest = materialize_source_with_cost(
            &store, "p", &spec, rows, &mut rng,
            |m: &SampleMeta| m.total_tokens() as f64,
        )
        .unwrap();
        let mut reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        let ncols = reader.schema().len();
        let full = reader.scan().unwrap();
        let all: Vec<usize> = (0..ncols).collect();
        let projected = reader.scan_columns(&all).unwrap();
        for (c, col) in projected.iter().enumerate() {
            prop_assert_eq!(col.len() as u64, rows);
            for (r, v) in col.iter().enumerate() {
                prop_assert_eq!(&full[r][c], v);
            }
        }
    }
}
