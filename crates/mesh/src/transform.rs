//! Parallelism transformations: how a collated microbatch becomes the exact
//! tensor slice each rank consumes (the "Parallelism Transformation" stage
//! of the paper's Fig 1 pipeline).

use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::mesh::{Axis, DeviceMesh, Rank};

/// What a given rank receives for a microbatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeliveryKind {
    /// Full payload (tokens/pixels) — e.g. PP stage 0, TP rank 0.
    Payload,
    /// Metadata only (shapes, position ids) — later PP stages.
    MetadataOnly,
    /// Nothing — the trainer broadcasts to this rank internally.
    Elided,
}

/// How CP splits a sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CpStyle {
    /// Contiguous equal chunks.
    Contiguous,
    /// Zig-zag: rank `i` gets chunks `i` and `2·cp−1−i`, balancing causal
    /// attention cost across ranks (early chunks attend to little, late
    /// chunks to everything).
    ZigZag,
}

/// Splits `[0, seq_len)` into per-CP-rank index ranges, contiguous style.
/// The first `seq_len % cp` ranks get one extra token.
pub fn cp_partition(seq_len: u64, cp: u32) -> Vec<Range<u64>> {
    let cp = cp.max(1) as u64;
    let base = seq_len / cp;
    let extra = seq_len % cp;
    let mut out = Vec::with_capacity(cp as usize);
    let mut start = 0;
    for i in 0..cp {
        let len = base + u64::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Zig-zag split: returns, per CP rank, the *pair* of ranges it owns.
pub fn zigzag_partition(seq_len: u64, cp: u32) -> Vec<(Range<u64>, Range<u64>)> {
    let cp = cp.max(1);
    let chunks = cp_partition(seq_len, cp * 2);
    (0..cp as usize)
        .map(|i| {
            let j = (2 * cp as usize - 1) - i;
            (chunks[i].clone(), chunks[j].clone())
        })
        .collect()
}

/// Causal-attention cost of owning token range `[r)` of a sequence of
/// `seq_len` tokens: sum over owned positions `p` of `p + 1` (each position
/// attends to its prefix). Used to verify zig-zag balance.
pub fn causal_cost(ranges: &[Range<u64>]) -> u64 {
    ranges
        .iter()
        .map(|r| {
            // Sum of (p+1) for p in [start, end).
            let n = r.end - r.start;
            let first = r.start + 1;
            let last = r.end;
            n * (first + last) / 2
        })
        .sum()
}

/// Decides what each rank receives for data distributed to a DP/CP bucket,
/// honoring `broadcast_at` elisions and PP metadata filtering.
///
/// Rules (paper Sec 4.2 and Fig 6):
/// - A rank whose coordinate is nonzero on any broadcast axis is `Elided`.
/// - A rank on PP stage > 0 gets `MetadataOnly` (it receives activations
///   from the previous stage, but needs shapes to pre-allocate).
/// - Everyone else gets `Payload`.
pub fn delivery_kind(mesh: &DeviceMesh, rank: Rank, broadcast_axes: &[Axis]) -> DeliveryKind {
    let elided = broadcast_axes
        .iter()
        .any(|a| mesh.coord(rank, *a).map(|c| c != 0).unwrap_or(false));
    if elided {
        return DeliveryKind::Elided;
    }
    match mesh.coord(rank, Axis::PP) {
        Ok(stage) if stage > 0 => DeliveryKind::MetadataOnly,
        _ => DeliveryKind::Payload,
    }
}

/// Counts deliveries by kind for a whole mesh (the quantity behind Fig 6's
/// memory-saving diagram and Fig 17a's redundancy grid).
pub fn delivery_census(mesh: &DeviceMesh, broadcast_axes: &[Axis]) -> (u32, u32, u32) {
    let mut payload = 0;
    let mut metadata = 0;
    let mut elided = 0;
    for r in 0..mesh.world_size() {
        match delivery_kind(mesh, r, broadcast_axes) {
            DeliveryKind::Payload => payload += 1,
            DeliveryKind::MetadataOnly => metadata += 1,
            DeliveryKind::Elided => elided += 1,
        }
    }
    (payload, metadata, elided)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition_covers_sequence() {
        for (seq, cp) in [(100u64, 4u32), (101, 4), (7, 8), (0, 3), (1, 1)] {
            let parts = cp_partition(seq, cp);
            assert_eq!(parts.len(), cp.max(1) as usize);
            let total: u64 = parts.iter().map(|r| r.end - r.start).sum();
            assert_eq!(total, seq, "seq {seq} cp {cp}");
            // Contiguity.
            for w in parts.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            // Near-equal sizes.
            let sizes: Vec<u64> = parts.iter().map(|r| r.end - r.start).collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn zigzag_covers_sequence_exactly_once() {
        let seq = 1024u64;
        let cp = 4u32;
        let pairs = zigzag_partition(seq, cp);
        let mut owned = vec![false; seq as usize];
        for (a, b) in &pairs {
            for p in a.clone().chain(b.clone()) {
                assert!(!owned[p as usize], "token {p} owned twice");
                owned[p as usize] = true;
            }
        }
        assert!(owned.into_iter().all(|o| o));
    }

    #[test]
    fn zigzag_balances_causal_cost() {
        let seq = 8192u64;
        let cp = 4u32;
        // Contiguous: rank cp-1 owns the most expensive suffix.
        let contiguous = cp_partition(seq, cp);
        let contig_costs: Vec<u64> = contiguous
            .iter()
            .map(|r| causal_cost(&[r.clone()]))
            .collect();
        let contig_imbalance =
            *contig_costs.iter().max().unwrap() as f64 / *contig_costs.iter().min().unwrap() as f64;

        let zz = zigzag_partition(seq, cp);
        let zz_costs: Vec<u64> = zz
            .iter()
            .map(|(a, b)| causal_cost(&[a.clone(), b.clone()]))
            .collect();
        let zz_imbalance =
            *zz_costs.iter().max().unwrap() as f64 / *zz_costs.iter().min().unwrap() as f64;

        assert!(contig_imbalance > 3.0, "contig = {contig_imbalance}");
        assert!(zz_imbalance < 1.05, "zigzag = {zz_imbalance}");
    }

    #[test]
    fn delivery_rules() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 1, 1, 2).unwrap();
        // Rank 0: PP0 TP0 → payload. Rank 1: PP0 TP1 → elided under
        // broadcast_at(TP). Rank 2: PP1 TP0 → metadata.
        assert_eq!(delivery_kind(&mesh, 0, &[Axis::TP]), DeliveryKind::Payload);
        assert_eq!(delivery_kind(&mesh, 1, &[Axis::TP]), DeliveryKind::Elided);
        assert_eq!(
            delivery_kind(&mesh, 2, &[Axis::TP]),
            DeliveryKind::MetadataOnly
        );
        // Without broadcast elision, TP1 fetches a payload copy.
        assert_eq!(delivery_kind(&mesh, 1, &[]), DeliveryKind::Payload);
    }

    #[test]
    fn census_counts_sum_to_world() {
        let mesh = DeviceMesh::pp_dp_cp_tp(4, 3, 2, 2).unwrap();
        let (p, m, e) = delivery_census(&mesh, &[Axis::TP]);
        assert_eq!(p + m + e, mesh.world_size());
        // TP elision removes exactly half the 2-way-TP world.
        assert_eq!(e, mesh.world_size() / 2);
        // Payload only on PP0 of the remaining.
        assert_eq!(p, mesh.world_size() / 2 / 4);
    }

    #[test]
    fn causal_cost_of_whole_sequence() {
        // Sum 1..=n.
        assert_eq!(causal_cost(&[0..10]), 55);
        assert_eq!(causal_cost(&[5..10]), 6 + 7 + 8 + 9 + 10);
        assert_eq!(causal_cost(&[]), 0);
    }
}
