//! Loss-convergence simulation (Fig 18).
//!
//! The balancer reorders samples across microbatches/devices but never
//! changes *which* samples a step consumes (the paper's conservative
//! inter-microbatch-only configuration). Its loss impact is therefore
//! limited to (a) gradient-noise differences from microbatch composition
//! and (b) numerical noise from CP's modified sequence partitioning
//! (different GEMM summation orders). This module models a power-law loss
//! curve with exactly those two perturbation channels.

use msd_sim::SimRng;

/// A simulated training-loss trajectory.
#[derive(Debug, Clone)]
pub struct LossSim {
    rng: SimRng,
    /// Initial loss.
    pub l0: f64,
    /// Power-law decay exponent.
    pub alpha: f64,
    /// Irreducible loss floor.
    pub floor: f64,
    /// Gradient-noise amplitude (scales with microbatch imbalance).
    pub grad_noise: f64,
    /// Extra numerical-noise amplitude when CP repartitioning is active.
    pub cp_noise: f64,
    tokens_seen: f64,
    step: u64,
}

impl LossSim {
    /// Creates a simulator. `cp_enabled` adds the CP numerical-noise term.
    pub fn new(seed: u64, cp_enabled: bool) -> Self {
        LossSim {
            rng: SimRng::seed(seed),
            l0: 12.0,
            alpha: 0.12,
            floor: 1.8,
            grad_noise: 0.05,
            cp_noise: if cp_enabled { 0.08 } else { 0.0 },
            tokens_seen: 0.0,
            step: 0,
        }
    }

    /// Current step.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Advances one step. `mb_token_counts` are the microbatch sizes of
    /// this step (their dispersion drives gradient noise); `reordered`
    /// marks balancer-modified sample orderings (adds the CP term when
    /// enabled).
    pub fn step(&mut self, mb_token_counts: &[u64], reordered: bool) -> f64 {
        let tokens: u64 = mb_token_counts.iter().sum();
        self.tokens_seen += tokens as f64;
        self.step += 1;
        let base =
            self.floor + (self.l0 - self.floor) * (1.0 + self.tokens_seen / 1e6).powf(-self.alpha);
        // Gradient noise ∝ coefficient of variation of microbatch sizes.
        let n = mb_token_counts.len().max(1) as f64;
        let mean = tokens as f64 / n;
        let cv = if mean > 0.0 {
            (mb_token_counts
                .iter()
                .map(|t| (*t as f64 - mean).powi(2))
                .sum::<f64>()
                / n)
                .sqrt()
                / mean
        } else {
            0.0
        };
        let noise = self.rng.normal() * self.grad_noise * (1.0 + cv);
        // Only draw the CP perturbation when it is active, so disabling CP
        // leaves the base noise stream untouched (curves tightly track).
        let cp_term = if reordered && self.cp_noise > 0.0 {
            self.rng.normal() * self.cp_noise
        } else {
            0.0
        };
        (base + noise + cp_term).max(self.floor * 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sim: &mut LossSim, steps: u64, mb: &[u64], reordered: bool) -> Vec<f64> {
        (0..steps).map(|_| sim.step(mb, reordered)).collect()
    }

    #[test]
    fn loss_decreases_on_average() {
        let mut sim = LossSim::new(1, false);
        let curve = run(&mut sim, 200, &[8192; 4], false);
        let early: f64 = curve[..20].iter().sum::<f64>() / 20.0;
        let late: f64 = curve[180..].iter().sum::<f64>() / 20.0;
        assert!(late < early, "early {early} late {late}");
    }

    #[test]
    fn balanced_and_unbalanced_curves_track_without_cp() {
        // Same seeds, same data volume, different ordering flags: without
        // CP the curves tightly track (Fig 18a).
        let mut a = LossSim::new(7, false);
        let mut b = LossSim::new(7, false);
        let ca = run(&mut a, 50, &[8192; 4], false);
        let cb = run(&mut b, 50, &[8192; 4], true);
        let max_gap = ca
            .iter()
            .zip(&cb)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(max_gap < 0.02, "gap = {max_gap}");
    }

    #[test]
    fn cp_adds_fluctuation_but_converges() {
        let mut base = LossSim::new(9, true);
        let mut reord = LossSim::new(9, true);
        let cb = run(&mut base, 50, &[8192; 4], false);
        let cr = run(&mut reord, 50, &[8192; 4], true);
        let max_gap = cb
            .iter()
            .zip(&cr)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max);
        assert!(max_gap > 0.0, "CP term should perturb");
        // Still converges to the same neighborhood.
        let tail_gap = (cb[45..].iter().sum::<f64>() - cr[45..].iter().sum::<f64>()).abs() / 5.0;
        assert!(tail_gap < 0.25, "tail gap = {tail_gap}");
    }

    #[test]
    fn imbalanced_microbatches_raise_noise() {
        let spread = |curve: &[f64]| {
            let mean = curve.iter().sum::<f64>() / curve.len() as f64;
            curve.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / curve.len() as f64
        };
        let mut even = LossSim::new(3, false);
        let mut skew = LossSim::new(3, false);
        // Drop the deterministic trend by differencing consecutive steps.
        let ce = run(&mut even, 400, &[8192; 4], false);
        let cs = run(&mut skew, 400, &[100, 100, 100, 32468], false);
        let diff = |c: &[f64]| -> Vec<f64> { c.windows(2).map(|w| w[1] - w[0]).collect() };
        assert!(spread(&diff(&cs)) > spread(&diff(&ce)));
    }
}
