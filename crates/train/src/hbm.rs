//! HBM (device memory) model with OOM detection.
//!
//! Sec 7.3 observes that *"in the absence of load balancing, peak
//! activation memory can induce OOM errors"* (their ViT-2B runs). The
//! model here captures the mechanism: activation memory is linear in the
//! tokens resident on a rank, pipeline stage 0 keeps `p` microbatches in
//! flight, and an imbalanced microbatch spikes the peak.

use msd_mesh::{Axis, DeviceMesh};

use crate::models::{backbone_params, encoder_params, ModelPreset};

/// Bytes of activations per token per hidden unit per layer
/// (Megatron-style estimate with selective recomputation, BF16).
pub const ACT_BYTES_PER_TOKEN_PER_HIDDEN_PER_LAYER: f64 = 12.0;

/// Bytes of state per parameter (BF16 weights + grads + FP32 Adam moments).
pub const STATE_BYTES_PER_PARAM: f64 = 18.0;

/// Peak HBM demand on the most loaded rank, in bytes.
///
/// `max_mb_tokens` is the token count of the *largest* microbatch on any
/// rank (after CP sharding); stage 0 of a 1F1B pipeline holds up to `p`
/// microbatches of activations.
pub fn peak_hbm_bytes(mesh: &DeviceMesh, model: &ModelPreset, max_mb_tokens: u64) -> u64 {
    let pp = f64::from(mesh.size(Axis::PP));
    let tp = f64::from(mesh.size(Axis::TP));
    let cp = f64::from(mesh.size(Axis::CP));

    let dp = f64::from(mesh.size(Axis::DP));
    let backbone_p = backbone_params(&model.backbone);
    let encoder_p = model.encoder.as_ref().map(encoder_params).unwrap_or(0.0);
    // Weights/optimizer: backbone sharded over PP×TP; encoder optimizer
    // state ZeRO-sharded over DP (pure data parallel in the VLM setups).
    let state =
        backbone_p * STATE_BYTES_PER_PARAM / (pp * tp) + encoder_p * STATE_BYTES_PER_PARAM / dp;

    let layers_per_stage = f64::from(model.backbone.layers) / pp;
    let act_per_mb = max_mb_tokens as f64 / cp
        * f64::from(model.backbone.hidden)
        * ACT_BYTES_PER_TOKEN_PER_HIDDEN_PER_LAYER
        * layers_per_stage
        / tp;
    // Stage 0 holds up to `pp` in-flight microbatches.
    (state + act_per_mb * pp) as u64
}

/// Whether the setup fits on the given HBM capacity.
pub fn fits(mesh: &DeviceMesh, model: &ModelPreset, max_mb_tokens: u64, hbm_bytes: u64) -> bool {
    peak_hbm_bytes(mesh, model, max_mb_tokens) <= hbm_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::vlm_preset;

    fn mesh() -> DeviceMesh {
        DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap()
    }

    #[test]
    fn peak_grows_with_microbatch_tokens() {
        let model = vlm_preset("ViT-2B", "Llama-12B");
        let m = mesh();
        let small = peak_hbm_bytes(&m, &model, 8_192);
        let large = peak_hbm_bytes(&m, &model, 262_144);
        assert!(large > small);
    }

    #[test]
    fn imbalance_can_oom_a_48gb_card() {
        // Balanced microbatches fit; one 8x-outlier microbatch does not.
        let model = vlm_preset("ViT-2B", "Llama-12B");
        let m = mesh();
        let hbm = 48 << 30;
        assert!(fits(&m, &model, 40_000, hbm));
        assert!(!fits(&m, &model, 400_000, hbm));
    }

    #[test]
    fn cp_and_tp_reduce_activation_pressure() {
        let model = vlm_preset("ViT-1B", "Llama-12B");
        let no_shard = DeviceMesh::pp_dp_cp_tp(4, 1, 1, 1).unwrap();
        let sharded = DeviceMesh::pp_dp_cp_tp(4, 1, 4, 4).unwrap();
        let tokens = 100_000;
        assert!(
            peak_hbm_bytes(&sharded, &model, tokens) < peak_hbm_bytes(&no_shard, &model, tokens)
        );
    }
}
