//! runtime_throughput — concurrent serving vs. the inline step loop.
//!
//! Compares three deployments of the same pipeline on the same workload:
//!
//! 1. `inline`: the single-threaded loop (refill → gather → plan → pop →
//!    construct on one caller thread, no actors, no overlap);
//! 2. `actorized`: [`ThreadedPipeline::step`] — actor-hosted components,
//!    still driven synchronously by one caller;
//! 3. `serve+prefetch`: [`ThreadedPipeline::serve`] with pipelined
//!    refill-ahead and N trainer clients pulling concurrently, for
//!    N ∈ {1, 2, 4, 8}.
//!
//! Prints a samples/sec table and, when `BENCH_JSON_OUT` is set, writes a
//! machine-readable JSON report (consumed by `bench.sh` to produce
//! `BENCH_runtime.json`).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use msd_bench::{banner, f, table_header, table_row};
use msd_core::buffer::BufferInfo;
use msd_core::constructor::DataConstructor;
use msd_core::loader::{LoaderConfig, SourceLoader};
use msd_core::planner::{Planner, PlannerConfig, Strategy};
use msd_core::schedule::MixSchedule;
use msd_core::system::core::PipelineCore;
use msd_core::system::runtime::{ServeOptions, ThreadedPipeline};
use msd_data::catalog::coyo700m_like;
use msd_data::{Catalog, SourceSpec};
use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use msd_sim::SimRng;

const STEPS: u64 = 24;
const SAMPLES_PER_STEP: usize = 128;
const REFILL_TARGET: usize = 96;

fn catalog() -> Catalog {
    let mut rng = SimRng::seed(17);
    coyo700m_like(&mut rng)
}

fn mesh() -> DeviceMesh {
    DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).unwrap()
}

fn planner(catalog: &Catalog) -> Planner {
    let tree = ClientPlaceTree::from_device_mesh(&mesh());
    Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: SAMPLES_PER_STEP,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: msd_balance::BalanceMethod::Greedy,
            backbone: msd_balance::BackboneShape {
                layers: 4,
                hidden: 256,
                mlp_ratio: 4.0,
                heads: 4,
                vocab: 8000,
                experts_per_token: 1,
            },
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    )
}

/// Per-sample storage-fetch latency (real wall time, amortized over each
/// loader's 2 workers): the stall the disaggregated runtime exists to
/// hide. Identical in every deployment; only the overlap differs.
const FETCH_LATENCY_NS: u64 = 400_000;

fn sources(catalog: &Catalog) -> Vec<(SourceSpec, LoaderConfig)> {
    catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, FETCH_LATENCY_NS),
            )
        })
        .collect()
}

fn constructors(count: usize) -> Vec<DataConstructor> {
    (0..count)
        .map(|_| DataConstructor::new(mesh(), 4096))
        .collect()
}

/// Deployment 1: everything on the caller thread, no actors.
fn run_inline() -> f64 {
    let catalog = catalog();
    let mut core = PipelineCore::new(planner(&catalog));
    let mut loaders: Vec<SourceLoader> = sources(&catalog)
        .into_iter()
        .map(|(spec, cfg)| SourceLoader::synthetic(spec, cfg, 99))
        .collect();
    let ctors = constructors(4);
    let t0 = Instant::now();
    for _ in 0..STEPS {
        for l in &mut loaders {
            l.refill(REFILL_TARGET).expect("synthetic refill");
        }
        let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
        let out = core.synthesize(&info).expect("plan");
        let mut popped = HashMap::new();
        for l in &mut loaders {
            if let Some(ids) = out.plan.directives.get(&l.id()) {
                let ids = ids.clone();
                for s in l.pop(&ids) {
                    popped.insert(s.meta.sample_id, s);
                }
            }
        }
        let batches = PipelineCore::assemble(&ctors, &out.plan, &popped);
        std::hint::black_box(batches);
    }
    t0.elapsed().as_secs_f64()
}

/// Deployment 2: actor-hosted components, synchronous single caller.
fn run_actorized() -> f64 {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let t0 = Instant::now();
    for _ in 0..STEPS {
        let (_, _, batches) = pipeline.step(REFILL_TARGET).expect("threaded step");
        std::hint::black_box(batches);
    }
    let elapsed = t0.elapsed().as_secs_f64();
    pipeline.shutdown();
    elapsed
}

/// Deployment 3: concurrent serving with pipelined refill-ahead.
fn run_serve(clients: u32) -> f64 {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let t0 = Instant::now();
    let mut session = pipeline.serve(ServeOptions {
        clients,
        steps: STEPS,
        refill_target: REFILL_TARGET,
        queue_depth: 4,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut pulled = 0u64;
                while let Some((_, batch)) = c.next() {
                    std::hint::black_box(&batch);
                    pulled += 1;
                }
                pulled
            })
        })
        .collect();
    let mut pulled = 0u64;
    for h in handles {
        pulled += h.join().expect("client thread");
    }
    let served = session.join();
    let elapsed = t0.elapsed().as_secs_f64();
    assert_eq!(served, STEPS, "driver fell short");
    assert_eq!(pulled, STEPS * u64::from(clients), "clients missed steps");
    pipeline.shutdown();
    elapsed
}

fn main() {
    banner(
        "runtime_throughput",
        "inline vs actorized vs actorized+prefetch concurrent serving",
    );
    let total_samples = (STEPS as usize * SAMPLES_PER_STEP) as f64;
    let sps = |elapsed: f64| total_samples / elapsed;

    let inline_s = run_inline();
    let actorized_s = run_actorized();
    let client_counts = [1u32, 2, 4, 8];
    let serve_s: Vec<f64> = client_counts.iter().map(|c| run_serve(*c)).collect();

    table_header(&[
        "deployment",
        "clients",
        "elapsed_s",
        "samples/s",
        "vs_inline",
    ]);
    table_row(&[
        "inline".into(),
        "1".into(),
        f(inline_s),
        f(sps(inline_s)),
        "1.00x".into(),
    ]);
    table_row(&[
        "actorized".into(),
        "1".into(),
        f(actorized_s),
        f(sps(actorized_s)),
        format!("{:.2}x", inline_s / actorized_s),
    ]);
    for (c, s) in client_counts.iter().zip(&serve_s) {
        table_row(&[
            "serve+prefetch".into(),
            c.to_string(),
            f(*s),
            f(sps(*s)),
            format!("{:.2}x", inline_s / s),
        ]);
    }
    println!("\n[steps={STEPS}, samples/step={SAMPLES_PER_STEP}; serve overlaps refill with");
    println!(" planning/construction and parallelizes loaders + constructors across actors]");

    if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
        let serve_json: Vec<String> = client_counts
            .iter()
            .zip(&serve_s)
            .map(|(c, s)| format!("    \"{}\": {:.2}", c, sps(*s)))
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"runtime_throughput\",\n  \"steps\": {STEPS},\n  \
             \"samples_per_step\": {SAMPLES_PER_STEP},\n  \
             \"samples_per_sec\": {{\n    \"inline\": {:.2},\n    \"actorized\": {:.2},\n    \
             \"serve_prefetch_by_clients\": {{\n{}\n    }}\n  }}\n}}\n",
            sps(inline_s),
            sps(actorized_s),
            serve_json.join(",\n")
        );
        std::fs::write(&path, json).expect("write BENCH_JSON_OUT");
        println!("[json report written to {path}]");
    }
}
