//! Fig 13 — End-to-end orchestration performance.
//!
//! Four panels (backbone × dataset), each sweeping encoder size and
//! context length, each comparing three strategies: Baseline (no
//! scheduling), Backbone balance, and Hybrid balance. Reports training
//! throughput (tokens/s) with speedups vs the baseline. Paper headlines:
//! up to 4.54× (avg 1.77×); gains grow with context length (4k: 1.71×,
//! 8k: 2.63×, 16k: 3.09× average hybrid speedups).

use msd_bench::{banner, run_scenario, table_header, table_row, Scenario};
use msd_data::catalog::{coyo700m_like, navit_like};
use msd_data::Catalog;
use msd_mesh::DeviceMesh;
use msd_sim::SimRng;
use msd_train::models::vlm_preset;

struct Panel {
    backbone: &'static str,
    dataset: &'static str,
    cells: Vec<(&'static str, u64)>, // (encoder, ctx)
}

fn catalog_for(name: &str, rng: &mut SimRng) -> Catalog {
    match name {
        "coyo700m" => coyo700m_like(rng),
        _ => navit_like(rng),
    }
}

fn main() {
    banner(
        "Figure 13",
        "End-to-end orchestration performance (tokens/s)",
    );
    // Table 1 models are exercised here; print them once as the Table 1
    // reproduction.
    println!("\nTable 1 model configurations:");
    table_header(&["model", "layers", "heads", "hidden", "topk"]);
    for (name, enc) in [
        ("ViT-1B", msd_train::models::vit_1b()),
        ("ViT-2B", msd_train::models::vit_2b()),
    ] {
        table_row(&[
            name.to_string(),
            enc.layers.to_string(),
            enc.heads.to_string(),
            enc.hidden.to_string(),
            "-".to_string(),
        ]);
    }
    for (name, b) in [
        ("Llama-12B", msd_train::models::llama_12b()),
        ("tMoE-25B", msd_train::models::tmoe_25b()),
        ("Mixtral-8x7B", msd_train::models::mixtral_8x7b()),
    ] {
        table_row(&[
            name.to_string(),
            b.layers.to_string(),
            b.heads.to_string(),
            b.hidden.to_string(),
            b.experts_per_token.to_string(),
        ]);
    }

    let panels = vec![
        Panel {
            backbone: "Llama-12B",
            dataset: "navit",
            cells: vec![
                ("ViT-1B", 4096),
                ("ViT-1B", 8192),
                ("ViT-2B", 4096),
                ("ViT-2B", 8192),
            ],
        },
        Panel {
            backbone: "tMoE-25B",
            dataset: "coyo700m",
            cells: vec![
                ("ViT-1B", 4096),
                ("ViT-1B", 8192),
                ("ViT-2B", 4096),
                ("ViT-2B", 8192),
            ],
        },
        Panel {
            backbone: "tMoE-25B",
            dataset: "navit",
            cells: vec![
                ("ViT-1B", 4096),
                ("ViT-1B", 8192),
                ("ViT-2B", 4096),
                ("ViT-2B", 8192),
            ],
        },
        Panel {
            backbone: "Mixtral-8x7B",
            dataset: "coyo700m",
            cells: vec![
                ("ViT-1B", 8192),
                ("ViT-1B", 16384),
                ("ViT-2B", 8192),
                ("ViT-2B", 16384),
            ],
        },
    ];

    let mut rng = SimRng::seed(13);
    let mesh = DeviceMesh::pp_dp_cp_tp(2, 4, 1, 2).unwrap();
    let mut hybrid_speedups = Vec::new();
    let mut by_ctx: std::collections::BTreeMap<u64, Vec<f64>> = Default::default();

    for panel in &panels {
        println!("\n--- {}, {} ---", panel.backbone, panel.dataset);
        table_header(&["encoder/ctx", "baseline", "backbone", "hybrid", "speedup"]);
        for (encoder, ctx) in &panel.cells {
            let catalog = catalog_for(panel.dataset, &mut rng);
            let mean_tokens: f64 = if panel.dataset == "coyo700m" {
                4500.0
            } else {
                7500.0
            };
            let samples = ((4.0 * 8.0 * *ctx as f64 / mean_tokens).ceil() as usize).max(24);
            let scenario = Scenario {
                mesh: mesh.clone(),
                model: vlm_preset(encoder, panel.backbone),
                ctx: *ctx,
                microbatches: 8,
                samples_per_step: samples,
                catalog,
            };
            let strategies = scenario.strategies();
            let (base, _) = run_scenario(&scenario, strategies[0].clone(), 3, 7);
            let (bb, _) = run_scenario(&scenario, strategies[1].clone(), 3, 7);
            let (hy, _) = run_scenario(&scenario, strategies[2].clone(), 3, 7);
            let speedup = hy / base;
            hybrid_speedups.push(speedup);
            by_ctx.entry(*ctx).or_default().push(speedup);
            table_row(&[
                format!("{encoder}/{}k", ctx / 1024),
                format!("{base:.0}"),
                format!("{bb:.0}"),
                format!("{hy:.0}"),
                format!("{speedup:.2}x"),
            ]);
        }
    }

    let avg: f64 = hybrid_speedups.iter().sum::<f64>() / hybrid_speedups.len() as f64;
    let max = hybrid_speedups.iter().cloned().fold(0.0f64, f64::max);
    println!("\nhybrid speedup: avg {avg:.2}x, max {max:.2}x   [paper: avg 1.77x, max 4.54x]");
    println!("speedup by context length [paper: 4k 1.71x, 8k 2.63x, 16k 3.09x]:");
    for (ctx, v) in by_ctx {
        println!(
            "  {}k: {:.2}x",
            ctx / 1024,
            v.iter().sum::<f64>() / v.len() as f64
        );
    }
}
