//! Hybrid-parallel trainer model: FLOPs, pipeline schedule, HBM, loss.
//!
//! The paper's throughput numbers come from real VLM training on L20
//! clusters; this crate is the analytic stand-in. It models exactly the
//! structure the evaluation depends on:
//!
//! - [`models`]: the Table 1 configurations (ViT-1B/2B, Llama-12B,
//!   tMoE-25B, Mixtral-8×7B).
//! - [`gpu`]: accelerator throughput/memory specs (NVIDIA L20 class).
//! - [`iteration`]: iteration-time composition under PP/DP/CP/TP — 1F1B
//!   pipeline with heterogeneous microbatches, DP stragglers, encoder
//!   (EDP) phase, encoder→backbone All-to-All, and gradient allreduce.
//! - [`hbm`]: activation-memory model with OOM detection (the ViT-2B
//!   OOM-under-imbalance observation of Sec 7.3).
//! - [`loss`]: loss-convergence simulation for the Fig 18 balancer-impact
//!   study.

pub mod gpu;
pub mod hbm;
pub mod iteration;
pub mod loss;
pub mod models;
pub mod timeline;

pub use gpu::GpuSpec;
pub use iteration::{IterationBreakdown, RankLoads, TrainSetup};
pub use loss::LossSim;
pub use models::ModelPreset;
pub use timeline::{Span, Timeline};
