//! Zero-copy data-plane integration tests.
//!
//! Two contracts are pinned here:
//!
//! 1. **Golden equivalence** — the sim path ([`MegaScaleData`]) and the
//!    threaded serve path ([`ThreadedPipeline::serve`]) built from the
//!    same parts produce *byte-identical* batch streams (same plans, same
//!    packing, same payload bytes). This is the guard rail for the
//!    zero-copy refactor: sharing buffers instead of copying them must
//!    not change a single delivered byte.
//! 2. **No-copy fan-out** — payload bytes are never duplicated on the way
//!    from a storage block to N serving clients: constructed batches
//!    share the popped samples' allocations (asserted via
//!    [`bytes::Bytes::ptr_eq`]), and clients of the same constructor
//!    receive the *same* batch (asserted via [`Arc::ptr_eq`]).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use megascale_data::balance::{BackboneShape, BalanceMethod};
use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::constructor::{ConstructedBatch, DataConstructor};
use megascale_data::core::loader::{LoaderConfig, SourceLoader};
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::runtime::{ServeOptions, ThreadedPipeline};
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::core::PipelineCore;
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::gen::materialize_source;
use megascale_data::data::{Catalog, SourceSpec};
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;
use megascale_data::storage::MemStore;

const SEED: u64 = 4242;
const SAMPLES_PER_STEP: usize = 16;
const STEPS: u64 = 5;

/// One client's observed `(serve step, shared batch)` stream.
type Stream = Vec<(u64, Arc<ConstructedBatch>)>;

fn catalog() -> Catalog {
    let mut rng = SimRng::seed(6);
    coyo700m_like(&mut rng)
}

fn mesh() -> DeviceMesh {
    DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap()
}

fn planner(catalog: &Catalog) -> Planner {
    Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: SAMPLES_PER_STEP,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: BackboneShape {
                layers: 2,
                hidden: 128,
                mlp_ratio: 4.0,
                heads: 2,
                vocab: 1000,
                experts_per_token: 1,
            },
        },
        ClientPlaceTree::from_device_mesh(&mesh()),
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    )
}

fn sources(catalog: &Catalog) -> Vec<(SourceSpec, LoaderConfig)> {
    catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), LoaderConfig::solo(i as u32)))
        .collect()
}

fn msd_config(catalog: Catalog) -> MsdConfig {
    MsdConfig {
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: SAMPLES_PER_STEP,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        catalog,
        mesh: mesh(),
        strategy: Strategy::Vanilla, // Unused: from_parts takes the planner.
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 32,
            total_mem_bytes: 1 << 40,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 0,
        buffer_capacity: 1024,
        seed: SEED,
    }
}

/// The per-loader refill target `MegaScaleData::step` uses, mirrored so
/// the serve driver fills buffers identically.
fn refill_target(loaders: usize) -> usize {
    (SAMPLES_PER_STEP / loaders.max(1)).max(4) * 2
}

#[test]
fn sim_and_serve_paths_produce_byte_identical_batches() {
    let catalog = catalog();

    // Sim path: MegaScaleData from explicit parts.
    let mut sim = MegaScaleData::from_parts(
        msd_config(catalog.clone()),
        planner(&catalog),
        sources(&catalog),
    );
    let mut golden: Vec<HashMap<u32, ConstructedBatch>> = Vec::new();
    for _ in 0..STEPS {
        let out = sim.step().unwrap();
        golden.push(
            out.batches
                .into_iter()
                .map(|b| (b.bucket, b))
                .collect::<HashMap<_, _>>(),
        );
    }

    // Threaded serve path: same sources, same planner, same seed; one
    // client per bucket so every bucket's stream is observed.
    let srcs = sources(&catalog);
    let n_loaders = srcs.len();
    let buckets = golden[0].len() as u32;
    let constructors = (0..buckets)
        .map(|_| DataConstructor::new(mesh(), 4096))
        .collect();
    let mut thr = ThreadedPipeline::new(srcs, planner(&catalog), constructors, SEED);
    let mut session = thr.serve(ServeOptions {
        clients: buckets,
        steps: STEPS,
        refill_target: refill_target(n_loaders),
        queue_depth: 4,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut stream = Vec::new();
                while let Some((step, batch)) = c.next() {
                    stream.push((step, batch));
                }
                (c.id, stream)
            })
        })
        .collect();
    let streams: Vec<(u32, Stream)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(session.join(), STEPS);

    // Client i pulls from constructor i, which serves bucket i
    // (bucket → constructor mapping is `bucket % count`).
    for (id, stream) in &streams {
        assert_eq!(stream.len(), STEPS as usize, "client {id} missed steps");
        for (step, batch) in stream {
            assert_eq!(
                PipelineCore::constructor_index(batch.bucket, buckets as usize),
                *id as usize,
                "bucket → constructor mapping drifted"
            );
            let expect = &golden[*step as usize][&batch.bucket];
            assert_eq!(
                batch.as_ref(),
                expect,
                "client {id} step {step}: serve path diverged from sim path"
            );
            // Batches carry real payload bytes.
            assert!(batch.microbatches.iter().any(|m| !m.payloads.is_empty()));
        }
    }
}

#[test]
fn clients_of_one_constructor_share_the_same_batch_allocation() {
    let catalog = catalog();
    let srcs = sources(&catalog);
    let n_loaders = srcs.len();
    let constructors = (0..2).map(|_| DataConstructor::new(mesh(), 4096)).collect();
    let mut thr = ThreadedPipeline::new(srcs, planner(&catalog), constructors, SEED);
    let mut session = thr.serve(ServeOptions {
        clients: 4,
        steps: 4,
        refill_target: refill_target(n_loaders),
        queue_depth: 4,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut stream = Vec::new();
                while let Some((step, batch)) = c.next() {
                    stream.push((step, batch));
                }
                (c.id, stream)
            })
        })
        .collect();
    let streams: Vec<(u32, Stream)> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(session.join(), 4);

    // Clients 0/2 share constructor 0, clients 1/3 share constructor 1:
    // each pair must observe the *same* batch objects (fan-out is a
    // refcount bump, zero per-client payload copies) — and therefore the
    // same underlying payload allocations.
    for (id_a, stream_a) in &streams {
        for (id_b, stream_b) in &streams {
            if id_a < id_b && id_a % 2 == id_b % 2 {
                for ((sa, a), (sb, b)) in stream_a.iter().zip(stream_b) {
                    assert_eq!(sa, sb);
                    assert!(
                        Arc::ptr_eq(a, b),
                        "clients {id_a}/{id_b} step {sa}: batch was deep-copied per client"
                    );
                    for (ma, mb) in a.microbatches.iter().zip(&b.microbatches) {
                        for ((ia, pa), (ib, pb)) in ma.payloads.iter().zip(&mb.payloads) {
                            assert_eq!(ia, ib);
                            assert!(Bytes::ptr_eq(pa, pb));
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn stored_payloads_reach_the_batch_without_a_single_copy() {
    // End to end: MSDCOL01 file bytes → range-read block → decoded row →
    // loader buffer → pop → constructed batch, all one allocation. The
    // loader's sample transforms are deferred past the pop
    // (transformation reordering with an empty head) so nothing mutates
    // the payload on the way.
    let store = Arc::new(MemStore::new());
    let mut rng = SimRng::seed(9);
    let spec = catalog().sources()[0].clone();
    let manifest = materialize_source(store.as_ref(), "data", &spec, 64, &mut rng).unwrap();
    let file = megascale_data::storage::ObjectStore::get(store.as_ref(), &manifest.path).unwrap();

    let mut loader = SourceLoader::stored(
        spec,
        LoaderConfig::solo(0),
        store.clone(),
        manifest.path.clone(),
        1,
    );
    loader.set_transform_split(Some(0)); // Defer the whole pipeline.
    loader.refill(8).unwrap();
    let ids: Vec<u64> = loader
        .summary()
        .samples
        .iter()
        .map(|m| m.sample_id)
        .collect();
    let popped = loader.pop(&ids);
    assert_eq!(popped.len(), 8);
    for s in &popped {
        assert!(
            Bytes::ptr_eq(&s.payload, &file),
            "sample {} was copied out of the stored file buffer",
            s.meta.sample_id
        );
    }

    // Constructing a batch still shares the file allocation.
    let constructor = DataConstructor::new(mesh(), 4096);
    let samples: HashMap<u64, _> = popped.into_iter().map(|s| (s.meta.sample_id, s)).collect();
    let plan = megascale_data::core::plan::BucketPlan {
        bucket: 0,
        clients: vec![0],
        bins: vec![megascale_data::core::plan::BinPlan {
            bin: 0,
            samples: ids,
            total_cost: 0.0,
        }],
    };
    let batch = constructor.construct(&plan, &samples, &[]);
    let payloads: Vec<&(u64, Bytes)> = batch
        .microbatches
        .iter()
        .flat_map(|m| m.payloads.iter())
        .collect();
    assert_eq!(payloads.len(), 8);
    for (id, payload) in payloads {
        assert!(
            Bytes::ptr_eq(payload, &file),
            "batch payload for sample {id} no longer shares the file buffer"
        );
    }
}
