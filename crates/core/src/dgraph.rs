//! `DGraph`: the stateful dataflow graph behind the declarative data plane.
//!
//! A `DGraph` tracks every buffered sample through its scheduling lifecycle
//! (`buffered → sampled → distributed → balanced → planned`), with each
//! transition recorded as a lineage edge. The paper's primitives map to
//! methods:
//!
//! | paper                         | here                                |
//! |-------------------------------|-------------------------------------|
//! | `DGraph.from_buffer_infos`    | [`DGraph::from_buffer_infos`]       |
//! | `dgraph.init(clientPlaceTree)`| [`DGraph::init`]                    |
//! | `dgraph.mix(schedule)`        | [`DGraph::mix`]                     |
//! | `dgraph.distribute(axis, gs)` | [`DGraph::distribute`]              |
//! | `dgraph.cost(costfn)`         | [`DGraph::cost`]                    |
//! | `dgraph.balance(method, *)`   | [`DGraph::balance`]                 |
//! | `dgraph.broadcast_at(dim)`    | [`DGraph::broadcast_at`]            |
//! | `dgraph.plan()`               | [`DGraph::plan`]                    |
//!
//! The Fig 9 seven-line LLM strategy reads almost identically in Rust; see
//! the crate examples.

use std::collections::{BTreeMap, HashMap};

use msd_balance::{balance as run_balance, BalanceMethod};
use msd_data::SampleMeta;
use msd_mesh::{Axis, ClientPlaceTree, DistributeAxis};
use msd_sim::SimRng;

use crate::buffer::BufferInfo;
use crate::plan::{BinPlan, BucketPlan, LoadingPlan};

/// Which samples (and which default cost basis) a graph views.
///
/// VLM strategies build *two* graphs over the same buffers: a token graph
/// for the backbone and an image graph for the encoder (paper Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaView {
    /// Every sample; cost basis = total (text + image) tokens.
    Tokens,
    /// Only samples with image payloads; cost basis = image patches.
    Images,
    /// Every sample; cost basis = text tokens only.
    Text,
}

impl MetaView {
    fn includes(self, meta: &SampleMeta) -> bool {
        match self {
            MetaView::Tokens | MetaView::Text => true,
            MetaView::Images => meta.image_patches > 0,
        }
    }

    fn default_cost(self, meta: &SampleMeta) -> f64 {
        match self {
            MetaView::Tokens => meta.total_tokens() as f64,
            MetaView::Images => f64::from(meta.image_patches),
            MetaView::Text => f64::from(meta.text_tokens),
        }
    }
}

/// Scheduling state of a sample node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeState {
    /// In a loader buffer, visible to the planner.
    Buffered,
    /// Selected by `mix` for this step.
    Sampled,
    /// Not selected; stays buffered.
    Excluded,
    /// Assigned to a consumer bucket.
    Distributed {
        /// Bucket index.
        bucket: u32,
    },
    /// Assigned to a microbatch bin.
    Balanced {
        /// Bucket index.
        bucket: u32,
        /// Bin (microbatch) index.
        bin: u32,
    },
}

/// One sample node.
#[derive(Debug, Clone)]
pub struct DNode {
    /// Sample id.
    pub id: u64,
    /// Owning loader.
    pub loader: u32,
    /// Planner-visible metadata.
    pub meta: SampleMeta,
    /// Current lifecycle state.
    pub state: NodeState,
    /// Cost under the registered cost function (or the view default).
    pub cost: f64,
}

/// A lineage edge: one recorded state transition.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageEdge {
    /// Sample id.
    pub sample: u64,
    /// Stage label (e.g. `"distribute"`).
    pub stage: &'static str,
    /// Human-readable detail (bucket/bin assignment etc.).
    pub detail: String,
}

/// Options for [`DGraph::balance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct BalanceOpts {
    /// Number of microbatches (bins) per bucket.
    pub microbatches: u32,
    /// Rebalance samples *across* buckets (inter-rank).
    pub inter_bucket: bool,
    /// Balance samples across bins *within* each bucket (inter-microbatch).
    pub intra_bucket: bool,
}

impl BalanceOpts {
    /// The paper's conservative default: inter-microbatch balancing only,
    /// keeping each bucket's global-batch membership fixed.
    pub fn inter_microbatch(microbatches: u32) -> Self {
        BalanceOpts {
            microbatches,
            inter_bucket: false,
            intra_bucket: true,
        }
    }

    /// Full two-level balancing (across buckets, then across bins).
    pub fn full(microbatches: u32) -> Self {
        BalanceOpts {
            microbatches,
            inter_bucket: true,
            intra_bucket: true,
        }
    }
}

/// Errors from misuse of the primitive sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DGraphError {
    /// `init` was not called before a primitive that needs the tree.
    NotInitialized,
    /// `distribute` was not called before `balance`/`plan`.
    NotDistributed,
    /// The weight vector length does not match the source count.
    WeightArity {
        /// Sources present in the graph.
        sources: usize,
        /// Weights supplied.
        weights: usize,
    },
}

impl std::fmt::Display for DGraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DGraphError::NotInitialized => write!(f, "DGraph::init must be called first"),
            DGraphError::NotDistributed => {
                write!(f, "DGraph::distribute must be called before balance/plan")
            }
            DGraphError::WeightArity { sources, weights } => write!(
                f,
                "mix weights arity mismatch: {sources} sources vs {weights} weights"
            ),
        }
    }
}

impl std::error::Error for DGraphError {}

/// The stateful dataflow graph. See the module docs for the primitive map.
#[derive(Debug, Clone)]
pub struct DGraph {
    view: MetaView,
    nodes: Vec<DNode>,
    by_id: HashMap<u64, usize>,
    /// Source ids present, sorted (index = weight-vector position).
    source_order: Vec<msd_data::SourceId>,
    tree: Option<ClientPlaceTree>,
    axis: Option<DistributeAxis>,
    group_size: Option<u32>,
    microbatches: u32,
    mixed: bool,
    broadcast_axes: Vec<Axis>,
    lineage: Vec<LineageEdge>,
    record_lineage: bool,
    /// Wall-clock nanoseconds spent inside `cost` (Table 2).
    pub cost_api_ns: u64,
    /// Wall-clock nanoseconds spent inside `balance` (Table 2).
    pub balance_api_ns: u64,
}

impl DGraph {
    /// Builds a graph over the gathered buffer metadata, filtered by `view`.
    pub fn from_buffer_infos(info: &BufferInfo, view: MetaView) -> Self {
        let mut nodes = Vec::new();
        let mut by_id = HashMap::new();
        let mut sources = Vec::new();
        for (loader, meta) in info.iter_samples() {
            if !view.includes(meta) {
                continue;
            }
            by_id.insert(meta.sample_id, nodes.len());
            sources.push(meta.source);
            nodes.push(DNode {
                id: meta.sample_id,
                loader,
                meta: *meta,
                state: NodeState::Buffered,
                cost: view.default_cost(meta),
            });
        }
        sources.sort_unstable();
        sources.dedup();
        DGraph {
            view,
            nodes,
            by_id,
            source_order: sources,
            tree: None,
            axis: None,
            group_size: None,
            microbatches: 1,
            mixed: false,
            broadcast_axes: Vec::new(),
            lineage: Vec::new(),
            record_lineage: true,
            cost_api_ns: 0,
            balance_api_ns: 0,
        }
    }

    /// Enables or disables lineage recording. Lineage is on by default (the
    /// paper's "orchestration transparency"); the Strategy Optimizer turns
    /// it off for production programs where nobody reads the trace.
    pub fn set_record_lineage(&mut self, record: bool) {
        self.record_lineage = record;
    }

    fn trace(&mut self, sample: u64, stage: &'static str, detail: impl FnOnce() -> String) {
        if self.record_lineage {
            self.lineage.push(LineageEdge {
                sample,
                stage,
                detail: detail(),
            });
        }
    }

    /// Binds the trainer topology.
    pub fn init(&mut self, tree: ClientPlaceTree) {
        self.tree = Some(tree);
    }

    /// Restricts the graph to the given sample ids (used to derive a
    /// subgraph — e.g. the encoder image graph over the samples the main
    /// graph's `mix` selected).
    pub fn retain_ids(&mut self, ids: &std::collections::HashSet<u64>) {
        self.nodes.retain(|n| ids.contains(&n.id));
        self.by_id = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.id, i))
            .collect();
        let mut sources: Vec<msd_data::SourceId> =
            self.nodes.iter().map(|n| n.meta.source).collect();
        sources.sort_unstable();
        sources.dedup();
        self.source_order = sources;
    }

    /// The graph's view.
    pub fn view(&self) -> MetaView {
        self.view
    }

    /// All nodes (read-only).
    pub fn nodes(&self) -> &[DNode] {
        &self.nodes
    }

    /// Node lookup by sample id.
    pub fn node(&self, sample: u64) -> Option<&DNode> {
        self.by_id.get(&sample).map(|i| &self.nodes[*i])
    }

    /// Recorded lineage edges, in order.
    pub fn lineage(&self) -> &[LineageEdge] {
        &self.lineage
    }

    /// Lineage of one sample: chronological stage labels.
    pub fn lineage_of(&self, sample: u64) -> Vec<&'static str> {
        self.lineage
            .iter()
            .filter(|e| e.sample == sample)
            .map(|e| e.stage)
            .collect()
    }

    /// Sources visible to this graph, sorted (defines weight order).
    pub fn sources(&self) -> &[msd_data::SourceId] {
        &self.source_order
    }

    /// `mix(schedule)`: probabilistically selects up to `take` samples
    /// according to per-source `weights` (ordered by [`DGraph::sources`]).
    /// Unselected samples are marked [`NodeState::Excluded`] and stay
    /// buffered for future steps.
    pub fn mix(
        &mut self,
        weights: &[f64],
        take: usize,
        rng: &mut SimRng,
    ) -> Result<(), DGraphError> {
        if weights.len() != self.source_order.len() {
            return Err(DGraphError::WeightArity {
                sources: self.source_order.len(),
                weights: weights.len(),
            });
        }
        // FIFO queues of node indices per source.
        let mut queues: Vec<Vec<usize>> = vec![Vec::new(); self.source_order.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            let s = self
                .source_order
                .binary_search(&n.meta.source)
                .expect("source indexed at construction");
            queues[s].push(i);
        }
        for q in &mut queues {
            q.reverse(); // Pop from the back = FIFO front.
        }
        let mut live_weights: Vec<f64> = weights.to_vec();
        let mut selected = 0usize;
        while selected < take {
            // Zero out exhausted sources.
            for (s, q) in queues.iter().enumerate() {
                if q.is_empty() {
                    live_weights[s] = 0.0;
                }
            }
            let Some(s) = rng.weighted_index(&live_weights) else {
                break; // All weighted sources exhausted.
            };
            let idx = queues[s].pop().expect("nonempty by weight masking");
            self.nodes[idx].state = NodeState::Sampled;
            let id = self.nodes[idx].id;
            let source = self.nodes[idx].meta.source;
            self.trace(id, "mix", || format!("selected from {source}"));
            selected += 1;
        }
        for q in queues {
            for idx in q {
                self.nodes[idx].state = NodeState::Excluded;
            }
        }
        self.mixed = true;
        Ok(())
    }

    /// Indices of nodes participating this step (everything buffered if
    /// `mix` was not called, otherwise the sampled set).
    fn participants(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| {
                if self.mixed {
                    !matches!(n.state, NodeState::Excluded)
                } else {
                    true
                }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// `distribute(axis, group_size)`: creates consumer buckets from the
    /// `ClientPlaceTree` and assigns participating samples round-robin (in
    /// buffer-arrival order — the unbalanced baseline assignment).
    pub fn distribute(
        &mut self,
        axis: DistributeAxis,
        group_size: Option<u32>,
    ) -> Result<u32, DGraphError> {
        let tree = self.tree.as_ref().ok_or(DGraphError::NotInitialized)?;
        let n = tree.bucket_count(axis, group_size);
        self.axis = Some(axis);
        self.group_size = group_size;
        for (pos, idx) in self.participants().into_iter().enumerate() {
            let bucket = (pos as u32) % n;
            self.nodes[idx].state = NodeState::Distributed { bucket };
            let id = self.nodes[idx].id;
            self.trace(id, "distribute", || {
                format!("bucket {bucket}/{n} on {}", axis.label())
            });
        }
        Ok(n)
    }

    /// Lazy variant of [`DGraph::distribute`]: records the axis and group
    /// size (so `balance`/`plan` know the bucket geometry) without the
    /// per-node round-robin assignment pass.
    ///
    /// Only valid when the next bucket-consuming primitive is a `balance`
    /// with `inter_bucket = true`, which recomputes every bucket assignment
    /// from scratch anyway — the fusion the Strategy Optimizer applies
    /// (`distribute ∘ balance → balance`). Calling `plan` directly after a
    /// lazy distribute schedules nothing (samples never reach a bucket).
    pub fn distribute_lazy(
        &mut self,
        axis: DistributeAxis,
        group_size: Option<u32>,
    ) -> Result<u32, DGraphError> {
        let tree = self.tree.as_ref().ok_or(DGraphError::NotInitialized)?;
        let n = tree.bucket_count(axis, group_size);
        self.axis = Some(axis);
        self.group_size = group_size;
        Ok(n)
    }

    /// `cost(costfn)`: registers per-sample costs from metadata. Costs
    /// propagate to the subsequent `balance`.
    pub fn cost(&mut self, costfn: impl Fn(&SampleMeta) -> f64) {
        let t0 = std::time::Instant::now();
        for idx in self.participants() {
            self.nodes[idx].cost = costfn(&self.nodes[idx].meta).max(0.0);
        }
        self.cost_api_ns += t0.elapsed().as_nanos() as u64;
    }

    /// `balance(method, *)`: cost-aware redistribution into buckets and
    /// microbatch bins. See [`BalanceOpts`] for the two levels.
    pub fn balance(&mut self, method: BalanceMethod, opts: BalanceOpts) -> Result<(), DGraphError> {
        let tree = self.tree.as_ref().ok_or(DGraphError::NotInitialized)?;
        let axis = self.axis.ok_or(DGraphError::NotDistributed)?;
        let n = tree.bucket_count(axis, self.group_size) as usize;
        self.microbatches = opts.microbatches.max(1);
        let t0 = std::time::Instant::now();

        let participants = self.participants();
        // Level 1: bucket assignment.
        let bucket_of: Vec<(usize, u32)> = if opts.inter_bucket {
            let costs: Vec<f64> = participants.iter().map(|i| self.nodes[*i].cost).collect();
            let assignment = run_balance(&costs, n, method);
            let item_bins = assignment.item_bins(costs.len());
            participants
                .iter()
                .zip(item_bins)
                .map(|(idx, b)| (*idx, b as u32))
                .collect()
        } else {
            participants
                .iter()
                .map(|idx| {
                    let b = match self.nodes[*idx].state {
                        NodeState::Distributed { bucket } | NodeState::Balanced { bucket, .. } => {
                            bucket
                        }
                        _ => 0,
                    };
                    (*idx, b)
                })
                .collect()
        };

        // Level 2: bins within each bucket.
        let m = self.microbatches as usize;
        let mut per_bucket: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (idx, b) in &bucket_of {
            per_bucket[*b as usize].push(*idx);
        }
        for (b, members) in per_bucket.into_iter().enumerate() {
            let bins: Vec<Vec<usize>> = if opts.intra_bucket {
                let costs: Vec<f64> = members.iter().map(|i| self.nodes[*i].cost).collect();
                run_balance(&costs, m, method)
                    .bins
                    .into_iter()
                    .map(|bin| bin.into_iter().map(|k| members[k]).collect())
                    .collect()
            } else {
                // Sequential chunking.
                let chunk = members.len().div_ceil(m.max(1)).max(1);
                let mut out: Vec<Vec<usize>> =
                    members.chunks(chunk).map(<[usize]>::to_vec).collect();
                out.resize(m, Vec::new());
                out
            };
            for (bin_idx, bin) in bins.into_iter().enumerate() {
                for idx in bin {
                    self.nodes[idx].state = NodeState::Balanced {
                        bucket: b as u32,
                        bin: bin_idx as u32,
                    };
                    let id = self.nodes[idx].id;
                    self.trace(id, "balance", || {
                        format!("bucket {b} bin {bin_idx} ({})", method.label())
                    });
                }
            }
        }
        self.balance_api_ns += t0.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Sequentially chunks each bucket into `m` microbatches without
    /// cost-aware reordering — the unbalanced ("Vanilla") baseline.
    pub fn chunk_microbatches(&mut self, m: u32) -> Result<(), DGraphError> {
        self.balance(
            BalanceMethod::Greedy, // Method unused when both levels are off.
            BalanceOpts {
                microbatches: m,
                inter_bucket: false,
                intra_bucket: false,
            },
        )
    }

    /// `broadcast_at(dim)`: declares a trainer-side broadcast along `axis`;
    /// the Data Constructor will elide fetches for ranks with a nonzero
    /// coordinate there.
    pub fn broadcast_at(&mut self, axis: Axis) {
        if !self.broadcast_axes.contains(&axis) {
            self.broadcast_axes.push(axis);
        }
    }

    /// `plan()`: finalizes the loading plan for `step`.
    pub fn plan(&self, step: u64) -> Result<LoadingPlan, DGraphError> {
        let tree = self.tree.as_ref().ok_or(DGraphError::NotInitialized)?;
        let axis = self.axis.ok_or(DGraphError::NotDistributed)?;
        let bucket_clients = tree.buckets(axis, self.group_size);
        let n = bucket_clients.len();
        let m = self.microbatches as usize;

        let mut bins: Vec<Vec<Vec<u64>>> = vec![vec![Vec::new(); m]; n];
        let mut costs: Vec<Vec<f64>> = vec![vec![0.0; m]; n];
        let mut excluded = Vec::new();
        let mut directives: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for node in &self.nodes {
            match node.state {
                NodeState::Balanced { bucket, bin } => {
                    bins[bucket as usize][bin as usize].push(node.id);
                    costs[bucket as usize][bin as usize] += node.cost;
                    directives.entry(node.loader).or_default().push(node.id);
                }
                NodeState::Distributed { bucket } => {
                    // Un-balanced graphs: single implicit bin 0.
                    bins[bucket as usize][0].push(node.id);
                    costs[bucket as usize][0] += node.cost;
                    directives.entry(node.loader).or_default().push(node.id);
                }
                NodeState::Excluded | NodeState::Buffered => excluded.push(node.id),
                NodeState::Sampled => {
                    // Sampled but never distributed: should not happen in a
                    // well-formed program; treat as excluded.
                    excluded.push(node.id);
                }
            }
        }

        let buckets = bucket_clients
            .into_iter()
            .enumerate()
            .map(|(b, clients)| BucketPlan {
                bucket: b as u32,
                clients,
                bins: (0..m)
                    .map(|k| BinPlan {
                        bin: k as u32,
                        samples: std::mem::take(&mut bins[b][k]),
                        total_cost: costs[b][k],
                    })
                    .collect(),
            })
            .collect();

        Ok(LoadingPlan {
            step,
            axis,
            buckets,
            excluded,
            broadcast_axes: self.broadcast_axes.clone(),
            directives,
            subplans: BTreeMap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferInfo, BufferSummary};
    use msd_data::{Modality, SourceId};
    use msd_mesh::DeviceMesh;

    fn meta(id: u64, src: u32, text: u32, img: u32) -> SampleMeta {
        SampleMeta {
            sample_id: id,
            source: SourceId(src),
            modality: if img > 0 {
                Modality::Image
            } else {
                Modality::Text
            },
            text_tokens: text,
            image_patches: img,
            raw_bytes: 100,
        }
    }

    fn buffer_info() -> BufferInfo {
        // Two loaders, two sources: loader 0 has text-only, loader 1 mixed.
        BufferInfo::new(vec![
            BufferSummary {
                loader_id: 0,
                source: SourceId(0),
                samples: (0..8).map(|i| meta(i, 0, 100 + i as u32 * 50, 0)).collect(),
                mean_transform_ns: 100.0,
            },
            BufferSummary {
                loader_id: 1,
                source: SourceId(1),
                samples: (8..16)
                    .map(|i| meta(i, 1, 50, 1000 + i as u32 * 300))
                    .collect(),
                mean_transform_ns: 5000.0,
            },
        ])
    }

    fn tree(dp: u32, cp: u32, tp: u32) -> ClientPlaceTree {
        ClientPlaceTree::from_device_mesh(&DeviceMesh::pp_dp_cp_tp(1, dp, cp, tp).unwrap())
    }

    #[test]
    fn views_filter_samples() {
        let info = buffer_info();
        let tokens = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        let images = DGraph::from_buffer_infos(&info, MetaView::Images);
        assert_eq!(tokens.nodes().len(), 16);
        assert_eq!(images.nodes().len(), 8);
        assert!(images.nodes().iter().all(|n| n.meta.image_patches > 0));
        // Default cost bases differ.
        assert_eq!(tokens.node(8).unwrap().cost, (50 + 1000 + 8 * 300) as f64);
        assert_eq!(images.node(8).unwrap().cost, (1000 + 8 * 300) as f64);
    }

    #[test]
    fn primitives_require_init_and_distribute() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        assert_eq!(
            g.distribute(DistributeAxis::DP, None),
            Err(DGraphError::NotInitialized)
        );
        g.init(tree(2, 1, 1));
        assert_eq!(
            g.balance(BalanceMethod::Greedy, BalanceOpts::full(2)),
            Err(DGraphError::NotDistributed)
        );
        assert!(g.plan(0).is_err());
        assert_eq!(g.distribute(DistributeAxis::DP, None), Ok(2));
        assert!(g.plan(0).is_ok());
    }

    #[test]
    fn distribute_round_robins_all_participants() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(4, 1, 1));
        g.distribute(DistributeAxis::DP, None).unwrap();
        let plan = g.plan(0).unwrap();
        assert_eq!(plan.all_samples().len(), 16);
        for b in &plan.buckets {
            assert_eq!(b.sample_count(), 4);
        }
    }

    #[test]
    fn mix_respects_weights_and_excludes_rest() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        let mut rng = SimRng::seed(7);
        // Only source 1.
        g.mix(&[0.0, 1.0], 4, &mut rng).unwrap();
        g.distribute(DistributeAxis::DP, None).unwrap();
        let plan = g.plan(0).unwrap();
        let scheduled = plan.all_samples();
        assert_eq!(scheduled.len(), 4);
        assert!(scheduled.iter().all(|id| *id >= 8), "{scheduled:?}");
        assert_eq!(plan.excluded.len(), 12);
    }

    #[test]
    fn mix_arity_mismatch_errors() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        let mut rng = SimRng::seed(7);
        assert!(matches!(
            g.mix(&[1.0], 4, &mut rng),
            Err(DGraphError::WeightArity { .. })
        ));
    }

    #[test]
    fn mix_exhaustion_stops_cleanly() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        let mut rng = SimRng::seed(9);
        // Ask for more than the 16 available.
        g.mix(&[1.0, 1.0], 100, &mut rng).unwrap();
        g.distribute(DistributeAxis::DP, None).unwrap();
        assert_eq!(g.plan(0).unwrap().all_samples().len(), 16);
    }

    #[test]
    fn balance_reduces_imbalance() {
        let info = buffer_info();
        let mut unbalanced = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        unbalanced.init(tree(4, 1, 1));
        unbalanced.distribute(DistributeAxis::DP, None).unwrap();
        unbalanced.chunk_microbatches(1).unwrap();
        let u = unbalanced.plan(0).unwrap();

        let mut balanced = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        balanced.init(tree(4, 1, 1));
        balanced.distribute(DistributeAxis::DP, None).unwrap();
        balanced.cost(|m| (m.total_tokens() as f64).powi(2)); // Quadratic.
        balanced
            .balance(BalanceMethod::Greedy, BalanceOpts::full(1))
            .unwrap();
        let b = balanced.plan(0).unwrap();

        let imb = |p: &LoadingPlan| {
            let c = p.bucket_costs();
            c.iter().cloned().fold(f64::MIN, f64::max) / c.iter().cloned().fold(f64::MAX, f64::min)
        };
        // Note: unbalanced plan uses default linear costs; recompute both
        // with the quadratic costs for a fair comparison.
        let quad_cost = |p: &LoadingPlan, g: &DGraph| -> Vec<f64> {
            p.buckets
                .iter()
                .map(|bk| {
                    bk.bins
                        .iter()
                        .flat_map(|bin| &bin.samples)
                        .map(|id| (g.node(*id).unwrap().meta.total_tokens() as f64).powi(2))
                        .sum()
                })
                .collect()
        };
        let u_costs = quad_cost(&u, &unbalanced);
        let b_costs = quad_cost(&b, &balanced);
        let u_imb = u_costs.iter().cloned().fold(f64::MIN, f64::max)
            / u_costs.iter().cloned().fold(f64::MAX, f64::min);
        let b_imb = b_costs.iter().cloned().fold(f64::MIN, f64::max)
            / b_costs.iter().cloned().fold(f64::MAX, f64::min);
        assert!(b_imb < u_imb, "balanced {b_imb} vs unbalanced {u_imb}");
        assert!(b_imb < 1.5, "balanced imbalance = {b_imb}");
        let _ = imb;
    }

    #[test]
    fn inter_microbatch_only_preserves_bucket_membership() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        g.distribute(DistributeAxis::DP, None).unwrap();
        // Record bucket membership after distribute.
        let before: HashMap<u64, u32> = g
            .nodes()
            .iter()
            .filter_map(|n| match n.state {
                NodeState::Distributed { bucket } => Some((n.id, bucket)),
                _ => None,
            })
            .collect();
        g.balance(BalanceMethod::Greedy, BalanceOpts::inter_microbatch(2))
            .unwrap();
        for n in g.nodes() {
            if let NodeState::Balanced { bucket, .. } = n.state {
                assert_eq!(before[&n.id], bucket, "sample {} moved buckets", n.id);
            }
        }
    }

    #[test]
    fn plan_directives_group_by_loader() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        g.distribute(DistributeAxis::DP, None).unwrap();
        let plan = g.plan(5).unwrap();
        assert_eq!(plan.step, 5);
        assert_eq!(plan.directives.len(), 2);
        assert!(plan.directives[&0].iter().all(|id| *id < 8));
        assert!(plan.directives[&1].iter().all(|id| *id >= 8));
    }

    #[test]
    fn broadcast_axes_recorded_once() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 2, 2));
        g.broadcast_at(Axis::TP);
        g.broadcast_at(Axis::CP);
        g.broadcast_at(Axis::TP);
        g.distribute(DistributeAxis::CP, None).unwrap();
        let plan = g.plan(0).unwrap();
        assert_eq!(plan.broadcast_axes, vec![Axis::TP, Axis::CP]);
        assert_eq!(plan.buckets.len(), 4); // DP×CP.
    }

    #[test]
    fn lineage_records_transitions() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        let mut rng = SimRng::seed(3);
        g.mix(&[1.0, 1.0], 16, &mut rng).unwrap();
        g.distribute(DistributeAxis::DP, None).unwrap();
        g.balance(BalanceMethod::Interleave, BalanceOpts::full(2))
            .unwrap();
        let stages = g.lineage_of(0);
        assert_eq!(stages, vec!["mix", "distribute", "balance"]);
        // Lineage is append-only and time-ordered: mix events precede
        // distribute events for every sample.
        let first_distribute = g
            .lineage()
            .iter()
            .position(|e| e.stage == "distribute")
            .unwrap();
        assert!(g.lineage()[..first_distribute]
            .iter()
            .all(|e| e.stage == "mix"));
    }

    #[test]
    fn api_timers_accumulate() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(2, 1, 1));
        g.distribute(DistributeAxis::DP, None).unwrap();
        g.cost(|m| m.total_tokens() as f64);
        g.balance(BalanceMethod::KarmarkarKarp, BalanceOpts::full(2))
            .unwrap();
        assert!(g.cost_api_ns > 0);
        assert!(g.balance_api_ns > 0);
    }

    #[test]
    fn group_size_merges_buckets() {
        let info = buffer_info();
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree(4, 1, 1));
        let n = g.distribute(DistributeAxis::DP, Some(2)).unwrap();
        assert_eq!(n, 2);
        let plan = g.plan(0).unwrap();
        assert_eq!(plan.buckets.len(), 2);
        // Each merged bucket serves the clients of two DP groups.
        assert_eq!(plan.buckets[0].clients.len(), 2);
    }
}
