//! Property-based tests for the Sec 6.2 deployment tricks: transformation
//! reordering (split correctness and transfer-optimality), hybrid
//! sidecar/remote placement invariants, and selective-broadcast coverage.

use proptest::prelude::*;

use megascale_data::core::autoscale::{
    place_actors, HybridDeployment, LoaderSetup, Placement, PodSpec,
};
use megascale_data::data::{Modality, Sample, SampleMeta, SourceId, Transform, TransformPipeline};
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh};

fn arb_transform() -> impl Strategy<Value = Transform> {
    prop_oneof![
        Just(Transform::TextTokenize),
        Just(Transform::ImageDecode),
        (64u32..8192).prop_map(|max_patches| Transform::Crop { max_patches }),
        Just(Transform::Flip),
        Just(Transform::VideoKeyframe),
        Just(Transform::AudioResample),
    ]
}

fn arb_meta() -> impl Strategy<Value = SampleMeta> {
    (1u32..2048, 0u32..4096, 1u64..4096).prop_map(|(text, img, bytes)| SampleMeta {
        sample_id: 7,
        source: SourceId(3),
        modality: if img > 0 {
            Modality::Image
        } else {
            Modality::Text
        },
        text_tokens: text,
        image_patches: img,
        raw_bytes: bytes,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Splitting a pipeline anywhere and running head-then-tail produces
    /// exactly the same sample as running the whole pipeline — the
    /// correctness contract behind deferred transforms.
    #[test]
    fn split_composes_to_identity(
        transforms in proptest::collection::vec(arb_transform(), 0..6),
        split in 0usize..8,
        meta in arb_meta(),
    ) {
        let p = TransformPipeline::new(transforms, 1.0);
        let (head, tail) = p.split_at(split);
        let mut composed = Sample::synthesize(meta);
        head.apply(&mut composed);
        tail.apply(&mut composed);
        let mut full = Sample::synthesize(meta);
        p.apply(&mut full);
        prop_assert_eq!(composed.payload, full.payload);
        prop_assert_eq!(composed.meta, full.meta);
    }

    /// `min_transfer_index` is optimal: no other split point yields a
    /// smaller cumulative inflation product, and it is the earliest
    /// minimizer.
    #[test]
    fn min_transfer_index_is_optimal(
        transforms in proptest::collection::vec(arb_transform(), 0..6),
    ) {
        let p = TransformPipeline::new(transforms, 1.0);
        let chosen = p.min_transfer_index();
        let product_at = |idx: usize| -> f64 {
            p.transforms()[..idx].iter().map(Transform::inflation).product()
        };
        let best = product_at(chosen);
        for idx in 0..=p.transforms().len() {
            prop_assert!(
                best <= product_at(idx) + 1e-12,
                "split {chosen} ({best}) beaten by {idx} ({})",
                product_at(idx)
            );
            if idx < chosen {
                prop_assert!(product_at(idx) > best, "not the earliest minimizer");
            }
        }
    }

    /// The split cost model is conserved: head + tail virtual cost equals
    /// the full pipeline's cost, for any split.
    #[test]
    fn split_conserves_cost(
        transforms in proptest::collection::vec(arb_transform(), 0..6),
        split in 0usize..8,
        meta in arb_meta(),
        scale in 0.1f64..50.0,
    ) {
        let p = TransformPipeline::new(transforms, scale);
        let (head, tail) = p.split_at(split);
        let sum = head.cost_ns(&meta) + tail.cost_ns(&meta);
        let full = p.cost_ns(&meta);
        // Scale rounding may differ by one ns per part.
        prop_assert!(sum.abs_diff(full) <= 2, "{sum} vs {full}");
    }
}

fn arb_setups() -> impl Strategy<Value = Vec<LoaderSetup>> {
    proptest::collection::vec((1u32..5, 1u32..5, (1u64..64).prop_map(|g| g << 28)), 1..20).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (actors, workers, mem))| LoaderSetup {
                    source: SourceId(i as u32),
                    actors,
                    workers_per_actor: workers,
                    cost_estimate_ns: 1000.0,
                    mem_per_actor: mem,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Hybrid placement invariants: every actor placed exactly once,
    /// sidecar capacity never exceeded, and no remote pod rented while a
    /// sidecar could still hold the actor placed on it.
    #[test]
    fn placement_invariants(
        setups in arb_setups(),
        pods in 1u32..16,
        cores in 1u64..32,
        mem_gib in 1u64..128,
    ) {
        let deploy = HybridDeployment {
            accelerator_pods: pods,
            sidecar: PodSpec { cores, mem_bytes: mem_gib << 30 },
            remote: PodSpec { cores: 64, mem_bytes: 1 << 40 },
        };
        let plan = place_actors(&setups, &deploy);

        // Exactly once.
        let expected: u32 = setups.iter().map(|s| s.actors).sum();
        prop_assert_eq!(plan.actors.len() as u32, expected);
        let mut keys: Vec<(SourceId, u32)> =
            plan.actors.iter().map(|a| (a.source, a.shard)).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len() as u32, expected);

        // Capacity respected per sidecar pod.
        let mut used: std::collections::HashMap<u32, (u64, u64)> = Default::default();
        for a in &plan.actors {
            if let Placement::Sidecar { pod } = a.placement {
                prop_assert!(pod < pods);
                let e = used.entry(pod).or_insert((0, 0));
                e.0 += a.cores;
                e.1 += a.mem_bytes;
            }
        }
        for (_, (c, m)) in used {
            prop_assert!(c <= deploy.sidecar.cores);
            prop_assert!(m <= deploy.sidecar.mem_bytes);
        }

        // Remote pod indices are dense.
        for a in &plan.actors {
            if let Placement::Remote { pod } = a.placement {
                prop_assert!(pod < plan.remote_pods);
            }
        }
    }

    /// Monotonicity for *uniform* actors: donating more sidecar capacity
    /// never lowers the sidecar-placed fraction.
    ///
    /// (For heterogeneous actor sizes first-fit-decreasing exhibits
    /// classic bin-packing capacity anomalies — a bigger sidecar can
    /// admit one huge actor that crowds out several small ones — so the
    /// guarantee only holds in the uniform regime. Found by this test's
    /// earlier unrestricted version.)
    #[test]
    fn placement_spill_is_monotone_for_uniform_actors(
        n_sources in 1usize..20,
        actors_each in 1u32..5,
        mem_shift in 28u64..33,
        pods in 1u32..8,
        cores in 1u64..16,
        mem_gib in 1u64..64,
    ) {
        let setups: Vec<LoaderSetup> = (0..n_sources)
            .map(|i| LoaderSetup {
                source: SourceId(i as u32),
                actors: actors_each,
                workers_per_actor: 1,
                cost_estimate_ns: 1000.0,
                mem_per_actor: 1 << mem_shift,
            })
            .collect();
        let mk = |c: u64, m: u64| HybridDeployment {
            accelerator_pods: pods,
            sidecar: PodSpec { cores: c, mem_bytes: m << 30 },
            remote: PodSpec { cores: 64, mem_bytes: 1 << 40 },
        };
        let small = place_actors(&setups, &mk(cores, mem_gib));
        let large = place_actors(&setups, &mk(cores * 2, mem_gib * 2));
        prop_assert!(large.sidecar_fraction() >= small.sidecar_fraction() - 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selective broadcasting: sync_clients × replication always covers
    /// the world exactly, the selection respects the budget when TP×CP
    /// can reach it, and DP/PP are never chosen.
    #[test]
    fn selective_broadcast_invariants(
        pp in 1u32..5,
        dp in 1u32..7,
        cp in 1u32..5,
        tp in 1u32..5,
        budget in 1u32..64,
    ) {
        let mesh = DeviceMesh::pp_dp_cp_tp(pp, dp, cp, tp).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let t = tree.select_broadcast_axes(budget);
        prop_assert!(!t.axes.contains(&Axis::DP));
        prop_assert!(!t.axes.contains(&Axis::PP));
        prop_assert_eq!(t.sync_clients * t.replication, mesh.world_size());
        // The floor: broadcasting all of TP and CP leaves PP×DP roots.
        let floor = pp * dp;
        if budget >= mesh.world_size() {
            prop_assert!(t.axes.is_empty());
        }
        prop_assert!(t.sync_clients >= floor.min(mesh.world_size()));
        if t.sync_clients > budget {
            // Could not meet the budget: must have exhausted TP and CP.
            prop_assert_eq!(t.sync_clients, floor);
        }
    }
}
