//! Sharded event-driven reader plane for the serving side.
//!
//! The data server used to spawn one OS thread per accepted session
//! (`spawn_server_reader`), which makes idle fan-out cost linear in the
//! number of connected clients: 4k parked trainers meant 4k blocked
//! reader threads. This module replaces that model with a small fixed
//! pool of shard threads — sized by core count, independent of session
//! count — each multiplexing many session [`FrameRx`] halves through a
//! ready-list + parked-session registry:
//!
//! ```text
//!            register(session, rx)   (round-robin)
//!                      │
//!      ┌───────────────┼───────────────┐
//!      ▼               ▼               ▼
//!  ┌────────┐      ┌────────┐      ┌────────┐
//!  │ shard 0│      │ shard 1│  …   │ shard N│   N ≈ min(cores, 8)
//!  │ ready  │      │ ready  │      │ ready  │
//!  │ parked │      │ parked │      │ parked │
//!  └────────┘      └────────┘      └────────┘
//! ```
//!
//! A parked session costs one registry entry and nothing else: no
//! thread, no timer, no polling. When its transport delivers a frame it
//! fires the session's [`FrameWaker`], which flips a per-session
//! `queued` bit and pushes the session onto its shard's ready list. The
//! `queued` bit dedups storms (a burst of sends enqueues the session
//! once), and clearing it *before* the drain closes the lost-wakeup
//! race: a frame landing mid-drain either gets drained right there or
//! re-queues the session.
//!
//! Fairness: each visit drains at most `DRAIN_QUANTUM` frames, then
//! re-queues the session behind its shard-mates, so one firehose client
//! cannot starve the rest of its shard.
//!
//! The sim transport models link latency by returning
//! [`TryRecv::NotBefore`] for a frame whose delivery time is still in
//! the future; the shard parks such sessions on a deferred list and
//! uses the nearest due time as its condvar timeout, so modeled latency
//! holds without busy-polling.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use crate::system::net::{FrameRx, FrameWaker, TryRecv, WireFrame};

/// Max frames drained from one session per ready-list visit before it
/// is re-queued behind its shard-mates.
const DRAIN_QUANTUM: usize = 128;

/// Idle shards wake at least this often to re-check liveness, so a
/// plane whose server died with no traffic still winds down promptly.
const HEARTBEAT: Duration = Duration::from_millis(200);

/// What a shard observed on a session's receive half.
pub enum SessionEvent {
    /// A frame arrived.
    Frame(WireFrame),
    /// The peer hung up (or the stream went corrupt, which tears the
    /// connection down the same way). The session is dropped from the
    /// plane; the server's lease/redial machinery owns what happens
    /// next.
    Closed,
}

/// Per-event callback. Returns `false` when the consumer is gone
/// (server actor dead), which winds the whole plane down.
pub type SessionHandler = Arc<dyn Fn(u64, SessionEvent) -> bool + Send + Sync>;

/// Liveness probe checked on every heartbeat so idle shards exit when
/// the server they feed has stopped.
pub type AliveCheck = Arc<dyn Fn() -> bool + Send + Sync>;

struct SessionEntry {
    rx: Box<dyn FrameRx>,
    queued: Arc<AtomicBool>,
}

#[derive(Default)]
struct ShardState {
    ready: VecDeque<u64>,
    /// Sessions whose next frame has a modeled delivery time in the
    /// future: `(due, session)`. Promoted to `ready` once due.
    deferred: Vec<(Instant, u64)>,
    sessions: HashMap<u64, SessionEntry>,
    shutdown: bool,
}

struct Shard {
    state: Mutex<ShardState>,
    cv: Condvar,
}

/// Outcome of one ready-list visit to a session.
enum Visit {
    /// Drained to empty; park until the waker fires.
    Idle,
    /// Quantum exhausted with frames possibly remaining.
    More,
    /// Next frame's modeled delivery time is in the future.
    Defer(Instant),
    /// Peer hung up or stream went corrupt.
    Gone,
    /// Handler reported the consumer dead: wind the shard down.
    PlaneDead,
}

impl Shard {
    /// The waker installed on every session routed to this shard: flip
    /// the session's `queued` bit and, on the false→true edge, push it
    /// onto the ready list. Holds a `Weak` back-reference — the shard
    /// owns the rx which owns the waker, so a strong `Arc` here would
    /// cycle and leak the whole plane.
    fn waker(self: &Arc<Self>, session: u64, queued: Arc<AtomicBool>) -> FrameWaker {
        let weak: Weak<Shard> = Arc::downgrade(self);
        Arc::new(move || {
            if queued.swap(true, Ordering::AcqRel) {
                return; // Already on the ready list: storm deduped.
            }
            if let Some(shard) = weak.upgrade() {
                let mut state = shard.state.lock().unwrap();
                state.ready.push_back(session);
                shard.cv.notify_one();
            }
        })
    }

    fn run(self: Arc<Self>, handler: SessionHandler, alive: AliveCheck) {
        // Consecutive heartbeats that saw `alive() == false`. The probe
        // flips false *transiently* while a supervised server actor is
        // between a panic and its restart, so one bad reading must not
        // kill the shard (the plane never respawns — new registrations
        // would land on dead threads). Only sustained death, observed
        // across two heartbeat-spaced probes, winds the shard down;
        // `PlaneDead` (a failed `tell`, which is permanent by mailbox
        // semantics) still exits immediately.
        let mut dead_strikes = 0u32;
        let mut last_strike: Option<Instant> = None;
        let mut state = self.state.lock().unwrap();
        loop {
            // Promote deferred sessions whose modeled delivery time has
            // arrived. The sender woke us at enqueue, not at due time,
            // so promotion is the shard's own job.
            let now = Instant::now();
            let mut promoted = Vec::new();
            state.deferred.retain(|&(due, session)| {
                if due <= now {
                    promoted.push(session);
                    false
                } else {
                    true
                }
            });
            for session in promoted {
                if let Some(entry) = state.sessions.get(&session) {
                    if !entry.queued.swap(true, Ordering::AcqRel) {
                        state.ready.push_back(session);
                    }
                }
            }

            if let Some(session) = state.ready.pop_front() {
                // Check the entry out of the registry so the drain runs
                // without holding the shard lock (wakers fired from
                // sender threads must not stall behind frame handling).
                let Some(mut entry) = state.sessions.remove(&session) else {
                    continue; // Departed (or duplicate visit) while queued.
                };
                // Clear `queued` BEFORE draining: a frame that lands
                // mid-drain either gets drained below or re-queues the
                // session through its waker. Clearing after the drain
                // would lose that wakeup.
                entry.queued.store(false, Ordering::Release);
                drop(state);

                // Assume the quantum runs dry mid-burst; every early
                // exit overwrites this.
                let mut outcome = Visit::More;
                for _ in 0..DRAIN_QUANTUM {
                    match entry.rx.try_recv() {
                        TryRecv::Frame(frame) => {
                            if !handler(session, SessionEvent::Frame(frame)) {
                                outcome = Visit::PlaneDead;
                                break;
                            }
                        }
                        TryRecv::Empty => {
                            outcome = Visit::Idle;
                            break;
                        }
                        TryRecv::NotBefore(due) => {
                            outcome = Visit::Defer(due);
                            break;
                        }
                        TryRecv::Closed | TryRecv::Corrupt => {
                            outcome = Visit::Gone;
                            break;
                        }
                    }
                }

                match outcome {
                    Visit::Gone => {
                        // Entry dropped: the session leaves the plane.
                        if !handler(session, SessionEvent::Closed) {
                            return;
                        }
                        state = self.state.lock().unwrap();
                    }
                    Visit::PlaneDead => {
                        self.state.lock().unwrap().shutdown = true;
                        return;
                    }
                    Visit::Idle => {
                        state = self.state.lock().unwrap();
                        state.sessions.insert(session, entry);
                    }
                    Visit::More => {
                        state = self.state.lock().unwrap();
                        if !entry.queued.swap(true, Ordering::AcqRel) {
                            state.ready.push_back(session);
                        }
                        state.sessions.insert(session, entry);
                    }
                    Visit::Defer(due) => {
                        state = self.state.lock().unwrap();
                        state.deferred.retain(|&(_, s)| s != session);
                        state.deferred.push((due, session));
                        state.sessions.insert(session, entry);
                    }
                }
                continue;
            }

            if state.shutdown {
                return;
            }
            if alive() {
                dead_strikes = 0;
            } else if last_strike.is_none_or(|at| at.elapsed() >= HEARTBEAT) {
                // Strikes are heartbeat-spaced: back-to-back passes (a
                // short deferred timeout, say) must not both land inside
                // one restart window and fake a sustained death.
                dead_strikes += 1;
                last_strike = Some(Instant::now());
                if dead_strikes >= 2 {
                    state.shutdown = true;
                    return;
                }
            }

            // Nothing ready: sleep until the nearest deferred due time,
            // a waker, or the liveness heartbeat.
            let timeout = state
                .deferred
                .iter()
                .map(|&(due, _)| due.saturating_duration_since(Instant::now()))
                .min()
                .unwrap_or(HEARTBEAT)
                .min(HEARTBEAT);
            let (guard, _) = self.cv.wait_timeout(state, timeout).unwrap();
            state = guard;
        }
    }
}

/// The fixed-size shard pool. One per server handle; sessions are
/// routed round-robin at registration and stay pinned to their shard
/// for life.
pub struct ReaderPlane {
    shards: Vec<Arc<Shard>>,
    next: AtomicUsize,
    /// OS thread-name prefix of this plane's shards, unique per plane
    /// (`msd/rdr<plane>`), so a soak test can count exactly this
    /// plane's threads from `/proc` even with other planes alive in
    /// the process.
    thread_prefix: String,
}

/// Monotone plane counter feeding [`ReaderPlane::thread_name_prefix`].
static PLANE_SEQ: AtomicUsize = AtomicUsize::new(0);

impl ReaderPlane {
    /// Spawns the shard threads. `handler` consumes frames and
    /// hangups; `alive` is the liveness probe that winds idle shards
    /// down once the server stops.
    pub fn new(handler: SessionHandler, alive: AliveCheck) -> Arc<Self> {
        let shard_count = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        let thread_prefix = format!("msd/rdr{}", PLANE_SEQ.fetch_add(1, Ordering::Relaxed));
        let mut shards = Vec::with_capacity(shard_count);
        for idx in 0..shard_count {
            let shard = Arc::new(Shard {
                state: Mutex::new(ShardState::default()),
                cv: Condvar::new(),
            });
            shards.push(Arc::clone(&shard));
            let shard = Arc::clone(&shards[idx]);
            let handler = Arc::clone(&handler);
            let alive = Arc::clone(&alive);
            std::thread::Builder::new()
                .name(format!("{thread_prefix}-{idx}"))
                .spawn(move || shard.run(handler, alive))
                .expect("failed to spawn reader shard");
        }
        Arc::new(ReaderPlane {
            shards,
            next: AtomicUsize::new(0),
            thread_prefix,
        })
    }

    /// OS thread-name prefix of this plane's shard threads (unique per
    /// plane). Lets tests count the plane's threads from `/proc`.
    pub fn thread_name_prefix(&self) -> &str {
        &self.thread_prefix
    }

    /// Number of shard threads — fixed at construction, independent of
    /// how many sessions register. Asserted by the fan-out soak test.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Routes a session's receive half onto a shard and installs its
    /// waker.
    pub fn register(&self, session: u64, mut rx: Box<dyn FrameRx>) {
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[idx];
        let queued = Arc::new(AtomicBool::new(false));
        // Install the waker before the entry is in the registry — the
        // install fires it once (transport contract), and that firing
        // must not run inside the shard lock (it takes the same lock).
        // The early fire may push a ready id with no entry yet; the
        // shard skips unknown ids, so the unconditional enqueue below
        // is what guarantees pre-registration frames get drained.
        rx.set_waker(shard.waker(session, Arc::clone(&queued)));
        {
            let mut state = shard.state.lock().unwrap();
            state.sessions.insert(
                session,
                SessionEntry {
                    rx,
                    queued: Arc::clone(&queued),
                },
            );
            queued.store(true, Ordering::Release);
            state.ready.push_back(session);
        }
        shard.cv.notify_one();
    }
}
