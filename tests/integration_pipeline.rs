//! End-to-end integration tests spanning storage → loaders → planner →
//! constructors → trainer delivery.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use megascale_data::balance::{BackboneShape, BalanceMethod};
use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::buffer::BufferInfo;
use megascale_data::core::constructor::DataConstructor;
use megascale_data::core::loader::{LoaderConfig, SourceLoader};
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::gen::materialize_catalog;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeliveryKind, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;
use megascale_data::storage::MemStore;

fn backbone() -> BackboneShape {
    BackboneShape {
        layers: 4,
        hidden: 256,
        mlp_ratio: 4.0,
        heads: 4,
        vocab: 1000,
        experts_per_token: 1,
    }
}

/// Full path over *real materialized storage*: columnar files → stored
/// loaders → planner → constructor → per-client deliveries.
#[test]
fn stored_pipeline_end_to_end() {
    let store = Arc::new(MemStore::new());
    let mut rng = SimRng::seed(100);
    let catalog = coyo700m_like(&mut rng);
    let manifests =
        materialize_catalog(store.as_ref(), "data", &catalog, 64, &mut rng).expect("materialize");

    // One stored loader per source.
    let mut loaders: Vec<SourceLoader> = catalog
        .sources()
        .iter()
        .zip(&manifests)
        .enumerate()
        .map(|(i, (spec, manifest))| {
            SourceLoader::stored(
                spec.clone(),
                LoaderConfig::solo(i as u32),
                store.clone(),
                manifest.path.clone(),
                5,
            )
        })
        .collect();
    for l in &mut loaders {
        l.refill(32).expect("refill from storage");
    }

    let mesh = DeviceMesh::pp_dp_cp_tp(2, 2, 2, 2).expect("mesh");
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let mut planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 40,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: backbone(),
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        77,
    );

    let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
    let (plan, phases) = planner.generate(&info).expect("plan");
    assert_eq!(plan.all_samples().len(), 40);
    assert!(phases.compute_ns > 0);

    // Loaders pop; constructor assembles; deliveries respect parallelism.
    let mut popped = HashMap::new();
    for l in &mut loaders {
        if let Some(ids) = plan.directives.get(&l.id()) {
            for s in l.pop(ids) {
                popped.insert(s.meta.sample_id, s);
            }
        }
    }
    assert_eq!(popped.len(), 40, "all planned samples must be popped");

    let constructor = DataConstructor::new(mesh.clone(), 4096);
    let mut delivered_samples = HashSet::new();
    for bucket in &plan.buckets {
        let batch = constructor.construct(bucket, &popped, &plan.broadcast_axes);
        for mb in &batch.microbatches {
            for seq in &mb.sequences {
                for seg in &seq.segments {
                    delivered_samples.insert(seg.sample_id);
                }
            }
        }
        // Parallelism roles: TP>0 elided; PP>0 metadata-only; CP slices
        // tile every payload sequence exactly.
        for d in &batch.deliveries {
            let tp = mesh.coord(d.rank, Axis::TP).expect("rank valid");
            let pp = mesh.coord(d.rank, Axis::PP).expect("rank valid");
            match d.kind {
                DeliveryKind::Elided => assert!(tp > 0),
                DeliveryKind::MetadataOnly => {
                    assert_eq!(tp, 0);
                    assert!(pp > 0);
                }
                DeliveryKind::Payload => {
                    assert_eq!(tp, 0);
                    assert_eq!(pp, 0);
                }
            }
        }
        for (mb_idx, mb) in batch.microbatches.iter().enumerate() {
            for (seq_idx, seq) in mb.sequences.iter().enumerate() {
                let mut covered = 0u64;
                for d in &batch.deliveries {
                    if d.kind == DeliveryKind::Payload {
                        let (s, e) = d.cp_slices[mb_idx][seq_idx];
                        covered += e - s;
                    }
                }
                // Each payload rank covers its CP shard; the CP group
                // of payload ranks tiles the sequence once per TP0/PP0.
                assert_eq!(covered, seq.padded_len(), "sequence must be tiled");
            }
        }
    }
    assert_eq!(delivered_samples.len(), 40);
}

/// The facade pipeline is deterministic, non-repeating, and keeps plans,
/// metas, and batches mutually consistent across many steps.
#[test]
fn sustained_run_consistency() {
    let mut rng = SimRng::seed(4);
    let catalog = coyo700m_like(&mut rng);
    let mut msd = MegaScaleData::new(MsdConfig {
        catalog: catalog.clone(),
        mesh: DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).expect("mesh"),
        strategy: Strategy::Vanilla,
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 4,
            broadcast_axes: vec![],
            samples_per_step: 48,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 32,
            total_mem_bytes: 1 << 40,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 0,
        buffer_capacity: 512,
        seed: 6,
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for step in 0..10 {
        let out = msd.step().expect("step");
        let ids = out.plan.all_samples();
        assert_eq!(ids.len(), 48, "step {step}");
        // Single-epoch: no sample is ever scheduled twice.
        for id in &ids {
            assert!(seen.insert(*id), "sample {id} rescheduled at step {step}");
        }
        // Metas cover exactly the scheduled set.
        assert_eq!(out.metas.len(), ids.len());
        for id in &ids {
            assert!(out.metas.contains_key(id));
        }
        // Plan step counter advances.
        assert_eq!(out.plan.step, step);
    }
}

/// Loss-adaptive mixing shifts realized source composition.
#[test]
fn loss_adaptive_mixing_responds() {
    let mut rng = SimRng::seed(9);
    let catalog = coyo700m_like(&mut rng);
    let n = catalog.len();
    let mut msd = MegaScaleData::new(MsdConfig {
        catalog: catalog.clone(),
        mesh: DeviceMesh::pp_dp_cp_tp(1, 2, 1, 1).expect("mesh"),
        strategy: Strategy::Vanilla,
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![],
            samples_per_step: 40,
            schedule: MixSchedule::LossAdaptive {
                base: vec![1.0; n],
                sensitivity: 3.0,
                losses: vec![0.0; n],
            },
        },
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 16,
            total_mem_bytes: 1 << 40,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 0,
        buffer_capacity: 512,
        seed: 2,
    });
    // Uniform losses: roughly even sampling.
    let out = msd.step().expect("step");
    let count_src0 = |out: &megascale_data::core::system::StepOutput| {
        out.metas
            .values()
            .filter(|m| m.source == catalog.sources()[0].id)
            .count()
    };
    let before = count_src0(&out);
    // Source 0 suddenly has much higher loss: sampling should shift to it.
    let mut losses = vec![0.0; n];
    losses[0] = 3.0;
    msd.planner().observe_loss(&losses);
    let out = msd.step().expect("step");
    let after = count_src0(&out);
    assert!(
        after > before + 5,
        "loss-adaptive shift too weak: {before} -> {after}"
    );
}
