//! Iteration-time composition under hybrid parallelism.
//!
//! An iteration of VLM training decomposes into (Fig 14's timeline):
//!
//! 1. **Encoder phase**: each rank encodes its assigned images (EDP — the
//!    encoder is data-parallel across *all* ranks); everyone waits for the
//!    slowest rank.
//! 2. **All-to-All**: encoded image features redistribute from EDP layout
//!    to the backbone's DP×CP layout.
//! 3. **Backbone phase**: 1F1B pipeline over `m` microbatches and `p`
//!    stages. With heterogeneous microbatch durations the makespan is
//!    `Σ_mb t(mb) + (p − 1) · max_mb t(mb)` per DP replica — imbalanced
//!    microbatches inflate the pipeline-bubble term, which is exactly what
//!    load-time balancing removes.
//! 4. **Gradient allreduce** across DP.
//!
//! DP replicas synchronize at the allreduce, so the iteration takes the
//! *maximum* replica time (the straggler effect of Fig 3).

use msd_mesh::{Axis, DeviceMesh};
use serde::{Deserialize, Serialize};

use crate::gpu::GpuSpec;
use crate::models::{backbone_params, ModelPreset};

/// Per-rank workload of one iteration, produced from a loading plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankLoads {
    /// Backbone forward FLOPs per DP replica per microbatch:
    /// `backbone_mb_flops[dp][mb]`.
    pub backbone_mb_flops: Vec<Vec<f64>>,
    /// Encoder forward FLOPs per global rank (EDP layout).
    pub encoder_rank_flops: Vec<f64>,
    /// Bytes each rank contributes to the encoder→backbone All-to-All.
    pub a2a_bytes_per_rank: f64,
}

/// The modeled iteration breakdown, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Encoder phase (max over ranks).
    pub encoder_s: f64,
    /// All-to-All redistribution.
    pub a2a_s: f64,
    /// Backbone compute, slowest DP replica, including pipeline bubbles.
    pub backbone_s: f64,
    /// Pipeline-bubble share of `backbone_s`.
    pub bubble_s: f64,
    /// Gradient allreduce.
    pub allreduce_s: f64,
}

impl IterationBreakdown {
    /// End-to-end iteration time.
    pub fn total_s(&self) -> f64 {
        self.encoder_s + self.a2a_s + self.backbone_s + self.allreduce_s
    }
}

/// Static training setup.
#[derive(Debug, Clone)]
pub struct TrainSetup {
    /// The device mesh (PP/DP/CP/TP sizes).
    pub mesh: DeviceMesh,
    /// Accelerator spec.
    pub gpu: GpuSpec,
    /// The model.
    pub model: ModelPreset,
    /// Backward/forward FLOPs ratio (2.0 for standard training).
    pub bwd_ratio: f64,
    /// TP scaling efficiency (communication overhead inside TP groups).
    pub tp_efficiency: f64,
}

impl TrainSetup {
    /// Creates a setup with standard ratios.
    pub fn new(mesh: DeviceMesh, gpu: GpuSpec, model: ModelPreset) -> Self {
        TrainSetup {
            mesh,
            gpu,
            model,
            bwd_ratio: 2.0,
            tp_efficiency: 0.85,
        }
    }

    /// Seconds for one rank to execute `flops` of *model* work, after
    /// TP/CP sharding of the per-microbatch computation.
    fn shard_secs(&self, flops: f64) -> f64 {
        let tp = f64::from(self.mesh.size(Axis::TP));
        let cp = f64::from(self.mesh.size(Axis::CP));
        let effective = self.gpu.sustained_flops() * tp * self.tp_efficiency * cp;
        flops / effective
    }

    /// Models one iteration from per-rank loads.
    pub fn iteration(&self, loads: &RankLoads) -> IterationBreakdown {
        let pp = f64::from(self.mesh.size(Axis::PP));

        // Encoder phase: pure data parallel over ranks; the slowest rank
        // holds everyone (no TP/CP sharding of the encoder).
        let encoder_s = loads
            .encoder_rank_flops
            .iter()
            .map(|f| (1.0 + self.bwd_ratio) * f / self.gpu.sustained_flops())
            .fold(0.0f64, f64::max);

        // All-to-All: every rank exchanges its feature shard.
        let a2a_s = if loads.a2a_bytes_per_rank > 0.0 {
            loads.a2a_bytes_per_rank / self.gpu.collective_bps
        } else {
            0.0
        };

        // Backbone: per-DP 1F1B makespan, max over replicas.
        let mut backbone_s = 0.0f64;
        let mut bubble_s = 0.0f64;
        for mb_flops in &loads.backbone_mb_flops {
            let times: Vec<f64> = mb_flops
                .iter()
                .map(|f| self.shard_secs((1.0 + self.bwd_ratio) * f / pp))
                .collect();
            let sum: f64 = times.iter().sum();
            let max = times.iter().fold(0.0f64, |a, b| a.max(*b));
            let makespan = sum + (pp - 1.0) * max;
            if makespan > backbone_s {
                backbone_s = makespan;
                bubble_s = (pp - 1.0) * max;
            }
        }

        // Gradient allreduce: ring allreduce of backbone grads over DP.
        let dp = f64::from(self.mesh.size(Axis::DP));
        let params = backbone_params(&self.model.backbone);
        let grad_bytes = params * 2.0
            / f64::from(self.mesh.size(Axis::TP))
            / f64::from(self.mesh.size(Axis::PP));
        let allreduce_s = if dp > 1.0 {
            2.0 * grad_bytes * (dp - 1.0) / dp / self.gpu.collective_bps
        } else {
            0.0
        };

        IterationBreakdown {
            encoder_s,
            a2a_s,
            backbone_s,
            bubble_s,
            allreduce_s,
        }
    }

    /// Tokens/second throughput for an iteration carrying `tokens`.
    pub fn throughput(&self, loads: &RankLoads, tokens: u64) -> f64 {
        let t = self.iteration(loads).total_s();
        if t <= 0.0 {
            0.0
        } else {
            tokens as f64 / t
        }
    }
}

/// Builds per-microbatch backbone FLOPs for a DP replica from packed
/// segment lengths: `segments[mb][seq]` (attention is segment-local).
pub fn backbone_mb_flops(model: &ModelPreset, segments_per_mb: &[Vec<u64>]) -> Vec<f64> {
    segments_per_mb
        .iter()
        .map(|segs| model.backbone.flops_packed(segs.iter().copied()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::vlm_preset;

    fn setup(pp: u32, dp: u32, cp: u32, tp: u32) -> TrainSetup {
        TrainSetup::new(
            DeviceMesh::pp_dp_cp_tp(pp, dp, cp, tp).unwrap(),
            GpuSpec::l20(),
            vlm_preset("ViT-2B", "Llama-12B"),
        )
    }

    fn uniform_loads(dp: usize, mb: usize, flops: f64) -> RankLoads {
        RankLoads {
            backbone_mb_flops: vec![vec![flops; mb]; dp],
            encoder_rank_flops: vec![1e12; 8],
            a2a_bytes_per_rank: 64e6,
        }
    }

    #[test]
    fn breakdown_components_positive() {
        let s = setup(4, 2, 1, 2);
        let b = s.iteration(&uniform_loads(2, 4, 1e13));
        assert!(b.encoder_s > 0.0);
        assert!(b.a2a_s > 0.0);
        assert!(b.backbone_s > 0.0);
        assert!(b.bubble_s > 0.0);
        assert!(b.allreduce_s > 0.0);
        assert!(b.total_s() > b.backbone_s);
    }

    #[test]
    fn dp_straggler_dominates() {
        let s = setup(1, 2, 1, 1);
        let balanced = s.iteration(&RankLoads {
            backbone_mb_flops: vec![vec![1e13], vec![1e13]],
            ..Default::default()
        });
        let skewed = s.iteration(&RankLoads {
            backbone_mb_flops: vec![vec![0.5e13], vec![1.5e13]],
            ..Default::default()
        });
        // Same total work; skew makes the iteration slower.
        assert!(skewed.backbone_s > balanced.backbone_s * 1.4);
    }

    #[test]
    fn microbatch_imbalance_inflates_pipeline_bubbles() {
        let s = setup(8, 1, 1, 1);
        let balanced = s.iteration(&RankLoads {
            backbone_mb_flops: vec![vec![1e13; 4]],
            ..Default::default()
        });
        let skewed = s.iteration(&RankLoads {
            backbone_mb_flops: vec![vec![0.25e13, 0.25e13, 0.25e13, 3.25e13]],
            ..Default::default()
        });
        assert!(skewed.bubble_s > balanced.bubble_s * 2.0);
        assert!(skewed.backbone_s > balanced.backbone_s);
    }

    #[test]
    fn tp_and_cp_shard_compute() {
        let base = setup(1, 1, 1, 1);
        let tp4 = setup(1, 1, 1, 4);
        let cp4 = setup(1, 1, 4, 1);
        let loads = RankLoads {
            backbone_mb_flops: vec![vec![1e14]],
            ..Default::default()
        };
        let b0 = base.iteration(&loads).backbone_s;
        let bt = tp4.iteration(&loads).backbone_s;
        let bc = cp4.iteration(&loads).backbone_s;
        assert!(bt < b0 / 3.0, "tp4 {bt} vs base {b0}");
        assert!(bc < b0 / 3.5, "cp4 {bc} vs base {b0}");
    }

    #[test]
    fn encoder_phase_is_max_over_ranks() {
        let s = setup(1, 1, 1, 1);
        let even = s.iteration(&RankLoads {
            encoder_rank_flops: vec![1e12; 8],
            ..Default::default()
        });
        let skewed = s.iteration(&RankLoads {
            encoder_rank_flops: vec![
                0.2e12, 0.2e12, 0.2e12, 0.2e12, 0.2e12, 0.2e12, 0.2e12, 6.6e12,
            ],
            ..Default::default()
        });
        assert!(skewed.encoder_s > even.encoder_s * 5.0);
    }

    #[test]
    fn packed_segment_flops_penalize_long_segments() {
        let model = vlm_preset("ViT-1B", "Llama-12B");
        let balanced = backbone_mb_flops(&model, &[vec![50, 50]]);
        let skewed = backbone_mb_flops(&model, &[vec![30, 70]]);
        assert!(skewed[0] > balanced[0]);
    }

    #[test]
    fn throughput_scales_inverse_to_time() {
        let s = setup(2, 2, 1, 2);
        let loads = uniform_loads(2, 2, 1e13);
        let t = s.throughput(&loads, 1_000_000);
        assert!(t > 0.0);
        let heavier = uniform_loads(2, 2, 2e13);
        assert!(s.throughput(&heavier, 1_000_000) < t);
    }
}
