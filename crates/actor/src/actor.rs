//! The actor trait and typed actor references.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};

/// A message-processing actor.
///
/// Actors own their state exclusively; all interaction flows through the
/// mailbox. `handle` runs on the actor's dedicated thread.
pub trait Actor: Send + 'static {
    /// The message type this actor processes.
    type Msg: Send + 'static;

    /// Processes one message.
    fn handle(&mut self, msg: Self::Msg, ctx: &mut Ctx);

    /// Called when the actor (re)starts, before the first message.
    fn started(&mut self, _ctx: &mut Ctx) {}

    /// Called when the actor stops cleanly.
    fn stopped(&mut self) {}
}

/// Execution context handed to [`Actor::handle`].
pub struct Ctx {
    /// Actor name (unique within the system).
    pub name: String,
    /// Number of restarts this actor has undergone.
    pub restarts: u32,
    pub(crate) stop_requested: bool,
}

impl Ctx {
    /// Requests a clean stop after the current message.
    pub fn stop(&mut self) {
        self.stop_requested = true;
    }
}

/// Control envelope around user messages.
pub(crate) enum Envelope<M> {
    /// A user message.
    Msg(M),
    /// Clean shutdown request.
    Stop,
    /// Injected fault: panic inside the actor loop (fault injection).
    Crash(String),
    /// Injected fault: sleep before processing further messages.
    Delay(Duration),
}

/// Errors returned by [`ActorRef::ask`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AskError {
    /// The actor's mailbox is closed (actor dead and not restartable).
    Dead,
    /// No reply arrived within the timeout — the paper's RPC-timeout
    /// failure signal.
    Timeout,
}

impl std::fmt::Display for AskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AskError::Dead => write!(f, "actor is dead"),
            AskError::Timeout => write!(f, "ask timed out"),
        }
    }
}

impl std::error::Error for AskError {}

/// A cloneable, typed handle to an actor.
pub struct ActorRef<M> {
    pub(crate) name: String,
    pub(crate) tx: Sender<Envelope<M>>,
    pub(crate) alive: Arc<AtomicBool>,
    pub(crate) processed: Arc<AtomicU64>,
    pub(crate) queued: Arc<AtomicUsize>,
}

impl<M> Clone for ActorRef<M> {
    fn clone(&self) -> Self {
        ActorRef {
            name: self.name.clone(),
            tx: self.tx.clone(),
            alive: self.alive.clone(),
            processed: self.processed.clone(),
            queued: self.queued.clone(),
        }
    }
}

impl<M: Send + 'static> ActorRef<M> {
    /// The actor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the actor thread is currently running.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Messages processed so far (across restarts).
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::SeqCst)
    }

    /// Envelopes currently sitting in the mailbox (sent but not yet
    /// dequeued). The backpressure signal for bounded prefetch: producers
    /// can stall when a consumer's mailbox grows past a budget.
    pub fn mailbox_depth(&self) -> usize {
        self.queued.load(Ordering::SeqCst)
    }

    fn send_envelope(&self, envelope: Envelope<M>) -> bool {
        self.queued.fetch_add(1, Ordering::SeqCst);
        if self.tx.send(envelope).is_ok() {
            true
        } else {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            false
        }
    }

    /// Fire-and-forget send. Returns `false` if the mailbox is closed.
    pub fn tell(&self, msg: M) -> bool {
        self.send_envelope(Envelope::Msg(msg))
    }

    /// Request/response: builds a message embedding a reply channel and
    /// waits for the reply with a timeout.
    ///
    /// # Examples
    ///
    /// ```ignore
    /// let reply: Result<u64, AskError> =
    ///     actor.ask(|tx| Msg::Get { reply: tx }, Duration::from_secs(1));
    /// ```
    pub fn ask<R: Send + 'static>(
        &self,
        build: impl FnOnce(ReplyTo<R>) -> M,
        timeout: Duration,
    ) -> Result<R, AskError> {
        self.ask_pipelined(build)?.wait(timeout)
    }

    /// Pipelined request/response: enqueues the request and returns a
    /// [`PendingReply`] immediately, so a caller can issue asks to many
    /// actors and only then collect the replies — one round-trip of latency
    /// across the whole fleet instead of one per actor.
    ///
    /// # Examples
    ///
    /// ```ignore
    /// let pending: Vec<_> = fleet
    ///     .iter()
    ///     .map(|a| a.ask_pipelined(Msg::Get))
    ///     .collect::<Result<_, _>>()?;
    /// for p in pending {
    ///     let value = p.wait(Duration::from_secs(1))?;
    /// }
    /// ```
    pub fn ask_pipelined<R: Send + 'static>(
        &self,
        build: impl FnOnce(ReplyTo<R>) -> M,
    ) -> Result<PendingReply<R>, AskError> {
        let (tx, rx) = bounded(1);
        let msg = build(ReplyTo { tx });
        if !self.send_envelope(Envelope::Msg(msg)) {
            return Err(AskError::Dead);
        }
        Ok(PendingReply {
            rx,
            alive: self.alive.clone(),
        })
    }

    /// Requests a clean stop (processed in mailbox order).
    pub fn stop(&self) {
        let _ = self.send_envelope(Envelope::Stop);
    }

    /// Fault injection: makes the actor panic when it dequeues this
    /// envelope. A supervised actor will restart; a plain actor dies.
    pub fn inject_crash(&self, reason: impl Into<String>) {
        let _ = self.send_envelope(Envelope::Crash(reason.into()));
    }

    /// Fault injection: stalls the actor for `d` (models slow workers and
    /// partial network partitions — `ask` timeouts then fire).
    pub fn inject_delay(&self, d: Duration) {
        let _ = self.send_envelope(Envelope::Delay(d));
    }
}

/// An in-flight [`ActorRef::ask_pipelined`] reply.
pub struct PendingReply<R> {
    rx: Receiver<R>,
    alive: Arc<AtomicBool>,
}

impl<R> PendingReply<R> {
    /// Blocks up to `timeout` for the reply.
    pub fn wait(self, timeout: Duration) -> Result<R, AskError> {
        self.rx.recv_timeout(timeout).map_err(|_| {
            if self.alive.load(Ordering::SeqCst) {
                AskError::Timeout
            } else {
                AskError::Dead
            }
        })
    }

    /// Non-blocking poll; returns the pending handle back while the reply
    /// has not arrived yet.
    pub fn try_wait(self) -> Result<R, Self> {
        match self.rx.try_recv() {
            Ok(r) => Ok(r),
            Err(_) => Err(self),
        }
    }
}

/// One-shot reply channel carried inside request messages.
pub struct ReplyTo<R> {
    tx: Sender<R>,
}

impl<R: Send> ReplyTo<R> {
    /// Sends the reply; returns `false` if the asker gave up.
    pub fn send(self, value: R) -> bool {
        self.tx.send(value).is_ok()
    }
}

/// Internal: the receiving half plus shared liveness flags.
pub(crate) struct Mailbox<M> {
    pub rx: Receiver<Envelope<M>>,
    pub alive: Arc<AtomicBool>,
    pub processed: Arc<AtomicU64>,
    pub queued: Arc<AtomicUsize>,
}

/// Creates a connected `(ActorRef, Mailbox)` pair.
pub(crate) fn mailbox<M: Send + 'static>(name: &str) -> (ActorRef<M>, Mailbox<M>) {
    let (tx, rx) = crossbeam::channel::unbounded();
    let alive = Arc::new(AtomicBool::new(false));
    let processed = Arc::new(AtomicU64::new(0));
    let queued = Arc::new(AtomicUsize::new(0));
    (
        ActorRef {
            name: name.to_string(),
            tx,
            alive: alive.clone(),
            processed: processed.clone(),
            queued: queued.clone(),
        },
        Mailbox {
            rx,
            alive,
            processed,
            queued,
        },
    )
}
