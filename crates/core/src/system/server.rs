//! The loader-side data server of the distributed serving plane.
//!
//! [`DataServer`] is the actor that turns a [`ThreadedPipeline`] serve
//! session into a network service: remote trainer clients dial in over a
//! [`Transport`], are mapped onto the device mesh via
//! [`msd_mesh::ClientPlaceTree`] (DP-rank → constructor bucket), and
//! stream their per-step batches under credit-based flow control.
//!
//! ## Protocol walk-through
//!
//! ```text
//! client                         server
//!   | -- Hello{client, rank} ----> |   bind session, place on the mesh
//!   | -- Subscribe{cursor, W} ---> |   window = [cursor, cursor + W)
//!   | <------- Batch{step} ------- |   pulled from the bucket constructor
//!   | -- Ack{step} --------------> |   trim retransmit buffer
//!   | -- Credit{1} --------------> |   slide the window forward
//!   |            ...               |
//!   | -- Close{client} ----------> |   cursor → end, prune floor advances
//! ```
//!
//! The server pulls a step from the client's constructor only while the
//! step is inside the granted window, so a slow (or vanished) trainer
//! rank freezes its own constructor cursor and the serve driver's
//! bounded-queue backpressure stalls the pipeline — queues never balloon
//! on behalf of a rank that is not consuming.
//!
//! ## Reconnect and resume
//!
//! Every batch stays in a per-client retransmit buffer until acked. A
//! client that loses its connection (or just a frame, on the lossy sim
//! transport) re-dials and re-`Subscribe`s from its consumed cursor; the
//! server rebinds the session, resends exactly the unacknowledged
//! window, and the client discards anything below its cursor — the
//! resumed stream is gap-free and duplicate-free by construction.
//!
//! [`ThreadedPipeline`]: crate::system::runtime::ThreadedPipeline

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msd_actor::actor::ReplyTo;
use msd_actor::{Actor, ActorRef, Ctx, Gcs, PendingReply};
use msd_mesh::Rank;

use crate::constructor::ConstructedBatch;
use crate::system::net::{
    BatchPayload, FrameRx, FrameTx, NetError, SharedBatch, Transport, WireConn, WireFrame,
};
use crate::system::runtime::ConstructorMsg;
use crate::system::tcp;

/// Where one remote client's trainer rank lives on the mesh (the input
/// to [`ThreadedPipeline::serve_distributed`]).
///
/// [`ThreadedPipeline::serve_distributed`]: crate::system::runtime::ThreadedPipeline::serve_distributed
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemotePlacement {
    /// Deployment-wide client id (also its roster entry).
    pub client: u32,
    /// The trainer rank the client feeds.
    pub rank: Rank,
}

/// Messages understood by the data-server actor.
pub enum ServerMsg {
    /// A freshly dialed connection's server-side sender. The receiver
    /// half is drained by a reader thread that forwards decoded frames
    /// as [`ServerMsg::Frame`].
    Session {
        /// Connection identity (unique per dial).
        session: u64,
        /// The server → client frame sender.
        tx: Box<dyn FrameTx>,
    },
    /// One frame received on a live session.
    Frame {
        /// The session the frame arrived on.
        session: u64,
        /// The decoded frame.
        frame: WireFrame,
    },
    /// A session's reader observed the peer hang up.
    Gone {
        /// The dead session.
        session: u64,
    },
    /// Poll pending constructor pulls and push window-eligible batches
    /// (ticked by the pump thread).
    Pump,
    /// Report per-client serving state.
    Status(ReplyTo<ServerStatus>),
}

/// One client's row in a [`ServerStatus`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientServeStat {
    /// The client.
    pub client: u32,
    /// Whether a session is currently bound.
    pub connected: bool,
    /// Resume floor of the latest `Subscribe`.
    pub base: u64,
    /// Next step the server will pull from the constructor.
    pub next_pull: u64,
    /// Batches sent but not yet acknowledged (retransmit buffer size).
    pub unacked: usize,
    /// `Subscribe` frames seen after the first (reconnects + loss
    /// recoveries).
    pub resumes: u64,
    /// Whether the client's stream is finished (consumed or closed).
    pub done: bool,
}

/// Point-in-time state of a [`DataServer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStatus {
    /// Per-client serving state, sorted by client id.
    pub clients: Vec<ClientServeStat>,
    /// Frames received over all sessions.
    pub frames_rx: u64,
    /// Batch frames sent (including window resends).
    pub batches_tx: u64,
}

/// The in-flight constructor pull of one client.
type PendingPull = (u64, Instant, PendingReply<(u64, SharedBatch)>);

/// Binds `state` to `session` unless a *newer* session already owns the
/// client (ids are monotone per server). Returns whether `session` is
/// now (or already was) the bound one; a superseded session's sender is
/// dropped.
fn rebind(
    sessions: &mut HashMap<u64, Box<dyn FrameTx>>,
    state: &mut ClientState,
    session: u64,
) -> bool {
    match state.session {
        Some(current) if current == session => true,
        Some(current) if current > session => false,
        current => {
            if let Some(old) = current {
                sessions.remove(&old);
            }
            state.session = Some(session);
            true
        }
    }
}

struct ClientState {
    rank: Rank,
    ctor: usize,
    session: Option<u64>,
    subscribed: bool,
    /// Resume floor: `from_step` of the latest `Subscribe`.
    base: u64,
    /// Absolute send limit: the server may pull/send steps `< high`.
    high: u64,
    /// Next step to pull from the constructor.
    next_pull: u64,
    pending: Option<PendingPull>,
    /// Sent-but-unacked batches, kept for window resends (the wire
    /// form memoizes inside `SharedBatch`, so resends serialize once).
    unacked: BTreeMap<u64, SharedBatch>,
    resumes: u64,
    done: bool,
}

/// The serving-plane server actor. See the module docs for the
/// protocol; construction happens inside
/// [`ThreadedPipeline::serve_distributed`].
///
/// [`ThreadedPipeline::serve_distributed`]: crate::system::runtime::ThreadedPipeline::serve_distributed
pub struct DataServer {
    constructors: Vec<ActorRef<ConstructorMsg>>,
    steps: u64,
    /// A parked pull older than this is assumed lost to a constructor
    /// restart and re-issued (re-pulls are idempotent).
    pull_retry: Duration,
    sessions: HashMap<u64, Box<dyn FrameTx>>,
    clients: HashMap<u32, ClientState>,
    gcs: Gcs,
    frames_rx: u64,
    batches_tx: u64,
}

impl DataServer {
    /// Creates the server for one serve session. `placements` carries
    /// `(client, rank, constructor index)` triples — the mesh lookup
    /// happened in the caller, which owns the `ClientPlaceTree`.
    pub fn new(
        constructors: Vec<ActorRef<ConstructorMsg>>,
        placements: Vec<(u32, Rank, usize)>,
        steps: u64,
        pull_retry: Duration,
        gcs: Gcs,
    ) -> Self {
        let clients = placements
            .into_iter()
            .map(|(client, rank, ctor)| {
                (
                    client,
                    ClientState {
                        rank,
                        ctor,
                        session: None,
                        subscribed: false,
                        base: 0,
                        high: 0,
                        next_pull: 0,
                        pending: None,
                        unacked: BTreeMap::new(),
                        resumes: 0,
                        done: false,
                    },
                )
            })
            .collect();
        DataServer {
            constructors,
            steps,
            pull_retry,
            sessions: HashMap::new(),
            clients,
            gcs,
            frames_rx: 0,
            batches_tx: 0,
        }
    }

    /// Sends one batch frame to a client's bound session; a send failure
    /// unbinds the session (the reader's `Gone` may still be in flight).
    fn send_batch(&mut self, client: u32, step: u64) {
        let Some(state) = self.clients.get(&client) else {
            return;
        };
        let (Some(session), Some(shared)) = (state.session, state.unacked.get(&step)) else {
            return;
        };
        let frame = WireFrame::Batch {
            client,
            step,
            payload: BatchPayload::Shared(shared.clone()),
        };
        let delivered = match self.sessions.get(&session) {
            Some(tx) => tx.send(frame).is_ok(),
            None => false,
        };
        if delivered {
            self.batches_tx += 1;
        } else {
            self.sessions.remove(&session);
            if let Some(state) = self.clients.get_mut(&client) {
                state.session = None;
            }
        }
    }

    /// Marks a client's stream finished and advances its constructor
    /// cursor to the end so the prune floor and the serve driver's
    /// drain stop waiting on it.
    fn finish(&mut self, client: u32) {
        let Some(state) = self.clients.get_mut(&client) else {
            return;
        };
        if state.done {
            return;
        }
        state.done = true;
        state.pending = None;
        state.unacked.clear();
        let steps = self.steps;
        self.constructors[state.ctor].tell(ConstructorMsg::Complete {
            client,
            next_step: steps,
        });
    }

    fn handle_frame(&mut self, session: u64, frame: WireFrame) {
        self.frames_rx += 1;
        let client = frame.client();
        match frame {
            WireFrame::Hello { rank, .. } => {
                let Some(state) = self.clients.get_mut(&client) else {
                    self.gcs.log_fault(
                        "data-server",
                        format!("unplaced client {client} dialed in; closing its session"),
                    );
                    if let Some(tx) = self.sessions.remove(&session) {
                        let _ = tx.send(WireFrame::Close { client });
                    }
                    return;
                };
                if rank != state.rank {
                    self.gcs.log_fault(
                        "data-server",
                        format!(
                            "client {client} dialed with rank {rank}, placed at rank {}; \
                             keeping the placement",
                            state.rank
                        ),
                    );
                }
                rebind(&mut self.sessions, state, session);
            }
            WireFrame::Subscribe {
                from_step, credits, ..
            } => {
                let Some(state) = self.clients.get_mut(&client) else {
                    return;
                };
                // A Subscribe binds too: on a lossy transport the Hello
                // may simply never have arrived, and ignoring the
                // Subscribe would strand the client on an unbound
                // session. Session ids are monotone, so a delayed frame
                // from a pre-reconnect session can never rebind
                // backwards.
                if !rebind(&mut self.sessions, state, session) {
                    return; // Stale session; the client re-dialed since.
                }
                if state.subscribed {
                    state.resumes += 1;
                }
                state.subscribed = true;
                // Everything below the client's cursor is consumed.
                state.base = from_step;
                state.unacked.retain(|step, _| *step >= from_step);
                state.high = from_step.saturating_add(u64::from(credits));
                state.next_pull = state.next_pull.max(from_step);
                // Resend the unacknowledged window (idempotent on the
                // client, which discards steps below its cursor).
                let resend: Vec<u64> = state
                    .unacked
                    .range(from_step..state.high.min(self.steps))
                    .map(|(step, _)| *step)
                    .collect();
                for step in resend {
                    self.send_batch(client, step);
                }
            }
            WireFrame::Ack { step, .. } => {
                if let Some(state) = self.clients.get_mut(&client) {
                    // Clients consume strictly in order, so an Ack for
                    // `step` implies everything below it was consumed
                    // too — trim cumulatively, or a single lost Ack
                    // would pin its batch in the buffer forever (a
                    // smoothly consuming client never re-subscribes).
                    state.unacked.retain(|s, _| *s > step);
                    if state.next_pull >= self.steps
                        && state.unacked.is_empty()
                        && state.pending.is_none()
                    {
                        self.finish(client);
                    }
                }
            }
            WireFrame::Credit { grant, .. } => {
                if let Some(state) = self.clients.get_mut(&client) {
                    state.high = state.high.saturating_add(u64::from(grant));
                }
            }
            WireFrame::Close { .. } => {
                self.finish(client);
                // Echo the Close so the client's teardown handshake can
                // terminate even on a lossy transport (it retries Close
                // until the echo lands). The session stays bound — the
                // client drops it, which surfaces here as `Gone`.
                if let Some(state) = self.clients.get(&client) {
                    if let Some(session) = state.session {
                        if let Some(tx) = self.sessions.get(&session) {
                            let _ = tx.send(WireFrame::Close { client });
                        }
                    }
                }
            }
            WireFrame::Batch { .. } => {
                // Clients never send batches; ignore.
            }
        }
    }

    /// Drives one client forward: resolve its parked pull, issue the
    /// next one while the credit window allows, send what completed.
    fn pump_client(&mut self, client: u32) {
        loop {
            let Some(state) = self.clients.get_mut(&client) else {
                return;
            };
            if state.done || !state.subscribed {
                return;
            }
            // Resolve the in-flight pull, if any.
            if let Some((step, issued, reply)) = state.pending.take() {
                match reply.try_wait() {
                    Ok((got, shared)) => {
                        debug_assert_eq!(got, step);
                        // The constructor hands every bucket-mate the
                        // same wrapper, so the memoized wire encoding is
                        // shared (and, on serializing transports,
                        // already warmed at construct time).
                        state.unacked.insert(step, shared);
                        self.send_batch(client, step);
                        continue; // A send may open room for the next pull.
                    }
                    Err(reply) => {
                        if issued.elapsed() > self.pull_retry {
                            // The constructor likely restarted and lost
                            // the parked reply; re-issue (idempotent).
                            let ctor = &self.constructors[state.ctor];
                            match ctor.ask_pipelined(move |tx| ConstructorMsg::Pull {
                                client,
                                step,
                                reply: tx,
                            }) {
                                Ok(p) => state.pending = Some((step, Instant::now(), p)),
                                Err(_) => state.pending = None, // Retry next pump.
                            }
                        } else {
                            state.pending = Some((step, issued, reply));
                        }
                        return;
                    }
                }
            }
            // Issue the next pull while inside the granted window.
            if state.next_pull < self.steps && state.next_pull < state.high {
                let step = state.next_pull;
                let ctor = &self.constructors[state.ctor];
                match ctor.ask_pipelined(move |tx| ConstructorMsg::Pull {
                    client,
                    step,
                    reply: tx,
                }) {
                    Ok(p) => {
                        state.pending = Some((step, Instant::now(), p));
                        state.next_pull = step + 1;
                    }
                    Err(_) => return, // Constructor mid-restart.
                }
                continue;
            }
            return;
        }
    }

    fn status(&self) -> ServerStatus {
        let mut clients: Vec<ClientServeStat> = self
            .clients
            .iter()
            .map(|(client, s)| ClientServeStat {
                client: *client,
                connected: s.session.is_some(),
                base: s.base,
                next_pull: s.next_pull,
                unacked: s.unacked.len(),
                resumes: s.resumes,
                done: s.done,
            })
            .collect();
        clients.sort_by_key(|c| c.client);
        ServerStatus {
            clients,
            frames_rx: self.frames_rx,
            batches_tx: self.batches_tx,
        }
    }
}

impl Actor for DataServer {
    type Msg = ServerMsg;

    fn handle(&mut self, msg: ServerMsg, _ctx: &mut Ctx) {
        match msg {
            ServerMsg::Session { session, tx } => {
                self.sessions.insert(session, tx);
            }
            ServerMsg::Frame { session, frame } => self.handle_frame(session, frame),
            ServerMsg::Gone { session } => {
                self.sessions.remove(&session);
                for state in self.clients.values_mut() {
                    if state.session == Some(session) {
                        state.session = None;
                    }
                }
            }
            ServerMsg::Pump => {
                let ids: Vec<u32> = self.clients.keys().copied().collect();
                for client in ids {
                    self.pump_client(client);
                }
            }
            ServerMsg::Status(reply) => {
                reply.send(self.status());
            }
        }
    }
}

/// A handle to a live [`DataServer`]: dial new client connections and
/// inspect serving state. Cheap to clone; dropping it does not stop the
/// server (the owning [`ThreadedPipeline`] does, at shutdown).
///
/// [`ThreadedPipeline`]: crate::system::runtime::ThreadedPipeline
#[derive(Clone)]
pub struct DataServerHandle {
    actor: ActorRef<ServerMsg>,
    transport: Arc<dyn Transport>,
    placements: Arc<HashMap<u32, Rank>>,
    next_session: Arc<AtomicU64>,
    steps: u64,
    pull_timeout: Duration,
    credits: u32,
}

impl DataServerHandle {
    pub(crate) fn new(
        actor: ActorRef<ServerMsg>,
        transport: Arc<dyn Transport>,
        placements: Arc<HashMap<u32, Rank>>,
        steps: u64,
        pull_timeout: Duration,
        credits: u32,
    ) -> Self {
        DataServerHandle {
            actor,
            transport,
            placements,
            next_session: Arc::new(AtomicU64::new(1)),
            steps,
            pull_timeout,
            credits,
        }
    }

    /// The transport connections ride on.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Current per-client serving state.
    pub fn status(&self) -> Option<ServerStatus> {
        self.actor
            .ask(ServerMsg::Status, Duration::from_secs(5))
            .ok()
    }

    /// Connects a placed client and returns its pulling handle. The
    /// connection is dialed lazily on the first
    /// [`RemoteClient::next`] call.
    ///
    /// # Panics
    ///
    /// Panics if `client` was not in the serve session's placements.
    pub fn connect(&self, client: u32) -> RemoteClient {
        let rank = *self
            .placements
            .get(&client)
            .unwrap_or_else(|| panic!("client {client} is not placed in this serve session"));
        RemoteClient {
            id: client,
            rank,
            dialer: Box::new(HandleDialer(self.clone())),
            conn: None,
            ever_connected: false,
            next_step: 0,
            steps: self.steps,
            credits: self.credits.max(1),
            pull_timeout: self.pull_timeout,
            reconnects: 0,
            closed: false,
        }
    }

    /// Opens one transport connection, registers its server end with the
    /// actor, and spawns the reader thread that forwards inbound frames.
    fn dial(&self) -> WireConn {
        let (client_end, server_end) = self.transport.pair();
        self.register(server_end);
        client_end
    }

    /// Registers the server end of an established connection: assigns a
    /// session id, hands the sender to the actor, and spawns the reader
    /// thread. The TCP accept loop and the in-process `dial` path both
    /// funnel through here.
    fn register(&self, server_end: WireConn) -> u64 {
        let session = self.next_session.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = server_end.split();
        self.actor.tell(ServerMsg::Session { session, tx });
        spawn_server_reader(self.actor.clone(), session, rx);
        session
    }

    /// Serves this session's wire protocol on a real TCP listener so
    /// clients in *other OS processes* can dial in with
    /// [`RemoteClient::over_tcp`]. Returns the bound address (pass
    /// port 0 to let the OS pick). The accept loop runs until the
    /// server actor stops at session shutdown.
    pub fn serve_tcp<A: ToSocketAddrs>(&self, addr: A) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let handle = self.clone();
        std::thread::Builder::new()
            .name("msd/tcp-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        // Accepted sockets inherit non-blocking on some
                        // platforms; the frame threads want blocking IO.
                        let conn = stream
                            .set_nonblocking(false)
                            .and_then(|()| tcp::wire_conn(stream));
                        let Ok(conn) = conn else { continue };
                        if !handle.actor.is_alive() {
                            return;
                        }
                        handle.register(conn);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if !handle.actor.is_alive() {
                            return; // Session shut down; stop accepting.
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            })?;
        Ok(local)
    }
}

/// Drains one session's inbound frames into the server actor. The
/// thread lives as long as the connection: the client dropping its
/// endpoint closes the channel and ends the loop. The liveness check
/// only reaps readers of connections leaked past server shutdown.
fn spawn_server_reader(actor: ActorRef<ServerMsg>, session: u64, mut rx: Box<dyn FrameRx>) {
    std::thread::Builder::new()
        .name(format!("msd/server-rx-{session}"))
        .spawn(move || {
            let mut seen_alive = false;
            loop {
                match rx.recv(Duration::from_millis(200)) {
                    Ok(frame) => {
                        seen_alive = true;
                        if !actor.tell(ServerMsg::Frame { session, frame }) {
                            break; // Server stopped.
                        }
                    }
                    Err(NetError::Timeout) => {
                        if actor.is_alive() {
                            seen_alive = true;
                        } else if seen_alive {
                            break; // Server stopped after serving us.
                        }
                    }
                    // A desynchronized stream (`Corrupt`) is fatal to
                    // the connection just like a hang-up: the client
                    // redials and resumes from its cursor.
                    Err(NetError::Closed | NetError::Corrupt) => {
                        actor.tell(ServerMsg::Gone { session });
                        break;
                    }
                }
            }
        })
        .expect("failed to spawn server reader thread");
}

/// How a [`RemoteClient`] opens (and re-opens) its connection: through
/// the in-process [`DataServerHandle`] or by dialing a TCP address in
/// another process. Redial-on-failure lives in the client; a dialer
/// just produces connections.
trait Dial: Send {
    /// Attempts one connection; `None` means the server is currently
    /// unreachable (the client retries with backoff).
    fn dial(&self) -> Option<WireConn>;
}

/// Dials through the serve session's own [`Transport`] factory.
struct HandleDialer(DataServerHandle);

impl Dial for HandleDialer {
    fn dial(&self) -> Option<WireConn> {
        Some(self.0.dial())
    }
}

/// Dials a [`DataServerHandle::serve_tcp`] listener, typically from a
/// different OS process.
struct TcpDialer(SocketAddr);

impl Dial for TcpDialer {
    fn dial(&self) -> Option<WireConn> {
        tcp::connect(self.0).ok()
    }
}

/// A remote trainer client of a distributed serve session. The
/// network-facing sibling of [`ServeClient`]: pulls are strictly
/// ordered, the client carries its own consumed cursor, and a lost
/// connection (or lost frames, on a lossy transport) is survived by
/// re-dialing and re-subscribing from that cursor.
///
/// [`ServeClient`]: crate::system::runtime::ServeClient
pub struct RemoteClient {
    /// Client id (also its roster entry on the serve driver).
    pub id: u32,
    rank: Rank,
    dialer: Box<dyn Dial>,
    conn: Option<WireConn>,
    ever_connected: bool,
    next_step: u64,
    steps: u64,
    credits: u32,
    pull_timeout: Duration,
    reconnects: u64,
    closed: bool,
}

impl RemoteClient {
    /// Connects to a serve session listening at `addr` (see
    /// [`DataServerHandle::serve_tcp`]) — the cross-process sibling of
    /// [`DataServerHandle::connect`]. The caller supplies what the
    /// in-process path reads off the handle: its placed rank, the
    /// session's step count, the per-pull timeout, and the initial
    /// credit window. The connection is dialed lazily on the first
    /// [`RemoteClient::next`] call and redialed as needed.
    pub fn over_tcp(
        addr: SocketAddr,
        client: u32,
        rank: Rank,
        steps: u64,
        pull_timeout: Duration,
        credits: u32,
    ) -> RemoteClient {
        RemoteClient {
            id: client,
            rank,
            dialer: Box::new(TcpDialer(addr)),
            conn: None,
            ever_connected: false,
            next_step: 0,
            steps,
            credits: credits.max(1),
            pull_timeout,
            reconnects: 0,
            closed: false,
        }
    }

    /// The trainer rank this client feeds.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Serve steps already consumed (the resume cursor).
    pub fn consumed(&self) -> u64 {
        self.next_step
    }

    /// Connections dialed beyond the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Drops the current connection without telling the server —
    /// simulates a client crash or network partition. The next
    /// [`RemoteClient::next`] call re-dials and resumes from the cursor.
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    fn redial(&mut self) {
        if self.conn.is_some() {
            return;
        }
        let Some(conn) = self.dialer.dial() else {
            return; // Unreachable (e.g. TCP listener not up yet); retry.
        };
        let hello = conn.tx.send(WireFrame::Hello {
            client: self.id,
            rank: self.rank,
        });
        if hello.is_err() {
            return; // Server gone; retry on the next attempt.
        }
        let _ = conn.tx.send(WireFrame::Subscribe {
            client: self.id,
            from_step: self.next_step,
            credits: self.credits,
        });
        self.conn = Some(conn);
    }

    fn resubscribe(&mut self) {
        let Some(conn) = self.conn.as_ref() else {
            return;
        };
        let sent = conn.tx.send(WireFrame::Subscribe {
            client: self.id,
            from_step: self.next_step,
            credits: self.credits,
        });
        if sent.is_err() {
            self.conn = None;
        }
    }

    /// Reliable stream teardown: retries `Close` until the server's echo
    /// confirms it landed, so a lost final Ack/Close on a lossy
    /// transport cannot leave the server (and with it the serve
    /// driver's drain) waiting on this client forever.
    fn close_handshake(&mut self) {
        if self.closed {
            return;
        }
        for _ in 0..40 {
            let Some(conn) = self.conn.as_mut() else {
                break; // Never connected (or server gone): nothing to close.
            };
            if conn.tx.send(WireFrame::Close { client: self.id }).is_err() {
                break;
            }
            match conn.rx.recv(Duration::from_millis(100)) {
                Ok(WireFrame::Close { .. }) => {
                    self.closed = true;
                    return;
                }
                Ok(WireFrame::Batch { step, .. }) if step < self.next_step => {
                    // A straggling window resend: re-ack so the server's
                    // retransmit buffer drains.
                    let _ = conn.tx.send(WireFrame::Ack {
                        client: self.id,
                        step,
                    });
                }
                Ok(_) => {}
                Err(NetError::Timeout) => {} // Close lost: retry.
                Err(NetError::Closed | NetError::Corrupt) => break,
            }
        }
        self.closed = true; // Best effort exhausted.
    }

    /// Pulls the next batch, blocking (with reconnects and window
    /// re-subscriptions while the network or the pipeline recovers)
    /// until it arrives. Returns `None` once the stream is exhausted or
    /// the server stays unreachable past the retry budget. The batch is
    /// shared on loopback and decoded-once on network transports.
    pub fn next(&mut self) -> Option<(u64, Arc<ConstructedBatch>)> {
        if self.next_step >= self.steps {
            self.close_handshake();
            return None;
        }
        let want = self.next_step;
        // Generous budget: mirrors ServeClient::next — supervised
        // restarts, backpressure stalls, and (here) loss recovery all
        // spend retries.
        let mut quiet_timeouts = 0u32;
        for _ in 0..600 {
            if self.conn.is_none() {
                if self.ever_connected {
                    self.reconnects += 1;
                }
                self.redial();
                if self.conn.is_none() {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
                self.ever_connected = true;
            }
            let Some(conn) = self.conn.as_mut() else {
                continue;
            };
            match conn.rx.recv(self.pull_timeout) {
                Ok(WireFrame::Batch { step, payload, .. }) => {
                    quiet_timeouts = 0;
                    if step < want {
                        // Window resend of an already-consumed step:
                        // re-ack so the server trims it.
                        let _ = conn.tx.send(WireFrame::Ack {
                            client: self.id,
                            step,
                        });
                        continue;
                    }
                    if step > want {
                        // Early arrival while `want` was lost; the
                        // timeout-driven resubscribe will recover it.
                        continue;
                    }
                    let Ok(batch) = payload.batch() else {
                        continue; // Undecodable payload: same as lost.
                    };
                    let _ = conn.tx.send(WireFrame::Ack {
                        client: self.id,
                        step,
                    });
                    let _ = conn.tx.send(WireFrame::Credit {
                        client: self.id,
                        grant: 1,
                    });
                    self.next_step = want + 1;
                    if self.next_step == self.steps {
                        let _ = conn.tx.send(WireFrame::Close { client: self.id });
                    }
                    return Some((step, batch));
                }
                Ok(WireFrame::Close { .. }) => {
                    self.conn = None; // Server shed us; re-dial.
                }
                Ok(_) => {
                    quiet_timeouts = 0;
                }
                Err(NetError::Timeout) => {
                    // Lost Batch/Subscribe/Ack/Credit all collapse to
                    // this: resync the window from the cursor. If even
                    // repeated re-subscriptions stay unanswered, the
                    // session itself may be broken (e.g. its Hello was
                    // lost); tear it down and re-dial fresh.
                    quiet_timeouts += 1;
                    if quiet_timeouts >= 3 {
                        quiet_timeouts = 0;
                        self.conn = None;
                    } else {
                        self.resubscribe();
                    }
                }
                // A hang-up or a desynchronized stream both mean this
                // connection is done for; redial and resume from the
                // cursor.
                Err(NetError::Closed | NetError::Corrupt) => {
                    self.conn = None;
                }
            }
        }
        None
    }
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        if !self.closed {
            // Abandoned (or never fully torn down): tell the server so
            // the constructor's prune floor and the serve driver stop
            // waiting for a client that will never pull again.
            if let Some(conn) = self.conn.as_ref() {
                let _ = conn.tx.send(WireFrame::Close { client: self.id });
            }
        }
    }
}
