//! Buffer-pool contract suite.
//!
//! The pool's one dangerous property is recycling: handing back a
//! buffer some consumer still views would scribble payload bytes
//! mid-flight. These tests pin the safety contract (a frozen buffer is
//! never reused while any `Bytes` view is alive) under concurrency,
//! prove exhaustion degrades to plain allocation instead of blocking,
//! sweep the size-class boundaries with a proptest, and run the full
//! distributed conformance harness over the pooled hot paths — serving
//! through the pool must stay byte-identical to the local reference.

mod harness;

use std::sync::Arc;
use std::time::Duration;

use harness::{assert_byte_identical, assert_ordered_full, local_streams, remote_streams};
use megascale_data::core::pool::{global, BufferPool, PoolConfig};
use megascale_data::core::system::net::Transport;
use megascale_data::core::system::tcp::TcpTransport;
use proptest::prelude::*;

/// A deterministic fill pattern distinct per tag.
fn pattern(tag: u8, len: usize) -> Vec<u8> {
    (0..len).map(|i| (i as u8).wrapping_mul(31) ^ tag).collect()
}

#[test]
fn concurrent_lease_freeze_reclaim_is_safe_and_accounted() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 200;
    let pool = Arc::new(BufferPool::new(PoolConfig::default()));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let tag = t as u8;
                let mut held = Vec::new();
                for round in 0..ROUNDS {
                    let len = 512 + (round * 97 + t * 13) % 8192;
                    let mut lease = pool.lease(len);
                    assert!(lease.capacity() >= len, "lease shorter than requested");
                    assert!(lease.is_empty(), "lease arrived dirty");
                    let expect = pattern(tag, len);
                    lease.extend_from_slice(&expect);
                    match round % 3 {
                        // Freeze and hold a view across later leases: the
                        // pool must not steal it back while we look.
                        0 => held.push((lease.freeze(), expect)),
                        // Freeze and drop immediately: eligible for steal.
                        1 => drop(lease.freeze()),
                        // Plain drop: straight back to the free list.
                        _ => drop(lease),
                    }
                    if round % 16 == 0 {
                        for (bytes, expect) in &held {
                            assert_eq!(
                                bytes.as_ref(),
                                expect.as_slice(),
                                "held view mutated while pool recycled"
                            );
                        }
                        held.clear();
                    }
                }
                for (bytes, expect) in &held {
                    assert_eq!(bytes.as_ref(), expect.as_slice());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("pool worker panicked");
    }
    let c = pool.counters();
    assert_eq!(
        c.leases,
        (THREADS * ROUNDS) as u64,
        "every request is exactly one lease"
    );
    assert_eq!(
        c.hits + c.misses + c.steals,
        c.leases,
        "every lease is exactly one of hit/miss/steal"
    );
    assert!(
        c.hits + c.steals > c.misses,
        "steady-state churn should mostly recycle (hits {} steals {} misses {})",
        c.hits,
        c.steals,
        c.misses
    );
}

#[test]
fn refcount_held_buffers_are_never_recycled_early() {
    let pool = Arc::new(BufferPool::new(PoolConfig::default()));
    let mut first = pool.lease(4096);
    let expect = pattern(0xA5, 1000);
    first.extend_from_slice(&expect);
    let frozen = first.freeze();
    let view = frozen.slice(100..900);
    drop(frozen);

    // Churn the same size class hard while `view` is alive. Plain
    // drops recycle via the free list, so the only way `steals` can
    // move is if the pool wrongly reclaims the still-viewed buffer.
    for round in 0..64 {
        let mut lease = pool.lease(4096);
        lease.extend_from_slice(&pattern(round as u8, 4096));
        drop(lease);
    }
    assert_eq!(
        pool.counters().steals,
        0,
        "a buffer with a live view must never be stolen"
    );
    assert_eq!(view.as_ref(), &expect[100..900], "live view was scribbled");

    // Dropping the last view makes the buffer reclaimable.
    drop(view);
    drop(pool.lease(4096));
    assert!(
        pool.counters().steals >= 1,
        "unique parked buffer not reclaimed"
    );
}

#[test]
fn exhaustion_falls_back_to_plain_allocation_without_deadlock() {
    // A pool that can keep nothing: every return is shed, every lease
    // must fall through to a fresh allocation — and never block.
    let pool = Arc::new(BufferPool::new(PoolConfig {
        max_free_per_class: 0,
        max_parked_per_class: 0,
        ..PoolConfig::default()
    }));
    let workers: Vec<_> = (0..8)
        .map(|t| {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                for round in 0..100 {
                    let len = 1024 + (round * 131 + t * 17) % 4096;
                    let mut lease = pool.lease(len);
                    lease.extend_from_slice(&pattern(t as u8, len));
                    if round % 2 == 0 {
                        drop(lease.freeze());
                    }
                }
            })
        })
        .collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    for w in workers {
        assert!(
            std::time::Instant::now() < deadline,
            "exhausted pool appears wedged"
        );
        w.join().expect("exhausted-pool worker panicked");
    }
    let c = pool.counters();
    assert_eq!(
        c.misses, c.leases,
        "nothing can be recycled at zero capacity"
    );
    assert_eq!(c.hits + c.steals, 0);
    assert_eq!(
        pool.idle_buffers(),
        0,
        "zero-capacity pool retained buffers"
    );

    // Oversize requests bypass the pool entirely, also without blocking.
    let big = pool.lease((16 << 20) + 1);
    assert!(big.capacity() > 16 << 20);
}

#[test]
fn pooled_serving_stays_byte_identical_to_local_reference() {
    // The end-to-end safety proof: with every hot path drawing from the
    // global pool (synthetic payloads, batch encode, TCP frame recv),
    // distributed serving over real sockets must still deliver streams
    // byte-identical to the unpooled-era local reference.
    let (clients, steps, seed) = (4u32, 5u64, 33u64);
    let before = global().counters();
    let reference = local_streams(seed, clients, steps);
    assert_ordered_full(&reference, steps);
    let transport: Arc<dyn Transport> = Arc::new(TcpTransport::new().expect("bind tcp transport"));
    let streams = remote_streams(transport, seed, clients, steps);
    assert_ordered_full(&streams, steps);
    assert_byte_identical(&reference, &streams, "pooled tcp");

    // The run actually went through the pool, and the books balance.
    let delta = global().counters().since(&before);
    assert!(delta.leases > 0, "serve run bypassed the pool");
    assert_eq!(delta.hits + delta.misses + delta.steals, delta.leases);
    assert!(
        delta.hits + delta.steals > 0,
        "steady-state serving recycled nothing"
    );
}

proptest! {
    // Size-class boundary sweep: for capacities straddling every
    // power-of-two class edge, a lease always has room, round-trips
    // content intact, and the books always balance.
    #[test]
    fn boundary_requests_lease_and_recycle(
        k in 10u32..24,
        delta in -1i64..2,
        fill in any::<u8>(),
    ) {
        let pool = Arc::new(BufferPool::new(PoolConfig::default()));
        let len = ((1u64 << k) as i64 + delta) as usize;
        let mut lease = pool.lease(len);
        prop_assert!(lease.capacity() >= len);
        lease.resize(len, fill);
        let frozen = lease.freeze();
        prop_assert_eq!(frozen.len(), len);
        prop_assert!(frozen.iter().all(|&b| b == fill));
        drop(frozen);

        // Same-size follow-up: in-class sizes recycle, oversize ones
        // (beyond the largest class) are honest misses.
        let again = pool.lease(len);
        prop_assert!(again.capacity() >= len);
        let c = pool.counters();
        prop_assert_eq!(c.leases, 2);
        prop_assert_eq!(c.hits + c.misses + c.steals, c.leases);
        if len <= 16 << 20 {
            prop_assert_eq!(c.steals, 1, "parked buffer should be reclaimed");
        } else {
            prop_assert_eq!(c.misses, 2, "oversize requests must bypass the pool");
        }
    }
}
