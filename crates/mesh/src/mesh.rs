//! The device mesh: axes, ranks, coordinates, and communication groups.

use serde::{Deserialize, Serialize};

/// A global GPU rank (0-based linear index).
pub type Rank = u32;

/// A parallelism axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// Pipeline parallelism (model stages).
    PP,
    /// Data parallelism (model replicas).
    DP,
    /// Context parallelism (sequence sharding).
    CP,
    /// Tensor parallelism (intra-operator sharding).
    TP,
}

impl Axis {
    /// All axes in canonical outer-to-inner mesh order.
    pub const CANONICAL: [Axis; 4] = [Axis::PP, Axis::DP, Axis::CP, Axis::TP];

    /// Short label.
    pub fn label(self) -> &'static str {
        match self {
            Axis::PP => "PP",
            Axis::DP => "DP",
            Axis::CP => "CP",
            Axis::TP => "TP",
        }
    }
}

/// Errors constructing or querying a mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// An axis appears more than once.
    DuplicateAxis(Axis),
    /// An axis has size zero.
    ZeroSize(Axis),
    /// A rank is out of bounds.
    RankOutOfBounds {
        /// Offending rank.
        rank: Rank,
        /// World size.
        world: u32,
    },
}

impl std::fmt::Display for MeshError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeshError::DuplicateAxis(a) => write!(f, "duplicate axis {}", a.label()),
            MeshError::ZeroSize(a) => write!(f, "axis {} has size 0", a.label()),
            MeshError::RankOutOfBounds { rank, world } => {
                write!(f, "rank {rank} out of bounds (world size {world})")
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// A hybrid-parallel device mesh.
///
/// Dimensions are ordered outermost-first; the canonical 4D order is
/// `PP, DP, CP, TP` (matching Megatron-style rank assignment where TP
/// groups are innermost/contiguous).
///
/// # Examples
///
/// ```
/// use msd_mesh::{Axis, DeviceMesh};
///
/// // The paper's 576-GPU trial: TP=4, PP=4, CP=4, DP=9.
/// let mesh = DeviceMesh::new(vec![
///     (Axis::PP, 4), (Axis::DP, 9), (Axis::CP, 4), (Axis::TP, 4),
/// ]).unwrap();
/// assert_eq!(mesh.world_size(), 576);
/// assert_eq!(mesh.size(Axis::CP), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceMesh {
    dims: Vec<(Axis, u32)>,
}

impl DeviceMesh {
    /// Creates a mesh from `(axis, size)` dims, outermost first.
    pub fn new(dims: Vec<(Axis, u32)>) -> Result<Self, MeshError> {
        for (i, (axis, size)) in dims.iter().enumerate() {
            if *size == 0 {
                return Err(MeshError::ZeroSize(*axis));
            }
            if dims[..i].iter().any(|(a, _)| a == axis) {
                return Err(MeshError::DuplicateAxis(*axis));
            }
        }
        Ok(DeviceMesh { dims })
    }

    /// Canonical 4D constructor (PP, DP, CP, TP), omitting size-1 axes is
    /// fine — they behave identically either way.
    pub fn pp_dp_cp_tp(pp: u32, dp: u32, cp: u32, tp: u32) -> Result<Self, MeshError> {
        DeviceMesh::new(vec![
            (Axis::PP, pp),
            (Axis::DP, dp),
            (Axis::CP, cp),
            (Axis::TP, tp),
        ])
    }

    /// Pure data parallelism over `n` devices.
    pub fn data_parallel(n: u32) -> Result<Self, MeshError> {
        DeviceMesh::new(vec![(Axis::DP, n)])
    }

    /// The dims, outermost first.
    pub fn dims(&self) -> &[(Axis, u32)] {
        &self.dims
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> u32 {
        self.dims.iter().map(|(_, s)| *s).product()
    }

    /// Size of an axis (1 if the axis is absent).
    pub fn size(&self, axis: Axis) -> u32 {
        self.dims
            .iter()
            .find(|(a, _)| *a == axis)
            .map(|(_, s)| *s)
            .unwrap_or(1)
    }

    /// The coordinate of `rank` along `axis` (0 if absent).
    pub fn coord(&self, rank: Rank, axis: Axis) -> Result<u32, MeshError> {
        let world = self.world_size();
        if rank >= world {
            return Err(MeshError::RankOutOfBounds { rank, world });
        }
        let mut stride = world;
        for (a, s) in &self.dims {
            stride /= s;
            let c = (rank / stride) % s;
            if *a == axis {
                return Ok(c);
            }
        }
        Ok(0)
    }

    /// Full coordinates of a rank, in dim order.
    pub fn coords(&self, rank: Rank) -> Result<Vec<(Axis, u32)>, MeshError> {
        let world = self.world_size();
        if rank >= world {
            return Err(MeshError::RankOutOfBounds { rank, world });
        }
        let mut out = Vec::with_capacity(self.dims.len());
        let mut stride = world;
        for (a, s) in &self.dims {
            stride /= s;
            out.push((*a, (rank / stride) % s));
        }
        Ok(out)
    }

    /// The rank with the given coordinates (missing axes default to 0).
    pub fn rank_of(&self, coords: &[(Axis, u32)]) -> Result<Rank, MeshError> {
        let mut rank = 0u32;
        let mut stride = self.world_size();
        for (a, s) in &self.dims {
            stride /= s;
            let c = coords
                .iter()
                .find(|(ca, _)| ca == a)
                .map(|(_, c)| *c)
                .unwrap_or(0);
            if c >= *s {
                return Err(MeshError::RankOutOfBounds { rank: c, world: *s });
            }
            rank += c * stride;
        }
        Ok(rank)
    }

    /// The communication group of `rank` along `axis`: all ranks that share
    /// its coordinates on every *other* axis, sorted ascending.
    pub fn group_of(&self, rank: Rank, axis: Axis) -> Result<Vec<Rank>, MeshError> {
        let base = self.coords(rank)?;
        let n = self.size(axis);
        let mut out = Vec::with_capacity(n as usize);
        for c in 0..n {
            let mut coords = base.clone();
            if let Some(slot) = coords.iter_mut().find(|(a, _)| *a == axis) {
                slot.1 = c;
            }
            out.push(self.rank_of(&coords)?);
        }
        out.sort_unstable();
        Ok(out)
    }

    /// All communication groups along `axis`.
    pub fn groups(&self, axis: Axis) -> Vec<Vec<Rank>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for rank in 0..self.world_size() {
            let group = self
                .group_of(rank, axis)
                .expect("rank in range by construction");
            if seen.insert(group.clone()) {
                out.push(group);
            }
        }
        out
    }

    /// Ranks on pipeline stage 0 (the only stage that loads full payloads).
    pub fn first_stage_ranks(&self) -> Vec<Rank> {
        (0..self.world_size())
            .filter(|r| self.coord(*r, Axis::PP).expect("in range") == 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validations() {
        assert!(DeviceMesh::new(vec![(Axis::DP, 0)]).is_err());
        assert!(DeviceMesh::new(vec![(Axis::DP, 2), (Axis::DP, 2)]).is_err());
        let mesh = DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap();
        assert_eq!(mesh.world_size(), 288);
    }

    #[test]
    fn coords_roundtrip() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 3, 2, 4).unwrap();
        for rank in 0..mesh.world_size() {
            let coords = mesh.coords(rank).unwrap();
            assert_eq!(mesh.rank_of(&coords).unwrap(), rank);
        }
    }

    #[test]
    fn tp_is_innermost() {
        // Megatron convention: consecutive ranks differ in TP coordinate.
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 2, 2, 4).unwrap();
        assert_eq!(mesh.coord(0, Axis::TP).unwrap(), 0);
        assert_eq!(mesh.coord(1, Axis::TP).unwrap(), 1);
        assert_eq!(mesh.coord(3, Axis::TP).unwrap(), 3);
        assert_eq!(mesh.coord(4, Axis::TP).unwrap(), 0);
        assert_eq!(mesh.coord(4, Axis::CP).unwrap(), 1);
    }

    #[test]
    fn groups_partition_the_world() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 3, 2, 2).unwrap();
        for axis in Axis::CANONICAL {
            let groups = mesh.groups(axis);
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total as u32, mesh.world_size(), "axis {}", axis.label());
            // Each group has the axis size.
            for g in &groups {
                assert_eq!(g.len() as u32, mesh.size(axis));
            }
        }
    }

    #[test]
    fn group_of_contains_self() {
        let mesh = DeviceMesh::pp_dp_cp_tp(2, 2, 2, 2).unwrap();
        for rank in 0..mesh.world_size() {
            for axis in Axis::CANONICAL {
                let g = mesh.group_of(rank, axis).unwrap();
                assert!(g.contains(&rank));
            }
        }
    }

    #[test]
    fn absent_axis_defaults() {
        let mesh = DeviceMesh::data_parallel(8).unwrap();
        assert_eq!(mesh.size(Axis::TP), 1);
        assert_eq!(mesh.coord(5, Axis::PP).unwrap(), 0);
        assert_eq!(mesh.group_of(5, Axis::TP).unwrap(), vec![5]);
    }

    #[test]
    fn first_stage_ranks_have_pp0() {
        let mesh = DeviceMesh::pp_dp_cp_tp(4, 2, 1, 2).unwrap();
        let ranks = mesh.first_stage_ranks();
        assert_eq!(ranks.len() as u32, mesh.world_size() / 4);
        for r in ranks {
            assert_eq!(mesh.coord(r, Axis::PP).unwrap(), 0);
        }
    }

    #[test]
    fn out_of_bounds_rank_errors() {
        let mesh = DeviceMesh::data_parallel(4).unwrap();
        assert!(matches!(
            mesh.coord(4, Axis::DP),
            Err(MeshError::RankOutOfBounds { .. })
        ));
        assert!(mesh.rank_of(&[(Axis::DP, 9)]).is_err());
    }
}
