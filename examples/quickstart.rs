//! Quickstart: declare sources, build a topology, pull balanced batches.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This walks the full MegaScale-Data pull workflow on a laptop-scale
//! setup: a 5-source `coyo700m`-like catalog, an 8-GPU mesh (DP=4 × TP=2),
//! backbone load balancing, and three training steps of end-to-end data
//! delivery.

use megascale_data::balance::{BackboneShape, BalanceMethod};
use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::planner::{PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::mesh::{Axis, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

fn main() {
    // 1. Data sources: five image-text shards with coyo700m's skew.
    let mut rng = SimRng::seed(42);
    let catalog = coyo700m_like(&mut rng);
    println!("catalog: {} with {} sources", catalog.name, catalog.len());

    // 2. Trainer topology: 8 GPUs, DP=4, TP=2 (TP ranks share inputs).
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).expect("valid mesh");

    // 3. Orchestration strategy: balance microbatches by quadratic
    //    attention cost on a small backbone.
    let backbone = BackboneShape {
        layers: 12,
        hidden: 1024,
        mlp_ratio: 4.0,
        heads: 16,
        vocab: 32000,
        experts_per_token: 1,
    };
    let config = MsdConfig {
        catalog: catalog.clone(),
        mesh,
        strategy: Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone,
        },
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 4,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 64,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 32,
            total_mem_bytes: 64 << 30,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 0,
        buffer_capacity: 256,
        seed: 7,
    };

    // 4. Run: each step gathers metadata, plans, pops, and constructs.
    let mut msd = MegaScaleData::new(config);
    println!("loaders provisioned: {}", msd.loader_count());
    for step in 0..3 {
        let out = msd.step().expect("pipeline step");
        let costs = out.plan.bucket_costs();
        let imbalance = costs.iter().cloned().fold(f64::MIN, f64::max)
            / costs.iter().cloned().fold(f64::MAX, f64::min);
        println!(
            "step {step}: {} samples -> {} buckets x {} microbatches, \
             bucket imbalance {imbalance:.2}x, fetch {:.1} ms",
            out.plan.all_samples().len(),
            out.plan.buckets.len(),
            out.plan.microbatches(),
            out.fetch_ns as f64 / 1e6,
        );
        // What one trainer client sees:
        let delivery = &out.batches[0].deliveries[0];
        println!(
            "         rank {} receives {:?} ({} bytes)",
            delivery.rank, delivery.kind, delivery.bytes
        );
    }

    // 5. Memory accounting by category.
    let report = msd.memory_report();
    println!(
        "\nloader memory: {:.2} GiB total",
        report.total() as f64 / (1u64 << 30) as f64
    );
    for (cat, bytes) in report.categories() {
        println!("  {cat:>18}: {:.2} GiB", bytes as f64 / (1u64 << 30) as f64);
    }
}
