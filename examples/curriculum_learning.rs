//! Curriculum learning: dynamic data mixing with mixture-driven scaling.
//!
//! ```text
//! cargo run --example curriculum_learning
//! ```
//!
//! The mixture starts dominated by "easy" short-text sources and ramps
//! toward "hard" long-context multimodal sources over 60 steps. The
//! Planner's AutoScaler watches the moving-average weights and grows the
//! hot sources' loader actors while reclaiming idle ones (Sec 5.2).

use megascale_data::core::autoscale::{
    partition_sources, AutoScaler, ClusterResources, PartitionOpts, ScaleAction,
};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::data::catalog::navit_sized;
use megascale_data::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed(11);
    let catalog = navit_sized(&mut rng, 12);
    let n = catalog.len();

    // Curriculum: uniform over the first half ("easy"), ramping to the
    // second half ("hard") by step 60.
    let mut from = vec![0.0; n];
    let mut to = vec![0.0; n];
    for i in 0..n {
        if i < n / 2 {
            from[i] = 1.0;
            to[i] = 0.2;
        } else {
            to[i] = 1.0;
        }
    }
    let schedule = MixSchedule::Warmup {
        from,
        to,
        steps: 60,
    };

    // Offline auto-partitioning provisions the starting configuration.
    let resources = ClusterResources {
        total_cores: 128,
        total_mem_bytes: 2 << 40,
    };
    let setups = partition_sources(&catalog, resources, &PartitionOpts::default(), &mut rng);
    println!("initial provisioning:");
    for s in &setups {
        println!(
            "  {}: {} actor(s) x {} worker(s)  (~{:.1} GiB/actor)",
            catalog.get(s.source).expect("known source").name,
            s.actors,
            s.workers_per_actor,
            s.mem_per_actor as f64 / (1u64 << 30) as f64
        );
    }

    // Online: the AutoScaler follows the curriculum.
    let mut scaler = AutoScaler::new(setups);
    println!("\ncurriculum progression:");
    for step in 0..90u64 {
        let weights = schedule.weights(step);
        let actions = scaler.observe(&weights);
        for action in actions {
            match action {
                ScaleAction::ScaleUp(src) => println!(
                    "  step {step:>3}: scale UP   {}",
                    catalog.get(src).expect("known").name
                ),
                ScaleAction::ScaleDown(src) => println!(
                    "  step {step:>3}: scale DOWN {}",
                    catalog.get(src).expect("known").name
                ),
            }
        }
    }
    println!(
        "\nrescale events: {}, loader cores in use: {}, memory: {:.1} GiB",
        scaler.rescale_events,
        scaler.cores_in_use(),
        scaler.mem_in_use() as f64 / (1u64 << 30) as f64
    );
}
