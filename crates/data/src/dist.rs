//! Length distributions for synthetic token/patch counts.
//!
//! Fig 2 of the paper shows heavily skewed length distributions: in
//! `coyo700m`, 98.23% of text sequences are ≤ 64 tokens while the top 1.62%
//! carry 9.3% of all tokens. [`LengthDist`] expresses such shapes as
//! composable samplers.

use msd_sim::SimRng;

/// A distribution over positive lengths.
#[derive(Debug, Clone)]
pub enum LengthDist {
    /// Always the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Log-normal with the underlying normal's mean and std.
    LogNormal {
        /// Mean of `ln(X)`.
        mu: f64,
        /// Std of `ln(X)`.
        sigma: f64,
    },
    /// Pareto (power-law tail) with scale `x_min` and shape `alpha`.
    Pareto {
        /// Minimum value (scale).
        x_min: f64,
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
    },
    /// Zipf over ranks `1..=n` with exponent `s`, scaled by `unit`.
    Zipf {
        /// Number of ranks.
        n: u32,
        /// Exponent.
        s: f64,
        /// Multiplier applied to the sampled rank.
        unit: f64,
    },
    /// Weighted mixture of sub-distributions.
    Mixture(Vec<(f64, LengthDist)>),
    /// Clamp an inner distribution into `[lo, hi]`.
    Clamped {
        /// Inner distribution.
        inner: Box<LengthDist>,
        /// Inclusive lower clamp.
        lo: f64,
        /// Inclusive upper clamp.
        hi: f64,
    },
}

impl LengthDist {
    /// Draws one value.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            LengthDist::Constant(v) => *v,
            LengthDist::Uniform { lo, hi } => rng.f64_range(*lo, *hi),
            LengthDist::LogNormal { mu, sigma } => rng.lognormal(*mu, *sigma),
            LengthDist::Pareto { x_min, alpha } => {
                let u = (1.0 - rng.f64()).max(1e-12);
                x_min / u.powf(1.0 / alpha)
            }
            LengthDist::Zipf { n, s, unit } => {
                // Inverse-CDF sampling over the (small) rank table.
                let norm: f64 = (1..=*n).map(|k| 1.0 / (k as f64).powf(*s)).sum();
                let mut target = rng.f64() * norm;
                for k in 1..=*n {
                    let p = 1.0 / (k as f64).powf(*s);
                    if target < p {
                        return k as f64 * unit;
                    }
                    target -= p;
                }
                f64::from(*n) * unit
            }
            LengthDist::Mixture(parts) => {
                let weights: Vec<f64> = parts.iter().map(|(w, _)| *w).collect();
                match rng.weighted_index(&weights) {
                    Some(i) => parts[i].1.sample(rng),
                    None => 0.0,
                }
            }
            LengthDist::Clamped { inner, lo, hi } => inner.sample(rng).clamp(*lo, *hi),
        }
    }

    /// Draws one value rounded to a positive integer (minimum 1).
    pub fn sample_len(&self, rng: &mut SimRng) -> u32 {
        self.sample(rng).round().max(1.0).min(u32::MAX as f64) as u32
    }

    /// Convenience: log-normal parameterized by its *median* and the
    /// multiplicative spread `sigma` (std of the log).
    pub fn lognormal_median(median: f64, sigma: f64) -> LengthDist {
        LengthDist::LogNormal {
            mu: median.max(1e-9).ln(),
            sigma,
        }
    }

    /// Clamps this distribution into `[lo, hi]`.
    pub fn clamped(self, lo: f64, hi: f64) -> LengthDist {
        LengthDist::Clamped {
            inner: Box::new(self),
            lo,
            hi,
        }
    }

    /// Empirical mean over `n` draws (test/report helper).
    pub fn empirical_mean(&self, rng: &mut SimRng, n: usize) -> f64 {
        (0..n).map(|_| self.sample(rng)).sum::<f64>() / n.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed(0xDA7A)
    }

    #[test]
    fn constant_and_uniform() {
        let mut r = rng();
        assert_eq!(LengthDist::Constant(5.0).sample(&mut r), 5.0);
        for _ in 0..1000 {
            let v = LengthDist::Uniform { lo: 2.0, hi: 4.0 }.sample(&mut r);
            assert!((2.0..4.0).contains(&v));
        }
    }

    #[test]
    fn lognormal_median_matches() {
        let mut r = rng();
        let d = LengthDist::lognormal_median(100.0, 0.8);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median / 100.0 - 1.0).abs() < 0.05, "median = {median}");
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let mut r = rng();
        let d = LengthDist::Pareto {
            x_min: 10.0,
            alpha: 1.2,
        };
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|s| *s >= 10.0));
        // Top 1% should carry a disproportionate share of the mass.
        let mut sorted = samples;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total: f64 = sorted.iter().sum();
        let top: f64 = sorted[n * 99 / 100..].iter().sum();
        assert!(top / total > 0.15, "top share = {}", top / total);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut r = rng();
        let d = LengthDist::Zipf {
            n: 10,
            s: 1.5,
            unit: 1.0,
        };
        let mut counts = [0u32; 11];
        for _ in 0..20_000 {
            counts[d.sample(&mut r) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
    }

    #[test]
    fn mixture_respects_weights() {
        let mut r = rng();
        let d = LengthDist::Mixture(vec![
            (0.9, LengthDist::Constant(1.0)),
            (0.1, LengthDist::Constant(100.0)),
        ]);
        let n = 50_000;
        let big = (0..n).filter(|_| d.sample(&mut r) > 50.0).count();
        let share = big as f64 / n as f64;
        assert!((share - 0.1).abs() < 0.01, "share = {share}");
    }

    #[test]
    fn clamped_respects_bounds() {
        let mut r = rng();
        let d = LengthDist::lognormal_median(1000.0, 2.0).clamped(16.0, 4096.0);
        for _ in 0..5000 {
            let v = d.sample(&mut r);
            assert!((16.0..=4096.0).contains(&v));
        }
    }

    #[test]
    fn sample_len_is_positive_integer() {
        let mut r = rng();
        let d = LengthDist::Constant(0.2);
        assert_eq!(d.sample_len(&mut r), 1);
        let d = LengthDist::Constant(7.6);
        assert_eq!(d.sample_len(&mut r), 8);
    }

    #[test]
    fn empty_mixture_degenerates_to_zero() {
        let mut r = rng();
        assert_eq!(LengthDist::Mixture(vec![]).sample(&mut r), 0.0);
    }
}
