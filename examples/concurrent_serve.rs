//! Concurrent serving: the fully actorized runtime feeding many clients.
//!
//! ```text
//! cargo run --example concurrent_serve
//! ```
//!
//! Spawns the supervised actor topology (Source Loaders, Planner, Data
//! Constructors), starts a [`ThreadedPipeline::serve`] session with
//! pipelined refill-ahead, and has four trainer clients pull their batch
//! streams concurrently — then kills a loader mid-serve to show the
//! supervised restart keeping every client's stream intact.

use std::time::Duration;

use megascale_data::balance::{BackboneShape, BalanceMethod};
use megascale_data::core::constructor::DataConstructor;
use megascale_data::core::loader::LoaderConfig;
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::runtime::{ServeOptions, ThreadedPipeline};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::SourceSpec;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

fn main() {
    // Sources, topology, strategy — same shape as the quickstart.
    let mut rng = SimRng::seed(42);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).expect("valid mesh");
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 32,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: BackboneShape {
                layers: 4,
                hidden: 256,
                mlp_ratio: 4.0,
                heads: 4,
                vocab: 8000,
                experts_per_token: 1,
            },
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    );
    let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), LoaderConfig::solo(i as u32)))
        .collect();
    let constructors: Vec<DataConstructor> = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();

    // The actor topology: loaders + planner + constructors, supervised.
    let mut pipeline = ThreadedPipeline::new(sources, planner, constructors, 99);
    println!(
        "topology: {} loader actors, 1 planner actor, {} constructor actors",
        pipeline.loaders().len(),
        pipeline.constructor_actors().len()
    );

    // Serve 8 steps to 4 concurrent clients with refill-ahead prefetch.
    let mut session = pipeline.serve(ServeOptions {
        clients: 4,
        steps: 8,
        refill_target: 64,
        queue_depth: 3,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut client| {
            std::thread::spawn(move || {
                let mut pulled = 0u64;
                let mut samples = 0usize;
                while let Some((_, batch)) = client.next() {
                    pulled += 1;
                    samples += batch
                        .microbatches
                        .iter()
                        .flat_map(|m| &m.sequences)
                        .map(|s| s.segments.len())
                        .sum::<usize>();
                }
                (client.id, pulled, samples)
            })
        })
        .collect();

    // Mid-serve fault: kill loader 0. Supervision restores it from its
    // GCS checkpoint and replays the plan log; clients never notice.
    std::thread::sleep(Duration::from_millis(20));
    pipeline.loaders()[0].inject_crash("demo mid-serve failure");
    println!("injected: loader 0 crash mid-serve");

    for h in handles {
        let (id, pulled, samples) = h.join().expect("client thread");
        println!("client {id}: pulled {pulled} batches ({samples} packed samples)");
    }
    let steps = session.join();
    println!("driver pumped {steps} steps; faults logged: {}", {
        let faults = pipeline.gcs.fault_log("");
        faults.len()
    });
    pipeline.shutdown();
    println!("done: every client got a gap-free stream through the crash");
}
