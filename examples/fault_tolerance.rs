//! Fault tolerance: shadow-loader failover with differential checkpoints.
//!
//! ```text
//! cargo run --example fault_tolerance
//! ```
//!
//! Two demonstrations:
//!
//! 1. **Deterministic failover** — a Source Loader is killed mid-run; its
//!    shadow restores the last (low-frequency) snapshot and replays the
//!    Planner's plan history to reach exactly the pre-failure stream
//!    position.
//! 2. **Threaded supervision** — the actor-deployed pipeline detects a
//!    crashed loader via RPC failure, the supervisor restarts it from its
//!    GCS checkpoint, and the run continues.

use std::time::Duration;

use megascale_data::actor::RestartPolicy;
use megascale_data::balance::BalanceMethod;
use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::fault::{ettr, FailureSignal};
use megascale_data::core::planner::{PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::mesh::{Axis, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed(3);
    let catalog = coyo700m_like(&mut rng);
    let mut msd = MegaScaleData::new(MsdConfig {
        catalog: catalog.clone(),
        mesh: DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).expect("mesh"),
        strategy: Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: megascale_data::balance::BackboneShape {
                layers: 4,
                hidden: 512,
                mlp_ratio: 4.0,
                heads: 8,
                vocab: 32000,
                experts_per_token: 1,
            },
        },
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 32,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 32,
            total_mem_bytes: 512 << 30,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 1,
        buffer_capacity: 128,
        seed: 9,
    });

    println!("== 1. shadow-loader failover ==");
    for step in 0..4 {
        let out = msd.step().expect("step");
        println!(
            "step {step}: delivered {} samples",
            out.plan.all_samples().len()
        );
    }
    // Kill loader 0 (simulating an RPC timeout detection) and promote its
    // shadow using the Planner's replay log.
    let history: Vec<_> = msd.planner().history().to_vec();
    let refs: Vec<&_> = history.iter().collect();
    msd.loader(0).kill_primary();
    println!("loader 0 killed; promoting shadow ...");
    let report = msd
        .loader(0)
        .promote_shadow(FailureSignal::RpcTimeout, &refs);
    println!(
        "  restored snapshot v{} and replayed {} plans ({} samples re-materialized)",
        report.restored_version, report.replayed_plans, report.replayed_samples
    );
    let out = msd.step().expect("post-failover step");
    println!(
        "post-failover step delivers {} samples\n",
        out.plan.all_samples().len()
    );

    println!("== 2. supervised actor restart ==");
    threaded_demo();

    println!("\n== ETTR impact (paper Fig 16e: 1.08x during failures) ==");
    let horizon = 4.0 * 3600.0;
    println!(
        "  4h with 6 failures: cold restart ETTR {:.3}, shadow ETTR {:.3} ({:.2}x)",
        ettr(horizon, 6, 300.0),
        ettr(horizon, 6, 15.0),
        ettr(horizon, 6, 15.0) / ettr(horizon, 6, 300.0)
    );
}

fn threaded_demo() {
    use megascale_data::actor::actor::ReplyTo;
    use megascale_data::actor::{Actor, ActorSystem, Ctx};

    // A miniature "loader" actor that counts produced batches, with its
    // durable cursor mirrored in the GCS pattern (here: factory closure).
    struct MiniLoader {
        produced: u64,
    }
    enum Msg {
        Produce(ReplyTo<u64>),
    }
    impl Actor for MiniLoader {
        type Msg = Msg;
        fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
            match msg {
                Msg::Produce(reply) => {
                    self.produced += 1;
                    reply.send(self.produced);
                }
            }
        }
    }

    let system = ActorSystem::new("demo");
    let loader = system.spawn_supervised(
        "loader/0",
        RestartPolicy::Restart { max_restarts: 2 },
        || MiniLoader { produced: 0 },
    );
    for _ in 0..3 {
        let n = loader
            .ask(Msg::Produce, Duration::from_secs(2))
            .expect("alive");
        println!("  produced batch #{n}");
    }
    println!("  injecting crash ...");
    loader.inject_crash("demo fault");
    std::thread::sleep(Duration::from_millis(100));
    // The supervisor restarted the actor; it keeps serving.
    let n = loader
        .ask(Msg::Produce, Duration::from_secs(2))
        .expect("restarted actor answers");
    println!("  after restart: produced batch #{n} (state reset; GCS restores durable state)");
    loader.stop();
    system.shutdown();
}
