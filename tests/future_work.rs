//! Integration tests for the paper's §9 future-work features, spanning
//! storage → planner → constructor:
//!
//! - Ahead-of-Fetch: plan from storage metadata, fetch only planned rows,
//!   and construct deliverable batches from the fetched samples.
//! - Replay Mode: record plans offline against one loader fleet, replay
//!   them against an identically seeded fleet, and keep popping the right
//!   samples.
//! - Strategy Optimizer: optimized programs drive the same constructor
//!   output as raw ones.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use megascale_data::balance::{BackboneShape, BalanceMethod};
use megascale_data::core::aheadfetch::{AheadOfFetchSession, MetaIndex, PositionalFetcher};
use megascale_data::core::buffer::BufferInfo;
use megascale_data::core::constructor::DataConstructor;
use megascale_data::core::dgraph::{BalanceOpts, DGraph, MetaView};
use megascale_data::core::loader::{LoaderConfig, SourceLoader};
use megascale_data::core::optimizer::{CostExpr, OptimizeOpts, StrategyOp, StrategyProgram};
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::replay::{PlanStore, ReplayOutcome, ReplayPlanner};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::gen::{materialize_source, materialize_source_with_cost};
use megascale_data::data::{SampleMeta, SourceSpec};
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;
use megascale_data::storage::MemStore;

fn backbone() -> BackboneShape {
    BackboneShape {
        layers: 4,
        hidden: 256,
        mlp_ratio: 4.0,
        heads: 4,
        vocab: 1000,
        experts_per_token: 1,
    }
}

fn specs(n: usize) -> Vec<SourceSpec> {
    let mut rng = SimRng::seed(77);
    coyo700m_like(&mut rng).sources()[..n].to_vec()
}

fn planner_for(
    specs: &[SourceSpec],
    mesh: &DeviceMesh,
    samples_per_step: usize,
    seed: u64,
) -> Planner {
    Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step,
            schedule: MixSchedule::uniform(specs.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: backbone(),
        },
        ClientPlaceTree::from_device_mesh(mesh),
        specs.iter().map(|s| s.id).collect(),
        seed,
    )
}

/// Ahead-of-Fetch end to end: index → plan → positional fetch → construct.
/// Every delivered microbatch contains exactly the planned samples, and no
/// payload outside the planned row groups was transferred.
#[test]
fn ahead_of_fetch_to_constructed_batches() {
    let store = Arc::new(MemStore::new());
    let specs = specs(3);
    let mut rng = SimRng::seed(3);
    let mut indexes = Vec::new();
    let mut paths = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let manifest = materialize_source_with_cost(
            store.as_ref(),
            "aof",
            spec,
            300,
            &mut rng,
            |m: &SampleMeta| m.total_tokens() as f64,
        )
        .expect("materialize");
        paths.push(manifest.path.clone());
        indexes.push(
            MetaIndex::build(&store, &manifest.path, spec.id, spec.modality, i as u32)
                .expect("index"),
        );
    }

    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 2, 2).expect("mesh");
    let planner = planner_for(&specs, &mesh, 24, 9);
    let mut session = AheadOfFetchSession::new(indexes, planner);
    let (plan, _, savings) = session.step(128).expect("plan");
    assert_eq!(plan.all_samples().len(), 24);
    assert!(savings.window_payload_bytes >= savings.planned_payload_bytes);

    // Fetch exactly the planned rows, per source.
    let mut samples: HashMap<u64, megascale_data::data::Sample> = HashMap::new();
    for (slot, path) in paths.iter().enumerate() {
        let ix = &session.indexes()[slot];
        let mine: Vec<u64> = plan
            .all_samples()
            .into_iter()
            .filter(|id| ix.ordinal_of(*id).is_some())
            .collect();
        let mut fetcher = PositionalFetcher::new(store.clone(), path.clone());
        for s in fetcher.fetch(ix, &mine).expect("fetch") {
            samples.insert(s.meta.sample_id, s);
        }
    }
    assert_eq!(samples.len(), 24, "every planned sample fetched");

    // Construct: each bucket's batch covers its planned bins exactly.
    let constructor = DataConstructor::new(mesh, 4096);
    for bucket in &plan.buckets {
        let batch = constructor.construct(bucket, &samples, &plan.broadcast_axes);
        let planned: HashSet<u64> = bucket
            .bins
            .iter()
            .flat_map(|b| b.samples.iter().copied())
            .collect();
        let packed: HashSet<u64> = batch
            .microbatches
            .iter()
            .flat_map(|mb| {
                mb.sequences
                    .iter()
                    .flat_map(|s| s.segments.iter().map(|seg| seg.sample_id))
            })
            .collect();
        assert_eq!(planned, packed, "bucket {}", bucket.bucket);
    }
}

/// Replay Mode against real loaders: record plans from fleet A, replay them
/// driving identically seeded fleet B; every directive pops successfully.
#[test]
fn replay_drives_identically_seeded_loader_fleet() {
    let specs = specs(3);
    let fleet = |base_seed: u64| -> Vec<SourceLoader> {
        specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                SourceLoader::synthetic(spec.clone(), LoaderConfig::solo(i as u32), base_seed)
            })
            .collect()
    };
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).expect("mesh");
    let steps = 5u64;
    let per_step = 20usize;

    // Offline: drive fleet A through the full loop, recording plans.
    let mut store = PlanStore::new();
    {
        let mut planner = planner_for(&specs, &mesh, per_step, 31);
        let mut loaders = fleet(1000);
        for _ in 0..steps {
            for l in &mut loaders {
                l.refill(64).expect("refill");
            }
            let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
            let (plan, _) = planner.generate(&info).expect("record");
            for (loader_id, ids) in &plan.directives {
                let popped = loaders[*loader_id as usize].pop(ids);
                assert_eq!(popped.len(), ids.len());
            }
            store.insert(plan);
        }
    }

    // Checkpoint round trip, as a deployment would.
    let store = PlanStore::from_json(&store.to_json()).expect("restore");

    // Online: fleet B (same seeds) served by the replay planner.
    let mut rp = ReplayPlanner::new(store, planner_for(&specs, &mesh, per_step, 31));
    let mut loaders = fleet(1000);
    let mut delivered = 0usize;
    for _ in 0..steps {
        for l in &mut loaders {
            l.refill(64).expect("refill");
        }
        let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
        let (plan, phases, outcome) = rp.next(&info).expect("replay");
        assert_eq!(outcome, ReplayOutcome::Replayed);
        assert_eq!(phases.gather_ns, 0);
        for (loader_id, ids) in &plan.directives {
            let popped = loaders[*loader_id as usize].pop(ids);
            assert_eq!(popped.len(), ids.len(), "replayed directive must pop");
            delivered += popped.len();
        }
    }
    assert_eq!(delivered, steps as usize * per_step);
    assert_eq!(rp.replayed, steps);
    assert_eq!(rp.fallbacks, 0);
}

/// A diverged fleet (different seed) forces fallback — and the fallback
/// plans still pop cleanly from the divergent buffers.
#[test]
fn replay_falls_back_on_diverged_fleet_and_recovers() {
    let specs = specs(2);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 1).expect("mesh");

    let mut store = PlanStore::new();
    {
        let mut planner = planner_for(&specs, &mesh, 8, 5);
        let mut loaders: Vec<SourceLoader> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| SourceLoader::synthetic(s.clone(), LoaderConfig::solo(i as u32), 1))
            .collect();
        for _ in 0..3 {
            for l in &mut loaders {
                l.refill(32).expect("refill");
            }
            let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
            let (plan, _) = planner.generate(&info).expect("record");
            for (lid, ids) in &plan.directives {
                loaders[*lid as usize].pop(ids);
            }
            store.insert(plan);
        }
    }

    // Online fleet seeded differently: ids match (deterministic ordinals)
    // but metadata differs; sample IDS are identical (source/shard/cursor),
    // so replay validation passes on ids — directives still pop. This
    // mirrors production: replay requires id-stable streams, not
    // metadata-stable ones.
    let mut rp = ReplayPlanner::new(store, planner_for(&specs, &mesh, 8, 5));
    let mut loaders: Vec<SourceLoader> = specs
        .iter()
        .enumerate()
        .map(|(i, s)| SourceLoader::synthetic(s.clone(), LoaderConfig::solo(i as u32), 2))
        .collect();
    for l in &mut loaders {
        l.refill(4).expect("refill"); // Too few: directives reference deeper ids.
    }
    let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
    let (plan, _, outcome) = rp.next(&info).expect("step");
    // With only 4 buffered samples per loader, the 8-sample recorded plan
    // references missing ids → StaleSamples fallback; the live plan then
    // schedules only what exists.
    assert!(matches!(
        outcome,
        ReplayOutcome::Fallback(megascale_data::core::replay::FallbackReason::StaleSamples { .. })
    ));
    for (lid, ids) in &plan.directives {
        assert_eq!(loaders[*lid as usize].pop(ids).len(), ids.len());
    }
}

/// Optimized strategy programs drive byte-identical constructor output.
#[test]
fn optimized_program_constructs_identical_batches() {
    let store = Arc::new(MemStore::new());
    let specs = specs(2);
    let mut rng = SimRng::seed(41);
    let mut loaders = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let manifest =
            materialize_source(store.as_ref(), "opt", spec, 200, &mut rng).expect("materialize");
        let mut l = SourceLoader::stored(
            spec.clone(),
            LoaderConfig::solo(i as u32),
            store.clone(),
            manifest.path,
            3,
        );
        l.refill(80).expect("refill");
        loaders.push(l);
    }
    let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 2, 1).expect("mesh");
    let tree = ClientPlaceTree::from_device_mesh(&mesh);

    let program = StrategyProgram::new(vec![
        StrategyOp::Mix {
            weights: vec![1.0, 1.0],
            take: 200, // Exploratory; dead.
        },
        StrategyOp::Mix {
            weights: vec![1.0, 2.0],
            take: 48,
        },
        StrategyOp::Distribute {
            axis: DistributeAxis::DP,
            group_size: None,
        },
        StrategyOp::Cost(CostExpr::Tokens), // Debug probe; dead.
        StrategyOp::Cost(CostExpr::Backbone(backbone())),
        StrategyOp::Balance {
            method: BalanceMethod::KarmarkarKarp,
            opts: BalanceOpts::full(2),
        },
        StrategyOp::BroadcastAt(Axis::TP),
    ]);
    let (optimized, report) = program.optimize(OptimizeOpts::default());
    assert!(report.total_rewrites() >= 2);

    let plan_of = |p: &StrategyProgram| {
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree.clone());
        let mut rng = SimRng::seed(17);
        p.run(&mut g, &mut rng).expect("program");
        g.plan(0).expect("plan")
    };
    let raw_plan = plan_of(&program);
    let opt_plan = plan_of(&optimized);
    assert_eq!(raw_plan, opt_plan);

    // Pop + construct under both plans (identical, so pop once).
    let mut samples = HashMap::new();
    for (lid, ids) in &raw_plan.directives {
        for s in loaders[*lid as usize].pop(ids) {
            samples.insert(s.meta.sample_id, s);
        }
    }
    let constructor = DataConstructor::new(mesh, 2048);
    for bucket in &raw_plan.buckets {
        let a = constructor.construct(bucket, &samples, &raw_plan.broadcast_axes);
        let b = constructor.construct(
            &opt_plan.buckets[bucket.bucket as usize],
            &samples,
            &opt_plan.broadcast_axes,
        );
        assert_eq!(a, b, "constructed batches must match");
    }
}
