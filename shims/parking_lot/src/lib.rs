//! Shim for `parking_lot`: `Mutex` and `RwLock` whose lock methods return
//! guards directly (no `Result`), implemented over `std::sync` with
//! poison recovery.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the rwlock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
