//! Integration tests for the elastic loader control plane.
//!
//! The controller must re-provision the loader fleet *while the runtime
//! serves*: a drifting source mixture triggers live supervised scale-ups
//! and drain/hand-off retirements, with every client still observing a
//! gap-free, duplicate-free batch stream; every executed decision lands
//! as an `MSDB` GCS checkpoint from which a rebuilt deployment resumes
//! the exact topology. A property test pins elastic resharding's
//! minimal-disruption guarantee against the naive full-reshuffle bound.

use std::collections::HashSet;
use std::time::Duration;

use proptest::prelude::*;

use megascale_data::actor::Gcs;
use megascale_data::balance::BalanceMethod;
use megascale_data::core::constructor::{ConstructedBatch, DataConstructor};
use megascale_data::core::loader::LoaderConfig;
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::reshard::{naive_full_reshuffle, reshard};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::controller::{ControllerConfig, ControllerMsg};
use megascale_data::core::system::runtime::{LoaderMsg, ServeOptions, ThreadedPipeline};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::{SourceId, SourceSpec};
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

/// Per-sample modeled fetch latency: slows steps to a few milliseconds so
/// the control plane reliably acts while traffic is in flight.
const FETCH_LATENCY_NS: u64 = 400_000;

fn small_backbone() -> megascale_data::balance::BackboneShape {
    megascale_data::balance::BackboneShape {
        layers: 2,
        hidden: 128,
        mlp_ratio: 4.0,
        heads: 2,
        vocab: 1000,
        experts_per_token: 1,
    }
}

/// A fast-reacting control plane, so tests need few intervals.
fn controller_config() -> ControllerConfig {
    ControllerConfig {
        alpha: 0.6,
        patience: 2,
        max_loaders_per_source: 3,
        ..ControllerConfig::default()
    }
}

/// Builds a 5-source pipeline whose mixture follows `schedule`, against
/// an explicit control store (so tests can rebuild from its checkpoints).
fn pipeline(
    schedule: MixSchedule,
    seed: u64,
    gcs: Gcs,
    ctrl: ControllerConfig,
) -> ThreadedPipeline {
    let mut rng = SimRng::seed(2);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule,
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: small_backbone(),
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        3,
    );
    let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, FETCH_LATENCY_NS),
            )
        })
        .collect();
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();
    ThreadedPipeline::new_with(sources, planner, constructors, seed, gcs, ctrl)
}

/// A mixture that drifts mid-run: source 0 is scorching for the first 10
/// plan steps (forcing a scale-up), then goes nearly idle (forcing the
/// extra loaders' retirement).
fn drifting_schedule() -> MixSchedule {
    MixSchedule::Staged(vec![
        (0, vec![0.8, 0.05, 0.05, 0.05, 0.05]),
        (10, vec![0.04, 0.24, 0.24, 0.24, 0.24]),
    ])
}

fn sample_ids(batch: &ConstructedBatch) -> Vec<u64> {
    batch
        .microbatches
        .iter()
        .flat_map(|m| &m.sequences)
        .flat_map(|s| &s.segments)
        .map(|seg| seg.sample_id)
        .collect()
}

#[test]
fn drifting_mixture_scales_up_then_retires_without_gaps_or_duplicates() {
    let clients = 4u32;
    let steps = 26u64;
    let mut p = pipeline(drifting_schedule(), 21, Gcs::new(), controller_config());
    let mut session = p.serve(ServeOptions {
        clients,
        steps,
        refill_target: 32,
        queue_depth: 3,
        control_interval: 1,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut stream = Vec::new();
                while let Some((step, batch)) = c.next() {
                    stream.push((step, batch));
                }
                (c.id, stream)
            })
        })
        .collect();
    let streams: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(session.join(), steps, "driver fell short of its steps");

    // Stream soundness under live topology changes: every client saw
    // every step in order, and no sample was ever delivered twice.
    for (id, stream) in &streams {
        assert_eq!(stream.len(), steps as usize, "client {id} missed steps");
        let mut seen: HashSet<u64> = HashSet::new();
        for (i, (step, batch)) in stream.iter().enumerate() {
            assert_eq!(*step, i as u64, "client {id} stream has a gap");
            for sid in sample_ids(batch) {
                assert!(seen.insert(sid), "client {id} got sample {sid} twice");
            }
        }
    }
    // Clients sharing a constructor observe identical batches.
    for (id_a, stream_a) in &streams {
        for (id_b, stream_b) in &streams {
            if id_a < id_b && id_a % 2 == id_b % 2 {
                assert_eq!(stream_a, stream_b, "clients {id_a}/{id_b} diverged");
            }
        }
    }

    // Any sample delivered by a live-spawned loader (shard >= 1; the
    // initial fleet is all shard 0) must come from the disjoint ordinal
    // band the controller seeds, so a scaled-up source never re-serves
    // rows its original loader also produces. Id layout:
    // source(16) | shard(8) | ordinal(40).
    for (_, stream) in &streams {
        for (_, batch) in stream {
            for sid in sample_ids(batch) {
                let shard = (sid >> 40) & 0xFF;
                if shard >= 1 {
                    assert!(
                        sid & ((1u64 << 40) - 1) >= (shard << 32),
                        "spawned-loader sample {sid:#x} outside its ordinal band"
                    );
                }
            }
        }
    }

    // The control plane actually acted, live, and checkpointed it.
    let status = p.controller_status().expect("controller reachable");
    assert!(status.ticks > 0, "controller never ticked");
    assert!(
        status.scale_ups >= 1,
        "hot mixture never scaled up: {status:?}"
    );
    assert!(
        status.scale_downs >= 1,
        "cold mixture never retired a loader: {status:?}"
    );
    assert_eq!(
        status.checkpointed_events,
        status.scale_ups + status.scale_downs + status.rebalances,
        "scaling events missing from the GCS checkpoint sequence"
    );
    assert!(
        p.gcs.get_state("controller").is_some(),
        "controller checkpoint absent from GCS"
    );
    p.shutdown();
}

#[test]
fn controller_checkpoint_restores_the_exact_topology() {
    let gcs = Gcs::new();
    // Statically scorching source 0: the controller scales it up and
    // stays there (no later retirement to race with).
    let schedule = MixSchedule::Static(vec![0.8, 0.05, 0.05, 0.05, 0.05]);
    let mut p = pipeline(schedule.clone(), 33, gcs.clone(), controller_config());
    let mut scaled = false;
    for _ in 0..12 {
        p.step(32).expect("step");
        p.control_tick();
        let status = p.controller_status().expect("controller reachable");
        if status.scale_ups >= 1 {
            scaled = true;
            break;
        }
    }
    assert!(scaled, "static hot mixture never triggered a scale-up");
    let topology: Vec<(u32, SourceId)> = p
        .loader_identities()
        .iter()
        .map(|id| (id.loader_id, id.source_id))
        .collect();
    assert!(topology.len() > 5, "scale-up did not grow the fleet");
    let events = p.controller_status().unwrap().checkpointed_events;

    // The spawned loader produces from a disjoint ordinal band (cursor
    // pre-seeded at shard << 32), so its rows can never collide with the
    // original shard-0 loader's stream content.
    let spawned_idx = p
        .loader_identities()
        .iter()
        .position(|id| id.loader_id >= 5)
        .expect("spawned loader registered");
    let spawned = &p.loaders()[spawned_idx];
    spawned.tell(LoaderMsg::Refill { target: 8 });
    let summary = spawned
        .ask(LoaderMsg::Summary, Duration::from_secs(5))
        .expect("spawned loader reachable");
    assert!(!summary.is_empty(), "spawned loader refilled nothing");
    for m in &summary.samples {
        let shard = (m.sample_id >> 40) & 0xFF;
        assert!(shard >= 1, "spawned loader reused shard 0");
        assert!(
            m.sample_id & ((1u64 << 40) - 1) >= (shard << 32),
            "spawned-loader sample {:#x} outside its ordinal band",
            m.sample_id
        );
    }
    p.shutdown();

    // A rebuilt deployment against the same control store must respawn
    // the post-scaling topology, not the 5-loader template, and its
    // controller must resume the event sequence rather than rewind it.
    let p2 = pipeline(schedule, 33, gcs, controller_config());
    let topology2: Vec<(u32, SourceId)> = p2
        .loader_identities()
        .iter()
        .map(|id| (id.loader_id, id.source_id))
        .collect();
    assert_eq!(topology, topology2, "restart lost the scaled topology");
    let status2 = p2.controller_status().expect("controller reachable");
    assert_eq!(status2.ticks, 0, "tick counter is not durable state");
    assert!(
        status2.checkpointed_events >= events,
        "event sequence rewound across restart"
    );
    p2.shutdown();
}

#[test]
fn skewed_buffers_rebalance_through_drain_and_handoff() {
    // Two loaders for source 0 (shards 0/1), one for each other source;
    // a uniform mixture keeps the autoscaler quiet so the occupancy
    // rebalancer is the only control-plane path that can fire.
    let mut rng = SimRng::seed(2);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: small_backbone(),
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        3,
    );
    let mut sources: Vec<(SourceSpec, LoaderConfig)> = Vec::new();
    for (i, s) in catalog.sources().iter().enumerate() {
        if i == 0 {
            for shard in 0..2u32 {
                sources.push((
                    s.clone(),
                    LoaderConfig {
                        shard,
                        shards: 2,
                        ..LoaderConfig::solo(shard)
                    },
                ));
            }
        } else {
            sources.push((s.clone(), LoaderConfig::solo(i as u32 + 1)));
        }
    }
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();
    let ctrl = ControllerConfig {
        rebalance_factor: 2.0,
        min_rebalance_delta: 16,
        ..ControllerConfig::default()
    };
    let p = ThreadedPipeline::new_with(sources, planner, constructors, 44, Gcs::new(), ctrl);

    // Skew by hand: shard 0 of source 0 hoards a fat buffer while its
    // peer stays empty.
    p.loaders()[0].tell(LoaderMsg::Refill { target: 64 });
    let before = p.stats();
    assert_eq!(before.loaders[0].health.buffered, 64);
    assert_eq!(before.loaders[1].health.buffered, 0);

    p.control_tick();
    let status = p.controller_status().expect("controller reachable");
    assert_eq!(status.scale_ups, 0, "uniform mixture must not scale");
    assert_eq!(status.scale_downs, 0, "uniform mixture must not retire");
    assert_eq!(status.rebalances, 1, "skewed source never rebalanced");

    // The hoard was drained and re-spread across both shards of the
    // source — no sample lost, none duplicated.
    let after = p.stats();
    let (a, b) = (
        after.loaders[0].health.buffered,
        after.loaders[1].health.buffered,
    );
    assert_eq!(a + b, 64, "hand-off lost or duplicated samples");
    assert!(
        a.abs_diff(b) <= 2,
        "hand-off left the source skewed: {a} vs {b}"
    );
    p.shutdown();
}

#[test]
fn retiring_the_last_loader_of_a_source_is_refused() {
    // Source 0 runs two loaders (shards 0/1); every other source has
    // exactly one. Retiring from the single-loader sources must be
    // refused — there is no surviving same-source peer to adopt the
    // drained buffer — even when the configured floor would allow it.
    let mut rng = SimRng::seed(2);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: small_backbone(),
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        3,
    );
    let mut sources: Vec<(SourceSpec, LoaderConfig)> = Vec::new();
    for (i, s) in catalog.sources().iter().enumerate() {
        if i == 0 {
            for shard in 0..2u32 {
                sources.push((
                    s.clone(),
                    LoaderConfig {
                        shard,
                        shards: 2,
                        ..LoaderConfig::solo(shard)
                    },
                ));
            }
        } else {
            sources.push((s.clone(), LoaderConfig::solo(i as u32 + 1)));
        }
    }
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();
    // min_loaders_per_source 0: even an operator config that permits
    // retiring everything must not drop the last loader's buffer.
    let ctrl = ControllerConfig {
        min_loaders_per_source: 0,
        ..ControllerConfig::default()
    };
    let p = ThreadedPipeline::new_with(sources, planner, constructors, 46, Gcs::new(), ctrl);
    let single_source = catalog.sources()[1].id;
    let dual_source = catalog.sources()[0].id;
    let timeout = Duration::from_secs(10);

    // Give the single-loader source a buffer worth protecting.
    let single_idx = p
        .loader_identities()
        .iter()
        .position(|id| id.source_id == single_source)
        .expect("single-loader source spawned");
    p.loaders()[single_idx].tell(LoaderMsg::Refill { target: 24 });
    let buffered_before = p.stats().total_buffered();
    assert_eq!(buffered_before, 24);

    // The retirement must be refused: no peer to hand the buffer to.
    let executed = p
        .controller_actor()
        .ask(
            |reply| ControllerMsg::Retire {
                source: single_source,
                reply,
            },
            timeout,
        )
        .expect("controller reachable");
    assert!(!executed, "last loader of a source was retired");
    let status = p.controller_status().expect("controller status");
    assert_eq!(status.scale_downs, 0);
    assert_eq!(status.checkpointed_events, 0, "refusal must not checkpoint");
    let stats = p.stats();
    assert_eq!(
        stats.total_buffered(),
        buffered_before,
        "refused retirement lost samples"
    );
    assert!(
        stats
            .loaders_per_source()
            .iter()
            .all(|(_, count)| *count >= 1),
        "a source lost its last loader: {:?}",
        stats.loaders_per_source()
    );
    let faults = p.gcs.fault_log("controller");
    assert!(
        faults.iter().any(|f| f.detail.contains("refused")),
        "refusal not surfaced on the fault log: {faults:?}"
    );

    // With a surviving peer the same command executes: the victim's
    // buffer is handed off, nothing is lost.
    for idx in 0..2 {
        p.loaders()[idx].tell(LoaderMsg::Refill { target: 20 });
    }
    let before = p.stats().total_buffered();
    let executed = p
        .controller_actor()
        .ask(
            |reply| ControllerMsg::Retire {
                source: dual_source,
                reply,
            },
            timeout,
        )
        .expect("controller reachable");
    assert!(executed, "retirement with a surviving peer refused");
    let status = p.controller_status().expect("controller status");
    assert_eq!(status.scale_downs, 1);
    assert_eq!(status.checkpointed_events, 1);
    let stats = p.stats();
    assert_eq!(
        stats.total_buffered(),
        before,
        "drain/hand-off lost or duplicated samples"
    );
    assert_eq!(
        stats
            .loaders_per_source()
            .iter()
            .find(|(s, _)| *s == dual_source)
            .map(|(_, count)| *count),
        Some(1),
        "retirement did not shrink the source"
    );
    p.shutdown();
}

#[test]
fn stats_snapshot_reports_loaders_and_client_cursors() {
    let schedule = MixSchedule::uniform(5);
    let mut p = pipeline(schedule, 55, Gcs::new(), ControllerConfig::default());
    // Before any traffic: five idle loaders, no buffered samples.
    let idle = p.stats();
    assert_eq!(idle.loaders.len(), 5);
    assert_eq!(idle.total_buffered(), 0);
    assert_eq!(idle.loaders_per_source().len(), 5);
    assert_eq!(idle.constructors.len(), 2);

    let steps = 4u64;
    let mut session = p.serve(ServeOptions {
        clients: 4,
        steps,
        refill_target: 32,
        queue_depth: 3,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| std::thread::spawn(move || while c.next().is_some() {}))
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    assert_eq!(session.join(), steps);

    let stats = p.stats();
    // Loaders refilled past what the plans consumed.
    assert!(stats.total_buffered() > 0, "loaders report empty buffers");
    for l in &stats.loaders {
        assert!(l.health.samples_produced > 0, "{:?} idle", l.identity);
        assert!(l.health.fetch_stall_ns > 0, "fetch stalls unaccounted");
    }
    // Every client's consumed count reached the end of its stream.
    let mut cursors: Vec<(u32, u64)> = stats
        .constructors
        .iter()
        .flat_map(|c| c.client_cursors.iter().copied())
        .collect();
    cursors.sort_unstable();
    assert_eq!(
        cursors,
        vec![(0, steps), (1, steps), (2, steps), (3, steps)],
        "per-client consumed counts wrong"
    );
    p.shutdown();
}

proptest! {
    /// Elastic resharding's minimal-disruption pledge: for any resident
    /// placement and any topology change, the reshard plan never moves
    /// more data than the naive full reshuffle (reassign everything
    /// round-robin from scratch) would.
    #[test]
    fn reshard_never_moves_more_than_the_naive_full_reshuffle(
        n in 1usize..300,
        old_dp in 1u32..9,
        new_dp in 1u32..9,
    ) {
        let tree = |dp: u32| {
            ClientPlaceTree::from_device_mesh(&DeviceMesh::pp_dp_cp_tp(1, dp, 1, 1).unwrap())
        };
        let resident: Vec<(u64, u32)> =
            (0..n).map(|i| (i as u64, i as u32 % old_dp)).collect();
        let (old_tree, new_tree) = (tree(old_dp), tree(new_dp));
        let plan = reshard(&resident, &old_tree, &new_tree, DistributeAxis::DP);
        let naive = naive_full_reshuffle(&resident, &new_tree, DistributeAxis::DP);
        prop_assert_eq!(plan.new_buckets, new_dp);
        prop_assert!(
            plan.moves.len() <= naive.moves.len(),
            "reshard moved {} > naive {}", plan.moves.len(), naive.moves.len()
        );
        prop_assert!(plan.move_fraction() <= naive.move_fraction() + 1e-12);
        // Moves touch only orphaned buckets and land in live ones.
        for m in &plan.moves {
            prop_assert!(m.from_bucket >= new_dp);
            prop_assert!(m.to_bucket < new_dp);
        }
        // Conservation: every resident sample is either moved or stays.
        prop_assert_eq!(plan.moves.len() + plan.stationary, n);
    }
}
