//! Step-frontier progress tracking for the serve plane.
//!
//! Every consumer of the serve stream — a local [`ServeClient`], a remote
//! session tracked by the [`DataServer`], a constructor's delivered cursor —
//! holds a *capability* at the lowest step it may still need. The
//! [`FrontierHub`] folds those cursors into a single global frontier: the
//! minimum over all live holders. The fold follows timely dataflow's
//! progress-tracking contract ("timestamp t can never appear here again"):
//!
//! * the frontier is **monotone non-decreasing** — once a step retires it
//!   stays retired, so pruning a plan-log prefix or a retransmit buffer
//!   below the frontier is provably safe, not a window-size guess;
//! * a holder's cursor only moves forward (`advance` takes the max);
//! * releasing a capability (client `Close`, lease eviction, constructor
//!   shutdown) removes the holder from the fold — a departed consumer can
//!   neither hold back nor falsely advance global retirement;
//! * re-acquiring below the frontier is *clamped up*: the granted cursor is
//!   `max(requested, frontier)`, because steps below the frontier have
//!   already been retired and can never be replayed from retained state.
//!
//! Retirement policy everywhere downstream is then a single rule:
//! `step < frontier ⇒ retire eagerly; step ≥ frontier ⇒ must retain`.
//!
//! [`ServeClient`]: crate::system::runtime::ServeClient
//! [`DataServer`]: crate::system::server::DataServer

use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// A capability holder in the frontier fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Holder {
    /// A serve-stream consumer (local `ServeClient` or remote session),
    /// keyed by client id. Its cursor is the next step it will consume.
    Client(u32),
    /// A constructor's delivery floor (min over its per-client cursors),
    /// keyed by constructor index. Keeps ready-queue batches retained until
    /// the constructor itself has moved past them.
    Constructor(u32),
}

impl std::fmt::Display for Holder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Holder::Client(id) => write!(f, "client/{id}"),
            Holder::Constructor(idx) => write!(f, "constructor/{idx}"),
        }
    }
}

#[derive(Debug, Default)]
struct HubState {
    /// Live capability cursors.
    holders: HashMap<Holder, u64>,
    /// Count-multiset of cursors for O(log n) min maintenance.
    counts: BTreeMap<u64, u32>,
    /// The folded global frontier. Monotone: only ever ratcheted up.
    frontier: u64,
    /// Acquires that asked for a cursor below the frontier and were
    /// clamped up (resume-after-retirement).
    clamped_acquires: u64,
    /// Capabilities released (close, eviction, completion).
    releases: u64,
}

impl HubState {
    fn count_insert(&mut self, cursor: u64) {
        *self.counts.entry(cursor).or_insert(0) += 1;
    }

    fn count_remove(&mut self, cursor: u64) {
        if let Some(n) = self.counts.get_mut(&cursor) {
            *n -= 1;
            if *n == 0 {
                self.counts.remove(&cursor);
            }
        }
    }

    /// Ratchets the frontier up to the current min over live holders.
    /// With no holders the frontier stays where it is — an empty fold
    /// proves nothing new retired.
    fn refold(&mut self) {
        if let Some((&min, _)) = self.counts.iter().next() {
            self.frontier = self.frontier.max(min);
        }
    }
}

/// Shared fold of consumed-frontier reports (see module docs).
///
/// Cheap to clone behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct FrontierHub {
    state: Mutex<HubState>,
}

/// A point-in-time snapshot of the fold, for checkpointing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierSnapshot {
    /// The folded global frontier.
    pub frontier: u64,
    /// Live holders and their cursors, sorted for determinism.
    pub holders: Vec<(Holder, u64)>,
}

/// The serve driver's GCS-persisted frontier record (MSDB frame kind
/// 13, see [`crate::codec::encode_frontier_checkpoint`]). Steps are
/// session-local; `plan_base` maps them onto the planner's global step
/// counter so recovery can prove which plan-log entries are retired:
/// plan-log step `plan_base + frontier` is the retirement floor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrontierCheckpoint {
    /// Folded global frontier, in session steps.
    pub frontier: u64,
    /// Steps the serve driver had served when this was written.
    pub served: u64,
    /// Planner global step of this session's step 0.
    pub plan_base: u64,
    /// Plan-log entries below this *planner* step have been pruned.
    pub pruned_below: u64,
    /// Live holders and their cursors at checkpoint time.
    pub holders: Vec<(Holder, u64)>,
}

impl FrontierHub {
    /// Creates an empty hub with the frontier at 0.
    pub fn new() -> Self {
        FrontierHub::default()
    }

    /// Acquires (or re-acquires) a capability at `at`. Returns the granted
    /// cursor: `max(at, frontier)` — steps below the frontier are already
    /// retired and cannot be held. Re-acquiring an existing holder rebinds
    /// its cursor (still clamped to both the frontier and its own previous
    /// cursor, so a holder can never rewind the fold).
    pub fn acquire(&self, holder: Holder, at: u64) -> u64 {
        let mut s = self.state.lock().expect("frontier hub lock");
        let mut granted = at.max(s.frontier);
        if at < s.frontier {
            s.clamped_acquires += 1;
        }
        if let Some(&prev) = s.holders.get(&holder) {
            granted = granted.max(prev);
            s.count_remove(prev);
        }
        s.holders.insert(holder, granted);
        s.count_insert(granted);
        s.refold();
        granted
    }

    /// Advances a holder's cursor to `to` (monotone: `max` with the current
    /// cursor). Reports from a holder that no longer exists are dropped —
    /// a released capability is gone and cannot influence the fold.
    pub fn advance(&self, holder: Holder, to: u64) {
        let mut s = self.state.lock().expect("frontier hub lock");
        let Some(&prev) = s.holders.get(&holder) else {
            return;
        };
        if to <= prev {
            return;
        }
        s.count_remove(prev);
        s.holders.insert(holder, to);
        s.count_insert(to);
        s.refold();
    }

    /// Releases a holder's capability, removing it from the fold. The
    /// frontier ratchets to the min of the *remaining* holders; releasing
    /// the last holder leaves it unchanged (nothing new is proven).
    pub fn release(&self, holder: Holder) {
        let mut s = self.state.lock().expect("frontier hub lock");
        let Some(prev) = s.holders.remove(&holder) else {
            return;
        };
        s.releases += 1;
        s.count_remove(prev);
        s.refold();
    }

    /// The current global frontier: every step below it is retired.
    pub fn frontier(&self) -> u64 {
        self.state.lock().expect("frontier hub lock").frontier
    }

    /// The lowest cursor over live *client* holders, if any. The serve
    /// driver's drain condition: `None` means no client still consuming.
    pub fn min_client_cursor(&self) -> Option<u64> {
        let s = self.state.lock().expect("frontier hub lock");
        s.holders
            .iter()
            .filter(|(h, _)| matches!(h, Holder::Client(_)))
            .map(|(_, &c)| c)
            .min()
    }

    /// Number of live client holders.
    pub fn live_clients(&self) -> usize {
        let s = self.state.lock().expect("frontier hub lock");
        s.holders
            .keys()
            .filter(|h| matches!(h, Holder::Client(_)))
            .count()
    }

    /// Whether `holder` currently holds a capability.
    pub fn holds(&self, holder: Holder) -> bool {
        self.state
            .lock()
            .expect("frontier hub lock")
            .holders
            .contains_key(&holder)
    }

    /// A holder's current cursor, if live.
    pub fn cursor(&self, holder: Holder) -> Option<u64> {
        self.state
            .lock()
            .expect("frontier hub lock")
            .holders
            .get(&holder)
            .copied()
    }

    /// Acquires clamped up because they asked below the frontier.
    pub fn clamped_acquires(&self) -> u64 {
        self.state
            .lock()
            .expect("frontier hub lock")
            .clamped_acquires
    }

    /// Capabilities released so far.
    pub fn releases(&self) -> u64 {
        self.state.lock().expect("frontier hub lock").releases
    }

    /// Snapshot of the fold for checkpointing.
    pub fn snapshot(&self) -> FrontierSnapshot {
        let s = self.state.lock().expect("frontier hub lock");
        let mut holders: Vec<(Holder, u64)> = s.holders.iter().map(|(h, c)| (*h, *c)).collect();
        holders.sort();
        FrontierSnapshot {
            frontier: s.frontier,
            holders,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_is_min_over_live_holders() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.acquire(Holder::Client(1), 0);
        assert_eq!(hub.frontier(), 0);
        hub.advance(Holder::Client(0), 10);
        assert_eq!(hub.frontier(), 0, "client 1 still at 0");
        hub.advance(Holder::Client(1), 7);
        assert_eq!(hub.frontier(), 7);
        hub.advance(Holder::Client(1), 20);
        assert_eq!(hub.frontier(), 10, "client 0 is now the straggler");
    }

    #[test]
    fn release_removes_holder_from_fold() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.acquire(Holder::Client(1), 0);
        hub.advance(Holder::Client(0), 50);
        assert_eq!(hub.frontier(), 0);
        hub.release(Holder::Client(1));
        assert_eq!(hub.frontier(), 50, "laggard's release unblocks the fold");
        assert_eq!(hub.releases(), 1);
    }

    #[test]
    fn released_holder_cannot_advance_or_hold_back() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.acquire(Holder::Client(1), 0);
        hub.advance(Holder::Client(0), 5);
        hub.release(Holder::Client(1));
        assert_eq!(hub.frontier(), 5);
        // A stale report from the departed holder is dropped.
        hub.advance(Holder::Client(1), 1000);
        assert_eq!(hub.frontier(), 5);
        assert!(!hub.holds(Holder::Client(1)));
    }

    #[test]
    fn reacquire_below_frontier_is_clamped() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.advance(Holder::Client(0), 40);
        assert_eq!(hub.frontier(), 40);
        // A rejoining client asking for retired steps is clamped up.
        let granted = hub.acquire(Holder::Client(1), 3);
        assert_eq!(granted, 40);
        assert_eq!(hub.frontier(), 40);
        assert_eq!(hub.clamped_acquires(), 1);
    }

    #[test]
    fn frontier_is_monotone_across_release_of_last_holder() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.advance(Holder::Client(0), 12);
        hub.release(Holder::Client(0));
        assert_eq!(hub.frontier(), 12, "empty fold keeps the last frontier");
        // A fresh join at 0 is clamped to the retired prefix.
        assert_eq!(hub.acquire(Holder::Client(2), 0), 12);
    }

    #[test]
    fn reacquire_never_rewinds_an_existing_holder() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Client(0), 0);
        hub.advance(Holder::Client(0), 9);
        let granted = hub.acquire(Holder::Client(0), 2);
        assert_eq!(granted, 9, "rebind keeps the forward-most cursor");
        assert_eq!(hub.cursor(Holder::Client(0)), Some(9));
    }

    #[test]
    fn constructor_holders_do_not_count_as_clients() {
        let hub = FrontierHub::new();
        hub.acquire(Holder::Constructor(0), 0);
        assert_eq!(hub.live_clients(), 0);
        assert_eq!(hub.min_client_cursor(), None);
        hub.acquire(Holder::Client(7), 4);
        assert_eq!(hub.live_clients(), 1);
        assert_eq!(hub.min_client_cursor(), Some(4));
        // But constructors do participate in the retirement fold.
        hub.advance(Holder::Client(7), 100);
        assert_eq!(hub.frontier(), 0);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let hub = FrontierHub::new();
        // Lowest holder first: a sole holder at 5 would ratchet the
        // frontier to 5 and clamp every later acquire up to it.
        hub.acquire(Holder::Constructor(0), 2);
        hub.acquire(Holder::Client(3), 5);
        hub.acquire(Holder::Client(1), 8);
        let snap = hub.snapshot();
        assert_eq!(snap.frontier, 2);
        assert_eq!(
            snap.holders,
            vec![
                (Holder::Client(1), 8),
                (Holder::Client(3), 5),
                (Holder::Constructor(0), 2),
            ]
        );
    }
}
