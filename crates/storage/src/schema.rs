//! Column schemas and typed values.

use bytes::Bytes;

use crate::error::StorageError;

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Opaque byte blob (image payloads, encoded video).
    Bytes,
}

impl DataType {
    /// Stable on-disk tag for the type.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Utf8 => 2,
            DataType::Bytes => 3,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Utf8,
            3 => DataType::Bytes,
            _ => return None,
        })
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Utf8 => "Utf8",
            DataType::Bytes => "Bytes",
        }
    }
}

/// A typed cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit IEEE float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Opaque byte blob. Held as [`Bytes`] so decoded values are O(1)
    /// slices of the fetched block buffer — payloads cross the
    /// storage → loader hop without a copy.
    Bytes(Bytes),
}

impl Value {
    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Utf8(_) => DataType::Utf8,
            Value::Bytes(_) => DataType::Bytes,
        }
    }

    /// Extracts an `i64`, if this is an [`Value::Int64`].
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts an `f64`, if this is a [`Value::Float64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// Extracts a `&str`, if this is a [`Value::Utf8`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts bytes, if this is a [`Value::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v),
            _ => None,
        }
    }

    /// Extracts a shared, zero-copy handle to the blob, if this is a
    /// [`Value::Bytes`] — the clone is a refcount bump on the decoded
    /// block buffer, never a payload copy.
    pub fn as_shared_bytes(&self) -> Option<Bytes> {
        match self {
            Value::Bytes(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// In-memory footprint of the value payload in bytes.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Int64(_) | Value::Float64(_) => 8,
            Value::Utf8(s) => s.len(),
            Value::Bytes(b) => b.len(),
        }
    }
}

/// A single row: one value per schema column.
pub type Row = Vec<Value>;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column data type.
    pub dtype: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Field {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Validates that a row matches this schema.
    pub fn check_row(&self, row: &Row) -> Result<(), StorageError> {
        if row.len() != self.fields.len() {
            return Err(StorageError::ArityMismatch {
                expected: self.fields.len(),
                actual: row.len(),
            });
        }
        for (field, value) in self.fields.iter().zip(row) {
            if value.data_type() != field.dtype {
                return Err(StorageError::TypeMismatch {
                    column: field.name.clone(),
                    expected: field.dtype.name(),
                    actual: value.data_type().name(),
                });
            }
        }
        Ok(())
    }

    /// The canonical schema for multimodal training samples used throughout
    /// the reproduction: `(sample_id, text, image, text_tokens, img_patches)`.
    pub fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("sample_id", DataType::Int64),
            Field::new("text", DataType::Utf8),
            Field::new("image", DataType::Bytes),
            Field::new("text_tokens", DataType::Int64),
            Field::new("img_patches", DataType::Int64),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Bytes,
        ] {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(42), None);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int64(5).as_i64(), Some(5));
        assert_eq!(Value::Int64(5).as_f64(), None);
        assert_eq!(Value::Utf8("hi".into()).as_str(), Some("hi"));
        assert_eq!(
            Value::Bytes(vec![1, 2].into()).as_bytes(),
            Some(&[1u8, 2][..])
        );
        assert_eq!(Value::Bytes(vec![1, 2, 3].into()).payload_bytes(), 3);
        assert_eq!(Value::Float64(0.5).payload_bytes(), 8);
        // Shared extraction is a refcount bump, not a copy.
        let blob = Value::Bytes(vec![9u8; 16].into());
        let a = blob.as_shared_bytes().unwrap();
        let b = blob.as_shared_bytes().unwrap();
        assert!(Bytes::ptr_eq(&a, &b));
        assert_eq!(Value::Int64(1).as_shared_bytes(), None);
    }

    #[test]
    fn schema_lookup_and_validation() {
        let s = Schema::sample_schema();
        assert_eq!(s.len(), 5);
        assert_eq!(s.index_of("text_tokens"), Some(3));
        assert_eq!(s.index_of("missing"), None);

        let good: Row = vec![
            Value::Int64(1),
            Value::Utf8("caption".into()),
            Value::Bytes(vec![0xFF; 16].into()),
            Value::Int64(12),
            Value::Int64(256),
        ];
        assert!(s.check_row(&good).is_ok());

        let short: Row = vec![Value::Int64(1)];
        assert!(matches!(
            s.check_row(&short),
            Err(StorageError::ArityMismatch { .. })
        ));

        let mut wrong = good;
        wrong[1] = Value::Int64(0);
        assert!(matches!(
            s.check_row(&wrong),
            Err(StorageError::TypeMismatch { .. })
        ));
    }
}
