//! Shim for `criterion`: the macro/struct surface of the real harness
//! with plain wall-clock measurement — each benchmark runs
//! `sample_size` batches and reports the mean ns/iteration. No warm-up
//! modeling, outlier analysis, or HTML reports.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(name, bencher.mean_ns);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.id), bencher.mean_ns);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let mut bencher = Bencher {
            sample_size: self.criterion.sample_size,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.into().id), bencher.mean_ns);
    }

    /// Ends the group (reporting happens per-bench; this is a no-op).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Measures a closure; handed to benchmark functions.
pub struct Bencher {
    sample_size: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`, storing the mean ns/iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        black_box(routine());
        let mut total_ns = 0u128;
        let mut iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            total_ns += start.elapsed().as_nanos();
            iters += 1;
        }
        self.mean_ns = total_ns as f64 / iters as f64;
    }
}

fn report(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("bench {name:<50} {value:>10.3} {unit}/iter");
}

/// Declares a benchmark entry point running each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = <$crate::Criterion as ::std::default::Default>::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_nonzero_mean() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 8), &8u32, |b, n| {
            b.iter(|| *n * 2);
        });
        g.finish();
    }
}
