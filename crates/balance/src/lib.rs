//! Cost models and load-balancing algorithms.
//!
//! The paper's `cost(costfn)` and `balance(method)` primitives bottom out
//! here:
//!
//! - [`cost`]: analytic FLOPs models for ViT encoders and (MoE) LLM
//!   backbones — the quadratic attention term is what makes skewed
//!   sequence-length distributions produce the 3.2×/6.9× imbalances of
//!   Fig 3.
//! - [`binpack`]: the balancing methods exposed by `balance(...)` — greedy
//!   LPT binpacking and Karmarkar–Karp differencing — plus the cheaper
//!   interleaved assignment.
//! - [`metrics`]: imbalance measures (max/min factor, coefficient of
//!   variation) used across the evaluation figures.

pub mod binpack;
pub mod cost;
pub mod metrics;
pub mod order;

pub use binpack::{balance, Assignment, BalanceMethod};
pub use cost::{BackboneShape, EncoderShape};
pub use metrics::{bin_sums, coefficient_of_variation, imbalance_factor};
pub use order::{vshape_order, zigzag_order};
