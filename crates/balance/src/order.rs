//! Microbatch ordering strategies (the paper's extension API examples).
//!
//! `balance()` decides *which* samples share a bin; ordering strategies
//! decide *in what sequence* bins execute. Sec 4.2 names Zig-Zag and
//! V-Shape as user-defined strategies implementable through the
//! framework's extension APIs:
//!
//! - [`zigzag_order`]: alternate heavy and light microbatches, so a heavy
//!   microbatch on one pipeline stage overlaps a light one elsewhere.
//! - [`vshape_order`]: heaviest microbatches at the edges, lightest in the
//!   middle — the 1F1B warm-up/cool-down phases (which expose bubbles the
//!   most) carry the least skew-sensitive work in the steady state.
//! - [`by_cost_desc`] / [`by_cost_asc`]: the simple monotone orders.

/// Returns bin indices sorted by descending cost.
pub fn by_cost_desc(costs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..costs.len()).collect();
    idx.sort_by(|a, b| {
        costs[*b]
            .partial_cmp(&costs[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    idx
}

/// Returns bin indices sorted by ascending cost.
pub fn by_cost_asc(costs: &[f64]) -> Vec<usize> {
    let mut idx = by_cost_desc(costs);
    idx.reverse();
    idx
}

/// Zig-zag order: heaviest, lightest, second-heaviest, second-lightest, …
///
/// Adjacent microbatches then have strongly anti-correlated costs, which
/// smooths the instantaneous load a pipeline stage sees.
pub fn zigzag_order(costs: &[f64]) -> Vec<usize> {
    let desc = by_cost_desc(costs);
    let n = desc.len();
    let mut out = Vec::with_capacity(n);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        out.push(desc[lo]);
        lo += 1;
        if lo < hi {
            hi -= 1;
            out.push(desc[hi]);
        }
    }
    out
}

/// V-shape order: costs descend to the middle, then ascend — the heaviest
/// microbatches sit at both ends of the schedule.
pub fn vshape_order(costs: &[f64]) -> Vec<usize> {
    let desc = by_cost_desc(costs);
    let mut front = Vec::with_capacity(desc.len());
    let mut back = Vec::new();
    for (i, idx) in desc.iter().enumerate() {
        if i % 2 == 0 {
            front.push(*idx);
        } else {
            back.push(*idx);
        }
    }
    back.reverse();
    front.extend(back);
    front
}

/// Mean absolute cost difference between adjacent positions — the
/// smoothness objective zig-zag optimizes (higher = more alternation).
pub fn adjacent_contrast(order: &[usize], costs: &[f64]) -> f64 {
    if order.len() < 2 {
        return 0.0;
    }
    order
        .windows(2)
        .map(|w| (costs[w[0]] - costs[w[1]]).abs())
        .sum::<f64>()
        / (order.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> Vec<f64> {
        vec![5.0, 1.0, 9.0, 3.0, 7.0, 2.0]
    }

    fn is_permutation(order: &[usize], n: usize) -> bool {
        let mut seen = vec![false; n];
        for i in order {
            if seen[*i] {
                return false;
            }
            seen[*i] = true;
        }
        seen.into_iter().all(|s| s)
    }

    #[test]
    fn monotone_orders() {
        let c = costs();
        let desc = by_cost_desc(&c);
        assert_eq!(desc, vec![2, 4, 0, 3, 5, 1]);
        let asc = by_cost_asc(&c);
        assert_eq!(asc, vec![1, 5, 3, 0, 4, 2]);
        assert!(is_permutation(&desc, c.len()));
    }

    #[test]
    fn zigzag_alternates_heavy_light() {
        let c = costs();
        let zz = zigzag_order(&c);
        assert!(is_permutation(&zz, c.len()));
        // 9, 1, 7, 2, 5, 3.
        assert_eq!(zz, vec![2, 1, 4, 5, 0, 3]);
        // Zig-zag maximizes adjacent contrast vs the sorted order.
        assert!(adjacent_contrast(&zz, &c) > adjacent_contrast(&by_cost_desc(&c), &c));
    }

    #[test]
    fn vshape_puts_heavy_at_edges() {
        let c = costs();
        let v = vshape_order(&c);
        assert!(is_permutation(&v, c.len()));
        // Ends are the two heaviest bins.
        let first = c[v[0]];
        let last = c[*v.last().unwrap()];
        let max1 = 9.0;
        let max2 = 7.0;
        assert!(
            (first == max1 && last == max2) || (first == max2 && last == max1),
            "v = {v:?}"
        );
        // Middle element is among the lightest two.
        let mid = c[v[v.len() / 2]];
        assert!(mid <= 3.0, "mid = {mid}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(zigzag_order(&[]).is_empty());
        assert_eq!(zigzag_order(&[4.2]), vec![0]);
        assert_eq!(vshape_order(&[4.2]), vec![0]);
        assert_eq!(adjacent_contrast(&[0], &[4.2]), 0.0);
    }

    #[test]
    fn ties_are_deterministic() {
        let c = vec![2.0, 2.0, 2.0];
        assert_eq!(by_cost_desc(&c), vec![0, 1, 2]);
        assert_eq!(zigzag_order(&c), vec![0, 2, 1]);
    }
}
