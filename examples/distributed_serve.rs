//! Distributed serving: trainer ranks pull batches over the MSDB wire.
//!
//! ```text
//! cargo run --example distributed_serve
//! ```
//!
//! A 5-source pipeline serves 4 *remote* trainer clients through the
//! distributed serving plane: each client dials a `DataServer` actor
//! over a transport, is placed onto the trainer mesh by its DP rank
//! (`ClientPlaceTree`: rank → constructor bucket), and streams batches
//! under credit-based flow control. The demo runs the same session
//! twice —
//!
//! 1. over the **loopback** transport (zero-copy `Arc` hand-off), with
//!    one client dropping its connection mid-stream and resuming from
//!    its cursor, and
//! 2. over the **lossy simulated network** (every frame serialized
//!    through the MSDB codec, 10% dropped, alpha-beta latency), where
//!    the ack/credit/resubscribe machinery has to earn its keep.
//!
//! Both runs deliver every client a gap-free, in-order stream.

use std::sync::Arc;
use std::time::Duration;

use megascale_data::balance::BalanceMethod;
use megascale_data::core::constructor::DataConstructor;
use megascale_data::core::loader::LoaderConfig;
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::net::{LoopbackTransport, SimTransport, Transport};
use megascale_data::core::system::runtime::{ServeOptions, ThreadedPipeline};
use megascale_data::core::system::server::RemotePlacement;
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::SourceSpec;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::{NetModel, SimRng};

fn pipeline() -> ThreadedPipeline {
    let mut rng = SimRng::seed(5);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).expect("mesh");
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: megascale_data::balance::BackboneShape {
                layers: 2,
                hidden: 128,
                mlp_ratio: 4.0,
                heads: 2,
                vocab: 1000,
                experts_per_token: 1,
            },
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    );
    let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, 400_000),
            )
        })
        .collect();
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();
    ThreadedPipeline::new(sources, planner, constructors, 99)
}

/// Clients 0..4 on the 1×2×1×2 mesh: DP bucket 0 holds ranks {0, 1},
/// bucket 1 holds {2, 3}.
fn placements() -> Vec<RemotePlacement> {
    (0..4)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 2) * 2 + (c / 2) % 2,
        })
        .collect()
}

fn serve_over(transport: Arc<dyn Transport>, steps: u64, drop_one: bool) {
    let name = transport.name();
    let mut p = pipeline();
    let (session, handle) = p.serve_distributed(
        ServeOptions {
            steps,
            refill_target: 32,
            queue_depth: 3,
            pull_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        },
        transport,
        &placements(),
    );
    let threads: Vec<_> = placements()
        .into_iter()
        .map(|pl| {
            let mut client = handle.connect(pl.client);
            std::thread::spawn(move || {
                let mut pulled = 0u64;
                while let Some((step, batch)) = client.next() {
                    assert_eq!(step, pulled, "stream gap");
                    pulled += 1;
                    if drop_one && client.id == 0 && pulled == 2 {
                        client.disconnect(); // Crash; resume from cursor.
                    }
                    std::hint::black_box(&batch);
                }
                (client.id, pulled, client.reconnects())
            })
        })
        .collect();
    for t in threads {
        let (id, pulled, reconnects) = t.join().expect("client thread");
        assert_eq!(pulled, steps, "client {id} missed steps");
        println!(
            "  [{name}] client {id} (rank {}): {pulled}/{steps} batches, \
             gap-free, {reconnects} reconnect(s)",
            placements()[id as usize].rank
        );
    }
    assert_eq!(session.join(), steps, "driver fell short");
    let status = handle.status().expect("server status");
    println!(
        "  [{name}] server: {} frames received, {} batch frames sent, all clients done = {}",
        status.frames_rx,
        status.batches_tx,
        status.clients.iter().all(|c| c.done),
    );
    p.shutdown();
}

fn main() {
    let steps = 10u64;

    println!("== distributed serve over loopback (zero-copy, one mid-stream disconnect) ==");
    serve_over(Arc::new(LoopbackTransport), steps, true);

    println!("\n== distributed serve over the lossy sim network (10% frame loss) ==");
    let sim = Arc::new(SimTransport::new(NetModel::default(), 0.10, 42));
    serve_over(sim.clone(), steps, false);
    let stats = sim.stats();
    println!(
        "  [sim] network: {} frames offered, {} dropped ({:.0}%), {:.1} KiB delivered",
        stats.offered,
        stats.dropped,
        stats.dropped as f64 / stats.offered.max(1) as f64 * 100.0,
        stats.delivered_bytes as f64 / 1024.0,
    );

    println!("\ndone: the wire was lossy, the streams were not.");
}
