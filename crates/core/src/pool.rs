//! Size-classed buffer pool with timely-allocator-style reclaim.
//!
//! The serve path is zero-copy for payload *views* (every `Bytes` is a
//! sub-slice of some larger buffer), but before this module each of
//! those backing buffers was a fresh heap allocation: one per decoded
//! storage block, one per synthesized sample, one per encoded wire
//! frame, one per TCP frame reassembly. At steady state the contents
//! churn but the *shapes* repeat, which is exactly the case a pool
//! wins: hand the same few backing allocations around forever.
//!
//! The catch is ownership. A pooled buffer is usually frozen into
//! `Bytes` and sliced into views that outlive the pipeline stage that
//! produced them — the pool must never recycle a buffer while any view
//! is alive, or payload bytes would be scribbled mid-flight. The pool
//! borrows the timely-dataflow allocator trick: when a buffer is
//! frozen, the pool *parks a clone* of the `Bytes` handle. Once every
//! consumer view drops, the parked handle is the unique owner
//! ([`Bytes::is_unique`]), and the next lease reclaims the backing
//! `Vec<u8>` via [`Bytes::try_reclaim`] — no free, no malloc, full
//! capacity back.
//!
//! Three ways storage comes back:
//! - **steal** — a parked `Bytes` went unique and its backing vec was
//!   reclaimed on lease;
//! - **hit** — a plain recycled vec was waiting on the class free list;
//! - **miss** — nothing available; a fresh vec is allocated.
//!
//! Buffers larger than the biggest size class fall through to plain
//! allocation (counted as misses) and are never pooled, so exhaustion
//! or odd sizes degrade to exactly the pre-pool behavior — no blocking,
//! no deadlock. All internal locks are short push/pop critical
//! sections on per-class free lists.

use std::sync::{Arc, Mutex, OnceLock};

use bytes::{Bytes, BytesMut};

use crate::metrics::Counter;

/// Tuning knobs for a [`BufferPool`].
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Smallest size class in bytes (requests below it round up).
    pub min_class_bytes: usize,
    /// Largest size class in bytes (requests above it bypass the pool).
    pub max_class_bytes: usize,
    /// Cap on idle recycled vecs kept per class; overflow is dropped
    /// (counted as a resize) so the pool cannot hoard memory.
    pub max_free_per_class: usize,
    /// Cap on parked frozen handles per class awaiting reclaim.
    pub max_parked_per_class: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            min_class_bytes: 1 << 10,
            max_class_bytes: 16 << 20,
            max_free_per_class: 32,
            max_parked_per_class: 256,
        }
    }
}

/// One power-of-two size class: recycled vecs ready to hand out, plus
/// frozen handles parked until their consumers drop.
#[derive(Debug, Default)]
struct SizeClass {
    free: Mutex<Vec<Vec<u8>>>,
    parked: Mutex<Vec<Bytes>>,
}

/// Traffic counters for one pool (all monotone; snapshot via
/// [`BufferPool::counters`] and diff with [`PoolCounters::since`]).
#[derive(Debug, Default)]
struct CounterSet {
    leases: Counter,
    hits: Counter,
    misses: Counter,
    steals: Counter,
    resizes: Counter,
    bytes_allocated: Counter,
    bytes_recycled: Counter,
}

/// Point-in-time copy of a pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Buffer requests served (every would-be allocation on the hot
    /// path is exactly one lease).
    pub leases: u64,
    /// Leases served from a class free list.
    pub hits: u64,
    /// Leases that fell through to a fresh heap allocation.
    pub misses: u64,
    /// Leases served by reclaiming a parked frozen buffer whose views
    /// had all dropped.
    pub steals: u64,
    /// Buffers shed because a free or parked list was at capacity.
    pub resizes: u64,
    /// Total bytes of fresh backing storage allocated.
    pub bytes_allocated: u64,
    /// Total bytes of backing storage handed out from recycled buffers.
    pub bytes_recycled: u64,
}

impl PoolCounters {
    /// Fraction of leases served without touching the allocator
    /// (`(hits + steals) / leases`; 0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.leases == 0 {
            0.0
        } else {
            (self.hits + self.steals) as f64 / self.leases as f64
        }
    }

    /// Counter deltas since an earlier snapshot of the same pool.
    pub fn since(&self, earlier: &PoolCounters) -> PoolCounters {
        PoolCounters {
            leases: self.leases.saturating_sub(earlier.leases),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            steals: self.steals.saturating_sub(earlier.steals),
            resizes: self.resizes.saturating_sub(earlier.resizes),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            bytes_recycled: self.bytes_recycled.saturating_sub(earlier.bytes_recycled),
        }
    }
}

/// A size-classed slab pool of reusable backing buffers.
#[derive(Debug)]
pub struct BufferPool {
    config: PoolConfig,
    classes: Vec<SizeClass>,
    counters: CounterSet,
}

impl BufferPool {
    /// Creates a pool with the given knobs (class sizes are the powers
    /// of two from `min_class_bytes` to `max_class_bytes` inclusive).
    pub fn new(config: PoolConfig) -> Self {
        let min = config.min_class_bytes.next_power_of_two().max(1);
        let max = config.max_class_bytes.next_power_of_two().max(min);
        let config = PoolConfig {
            min_class_bytes: min,
            max_class_bytes: max,
            ..config
        };
        let count = (max.trailing_zeros() - min.trailing_zeros()) as usize + 1;
        let classes = (0..count).map(|_| SizeClass::default()).collect();
        BufferPool {
            config,
            classes,
            counters: CounterSet::default(),
        }
    }

    /// The effective configuration (class bounds rounded to powers of
    /// two).
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Size class that serves a lease of `capacity` bytes (the smallest
    /// class at least that large), or `None` when the request is bigger
    /// than every class and must bypass the pool.
    fn request_class(&self, capacity: usize) -> Option<usize> {
        let rounded = capacity
            .max(self.config.min_class_bytes)
            .next_power_of_two();
        if rounded > self.config.max_class_bytes {
            None
        } else {
            Some((rounded.trailing_zeros() - self.config.min_class_bytes.trailing_zeros()) as usize)
        }
    }

    /// Size class a buffer of `capacity` bytes can be stored under (the
    /// largest class no bigger than the buffer, so a lease from that
    /// class always has enough room), or `None` when the buffer is too
    /// small to be worth keeping.
    fn return_class(&self, capacity: usize) -> Option<usize> {
        if capacity < self.config.min_class_bytes {
            return None;
        }
        let floor = self
            .config
            .max_class_bytes
            .min(1 << (usize::BITS - 1 - capacity.leading_zeros()));
        Some((floor.trailing_zeros() - self.config.min_class_bytes.trailing_zeros()) as usize)
    }

    /// Bytes a lease from class `idx` guarantees.
    fn class_size(&self, idx: usize) -> usize {
        self.config.min_class_bytes << idx
    }

    /// The core acquisition path: steal from parked, else pop free,
    /// else allocate. Returns the vec plus whether it belongs to a
    /// class (and should return to the pool when done).
    fn acquire(&self, capacity: usize) -> (Vec<u8>, bool) {
        self.counters.leases.inc();
        let Some(idx) = self.request_class(capacity) else {
            self.counters.misses.inc();
            self.counters.bytes_allocated.add(capacity as u64);
            return (Vec::with_capacity(capacity), false);
        };
        let class = &self.classes[idx];

        // Sweep the parked list: any frozen buffer whose consumers have
        // all dropped is uniquely owned and its backing vec comes back.
        let mut reclaimed: Vec<Vec<u8>> = Vec::new();
        {
            let mut parked = class.parked.lock().expect("pool parked lock");
            let mut i = 0;
            while i < parked.len() {
                if parked[i].is_unique() {
                    match parked.swap_remove(i).try_reclaim() {
                        Ok(mut vec) => {
                            vec.clear();
                            reclaimed.push(vec);
                        }
                        Err(bytes) => {
                            parked.insert(i, bytes);
                            i += 1;
                        }
                    }
                } else {
                    i += 1;
                }
            }
        }

        let mut vec = reclaimed.pop();
        if vec.is_some() {
            self.counters.steals.inc();
        }
        if !reclaimed.is_empty() {
            // Surplus reclaims top up the free list for future hits.
            let mut free = class.free.lock().expect("pool free lock");
            while free.len() < self.config.max_free_per_class {
                match reclaimed.pop() {
                    Some(v) => free.push(v),
                    None => break,
                }
            }
            if !reclaimed.is_empty() {
                self.counters.resizes.add(reclaimed.len() as u64);
            }
        }
        if vec.is_none() {
            vec = class.free.lock().expect("pool free lock").pop();
            if vec.is_some() {
                self.counters.hits.inc();
            }
        }
        match vec {
            Some(vec) => {
                self.counters.bytes_recycled.add(vec.capacity() as u64);
                (vec, true)
            }
            None => {
                let size = self.class_size(idx).max(capacity);
                self.counters.misses.inc();
                self.counters.bytes_allocated.add(size as u64);
                (Vec::with_capacity(size), true)
            }
        }
    }

    /// Leases a buffer with room for at least `capacity` bytes. Returns
    /// a [`PooledBuf`] that recycles itself back into this pool on drop
    /// or freeze.
    pub fn lease(self: &Arc<Self>, capacity: usize) -> PooledBuf {
        let (vec, pooled) = self.acquire(capacity);
        PooledBuf {
            vec: Some(vec),
            pool: pooled.then(|| Arc::clone(self)),
        }
    }

    /// Leases a raw `Vec<u8>` for callers whose buffer ownership moves
    /// across threads outside `PooledBuf`'s RAII (e.g. a sim packet
    /// owns its frame head until the receiver decodes it). Pair with
    /// [`BufferPool::recycle_vec`].
    pub fn lease_vec(&self, capacity: usize) -> Vec<u8> {
        self.acquire(capacity).0
    }

    /// Returns a raw vec (from [`BufferPool::lease_vec`] or anywhere
    /// else) to the free lists. Contents are discarded; too-small or
    /// over-capacity vecs are simply dropped.
    pub fn recycle_vec(&self, mut vec: Vec<u8>) {
        vec.clear();
        let Some(idx) = self.return_class(vec.capacity()) else {
            return;
        };
        let mut free = self.classes[idx].free.lock().expect("pool free lock");
        if free.len() < self.config.max_free_per_class {
            free.push(vec);
        } else {
            self.counters.resizes.inc();
        }
    }

    /// Parks a clone of a frozen buffer so its backing storage can be
    /// stolen back once every other view drops.
    fn park(&self, capacity: usize, bytes: Bytes) {
        let Some(idx) = self.return_class(capacity) else {
            return;
        };
        let mut parked = self.classes[idx].parked.lock().expect("pool parked lock");
        if parked.len() < self.config.max_parked_per_class {
            parked.push(bytes);
        } else {
            self.counters.resizes.inc();
        }
    }

    /// Freezes an externally built buffer through the pool: the caller
    /// gets the `Bytes`, the pool parks a clone for later reclaim.
    pub fn seal(&self, buf: BytesMut) -> Bytes {
        let vec = buf.into_vec();
        let capacity = vec.capacity();
        let bytes = Bytes::from(vec);
        self.park(capacity, bytes.clone());
        bytes
    }

    /// Snapshot of this pool's traffic counters.
    pub fn counters(&self) -> PoolCounters {
        PoolCounters {
            leases: self.counters.leases.get(),
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            steals: self.counters.steals.get(),
            resizes: self.counters.resizes.get(),
            bytes_allocated: self.counters.bytes_allocated.get(),
            bytes_recycled: self.counters.bytes_recycled.get(),
        }
    }

    /// Idle buffers currently held (free-listed plus parked), summed
    /// across classes. Test/diagnostic aid.
    pub fn idle_buffers(&self) -> usize {
        self.classes
            .iter()
            .map(|c| {
                c.free.lock().expect("pool free lock").len()
                    + c.parked.lock().expect("pool parked lock").len()
            })
            .sum()
    }
}

impl msd_storage::BlockAlloc for BufferPool {
    fn lease_block(&self, capacity: usize) -> BytesMut {
        BytesMut::from_vec(self.lease_vec(capacity))
    }

    fn seal_block(&self, buf: BytesMut) -> Bytes {
        self.seal(buf)
    }
}

/// The process-wide pool every hot path draws from by default.
pub fn global() -> &'static Arc<BufferPool> {
    static POOL: OnceLock<Arc<BufferPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(BufferPool::new(PoolConfig::default())))
}

/// An owned lease on a pool buffer. Dereferences to the underlying
/// `Vec<u8>` for filling; [`PooledBuf::freeze`] turns it into shareable
/// `Bytes` while parking a reclaim handle in the pool, and plain drop
/// recycles the storage immediately.
#[derive(Debug)]
pub struct PooledBuf {
    vec: Option<Vec<u8>>,
    pool: Option<Arc<BufferPool>>,
}

impl PooledBuf {
    /// Freezes the buffer into immutable shareable `Bytes`. The pool
    /// keeps a parked clone, so once every returned view drops the
    /// backing storage is stolen back by a later lease.
    pub fn freeze(mut self) -> Bytes {
        let vec = self.vec.take().expect("freeze consumed buffer");
        let capacity = vec.capacity();
        let bytes = Bytes::from(vec);
        if let Some(pool) = self.pool.take() {
            pool.park(capacity, bytes.clone());
        }
        bytes
    }

    /// Moves the buffer out without pooling the storage (the caller
    /// takes full ownership; nothing is parked or recycled).
    pub fn into_vec(mut self) -> Vec<u8> {
        self.vec.take().expect("into_vec consumed buffer")
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        self.vec.as_ref().expect("lease still held")
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.vec.as_mut().expect("lease still held")
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let (Some(vec), Some(pool)) = (self.vec.take(), self.pool.take()) {
            pool.recycle_vec(vec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(PoolConfig::default()))
    }

    #[test]
    fn dropped_lease_is_a_hit_next_time() {
        let p = pool();
        let lease = p.lease(4096);
        assert!(lease.capacity() >= 4096);
        drop(lease);
        let again = p.lease(4096);
        let c = p.counters();
        assert_eq!((c.leases, c.hits, c.misses), (2, 1, 1));
        drop(again);
    }

    #[test]
    fn frozen_buffer_reclaims_only_after_views_drop() {
        let p = pool();
        let mut lease = p.lease(2048);
        lease.extend_from_slice(&[7u8; 100]);
        let frozen = lease.freeze();
        let view = frozen.slice(10..20);
        drop(frozen);

        // A view is still alive: the lease below must not steal it.
        let second = p.lease(2048);
        assert_eq!(p.counters().steals, 0);
        assert_eq!(&view[..], &[7u8; 10]);
        drop(second);
        drop(view);

        // All views gone: now the backing vec comes back as a steal.
        let third = p.lease(2048);
        let c = p.counters();
        assert_eq!(c.steals, 1);
        assert!(third.is_empty() && third.capacity() >= 2048);
    }

    #[test]
    fn oversize_requests_bypass_the_pool() {
        let p = pool();
        let big = p.lease((16 << 20) + 1);
        drop(big);
        let again = p.lease((16 << 20) + 1);
        let c = p.counters();
        assert_eq!((c.hits, c.steals, c.misses), (0, 0, 2));
        drop(again);
    }

    #[test]
    fn raw_vec_cycle_round_trips() {
        let p = pool();
        let mut v = p.lease_vec(100);
        v.extend_from_slice(b"head bytes");
        p.recycle_vec(v);
        let v2 = p.lease_vec(100);
        assert!(v2.is_empty() && v2.capacity() >= 1024);
        assert_eq!(p.counters().hits, 1);
    }

    #[test]
    fn seal_parks_for_later_steal() {
        let p = pool();
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(&[1u8; 64]);
        let bytes = p.seal(buf);
        drop(bytes);
        p.lease(4096);
        assert_eq!(p.counters().steals, 1);
    }

    #[test]
    fn class_mapping_round_trips() {
        let p = pool();
        assert_eq!(p.request_class(1), Some(0));
        assert_eq!(p.request_class(1024), Some(0));
        assert_eq!(p.request_class(1025), Some(1));
        assert_eq!(p.request_class(16 << 20), p.return_class(16 << 20));
        assert_eq!(p.request_class((16 << 20) + 1), None);
        assert_eq!(p.return_class(1023), None);
        assert_eq!(p.return_class(3000), Some(1));
        assert_eq!(p.return_class(usize::MAX / 2 + 1), p.return_class(16 << 20));
    }

    use bytes::BufMut;
}
