//! Object store abstraction and latency model.
//!
//! The paper reads training data from HDFS/S3. [`ObjectStore`] abstracts a
//! flat byte-addressed namespace; [`MemStore`] is the in-process
//! implementation used everywhere in the reproduction. [`LatencyModel`]
//! converts operation shapes into virtual-time costs so the simulation can
//! charge realistic read latencies without real I/O.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::error::StorageError;

/// A flat key→bytes object store (HDFS/S3 stand-in).
pub trait ObjectStore: Send + Sync {
    /// Stores an object, replacing any existing one.
    fn put(&self, path: &str, data: Bytes);

    /// Retrieves a whole object.
    fn get(&self, path: &str) -> Result<Bytes, StorageError>;

    /// Retrieves `[offset, offset+len)` of an object (range read — how row
    /// groups are fetched without pulling the whole file).
    fn get_range(&self, path: &str, offset: u64, len: u64) -> Result<Bytes, StorageError> {
        let all = self.get(path)?;
        let start = offset.min(all.len() as u64) as usize;
        let end = (offset + len).min(all.len() as u64) as usize;
        Ok(all.slice(start..end))
    }

    /// Object size in bytes.
    fn len(&self, path: &str) -> Result<u64, StorageError>;

    /// Lists keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Vec<String>;
}

/// Thread-safe in-memory object store.
#[derive(Debug, Default, Clone)]
pub struct MemStore {
    objects: Arc<RwLock<BTreeMap<String, Bytes>>>,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Sum of stored object sizes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.read().values().map(|b| b.len() as u64).sum()
    }
}

impl ObjectStore for MemStore {
    fn put(&self, path: &str, data: Bytes) {
        self.objects.write().insert(path.to_string(), data);
    }

    fn get(&self, path: &str) -> Result<Bytes, StorageError> {
        self.objects
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn len(&self, path: &str) -> Result<u64, StorageError> {
        self.objects
            .read()
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StorageError::NotFound(path.to_string()))
    }

    fn list(&self, prefix: &str) -> Vec<String> {
        self.objects
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }
}

/// Latency model for storage operations, in nanoseconds of virtual time.
///
/// Modeled after HDFS served over a datacenter network: a fixed per-request
/// cost (NameNode lookup + connection round trip) plus a bandwidth term.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Fixed cost per request in nanoseconds.
    pub request_ns: u64,
    /// Sustained read bandwidth in bytes/second.
    pub bandwidth_bps: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            request_ns: 2_000_000, // 2 ms per request
            bandwidth_bps: 1.25e9, // 10 Gb/s per client stream
        }
    }
}

impl LatencyModel {
    /// Virtual-time cost (ns) of reading `bytes` in one request.
    pub fn read_ns(&self, bytes: u64) -> u64 {
        self.request_ns + (bytes as f64 / self.bandwidth_bps * 1e9) as u64
    }

    /// Virtual-time cost (ns) of opening a file (footer fetch: one request
    /// for the tail, one for the footer body).
    pub fn open_ns(&self, footer_bytes: u64) -> u64 {
        2 * self.request_ns + (footer_bytes as f64 / self.bandwidth_bps * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let store = MemStore::new();
        store.put("a/b", Bytes::from_static(b"hello"));
        assert_eq!(store.get("a/b").unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(store.len("a/b").unwrap(), 5);
        assert!(matches!(store.get("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn range_reads() {
        let store = MemStore::new();
        store.put("x", Bytes::from_static(b"0123456789"));
        assert_eq!(
            store.get_range("x", 2, 3).unwrap(),
            Bytes::from_static(b"234")
        );
        // Over-long ranges clamp.
        assert_eq!(
            store.get_range("x", 8, 100).unwrap(),
            Bytes::from_static(b"89")
        );
        assert_eq!(store.get_range("x", 100, 5).unwrap(), Bytes::new());
    }

    #[test]
    fn listing_is_prefix_filtered_and_sorted() {
        let store = MemStore::new();
        store.put("ds/b", Bytes::new());
        store.put("ds/a", Bytes::new());
        store.put("other/z", Bytes::new());
        assert_eq!(
            store.list("ds/"),
            vec!["ds/a".to_string(), "ds/b".to_string()]
        );
        assert_eq!(store.list("nothing/"), Vec::<String>::new());
    }

    #[test]
    fn latency_scales_with_bytes() {
        let m = LatencyModel::default();
        let small = m.read_ns(1 << 10);
        let large = m.read_ns(1 << 30);
        assert!(large > small);
        // 1 GiB at 10 Gb/s is ~859 ms plus request overhead.
        assert!(large > 800_000_000 && large < 1_000_000_000, "{large}");
        assert!(m.open_ns(0) == 2 * m.request_ns);
    }

    #[test]
    fn store_accounting() {
        let store = MemStore::new();
        store.put("a", Bytes::from(vec![0u8; 100]));
        store.put("b", Bytes::from(vec![0u8; 50]));
        assert_eq!(store.object_count(), 2);
        assert_eq!(store.total_bytes(), 150);
        store.put("a", Bytes::from(vec![0u8; 10])); // Replace.
        assert_eq!(store.total_bytes(), 60);
    }
}
