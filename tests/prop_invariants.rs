//! Property-based tests on core invariants.

use std::collections::HashSet;

use proptest::prelude::*;

use megascale_data::balance::{balance, imbalance_factor, BalanceMethod};
use megascale_data::core::buffer::{BufferInfo, BufferSummary};
use megascale_data::core::dgraph::{BalanceOpts, DGraph, MetaView};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::frontier::{FrontierHub, Holder};
use megascale_data::data::{Modality, SampleMeta, SourceId};
use megascale_data::mesh::{
    cp_partition, zigzag_partition, ClientPlaceTree, DeviceMesh, DistributeAxis,
};
use megascale_data::storage::{
    ColumnarReader, ColumnarWriter, DataType, Field, MemStore, ObjectStore, Schema, Value,
};

proptest! {
    /// Every balancing method conserves items: each index lands in exactly
    /// one bin, for any cost vector and bin count.
    #[test]
    fn balancers_conserve_items(
        costs in proptest::collection::vec(0.1f64..1e6, 1..200),
        bins in 1usize..16,
        method_idx in 0usize..3,
    ) {
        let method = BalanceMethod::ALL[method_idx];
        let a = balance(&costs, bins, method);
        prop_assert_eq!(a.bins.len(), bins);
        let mut seen = vec![false; costs.len()];
        for bin in &a.bins {
            for i in bin {
                prop_assert!(!seen[*i]);
                seen[*i] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    /// Cost-aware methods never do worse than 2x the theoretical lower
    /// bound when items are small relative to the total (LPT guarantee).
    #[test]
    fn greedy_quality_bound(
        costs in proptest::collection::vec(1.0f64..100.0, 32..128),
        bins in 2usize..8,
    ) {
        let a = balance(&costs, bins, BalanceMethod::Greedy);
        let sums = a.sums(&costs);
        let total: f64 = costs.iter().sum();
        let lower = (total / bins as f64).max(costs.iter().cloned().fold(0.0, f64::max));
        let makespan = sums.iter().cloned().fold(0.0, f64::max);
        // LPT is a 4/3-approximation; allow 2x slack for tiny inputs.
        prop_assert!(makespan <= lower * 2.0 + 1e-9, "makespan {} lower {}", makespan, lower);
    }

    /// Greedy balanced assignments are at least as good as sequential
    /// chunking on imbalance factor.
    #[test]
    fn balance_beats_chunking(
        costs in proptest::collection::vec(1.0f64..1e4, 24..96),
    ) {
        let bins = 6;
        let balanced = balance(&costs, bins, BalanceMethod::Greedy);
        // Sequential chunking baseline.
        let chunk = costs.len().div_ceil(bins);
        let chunked_sums: Vec<f64> = costs
            .chunks(chunk)
            .map(|c| c.iter().sum::<f64>())
            .chain(std::iter::repeat(0.0))
            .take(bins)
            .collect();
        let fb = imbalance_factor(&balanced.sums(&costs));
        let fc = imbalance_factor(&chunked_sums);
        prop_assert!(fb <= fc + 1e-9, "balanced {} vs chunked {}", fb, fc);
    }

    /// CP partitions cover the sequence exactly, for both styles.
    #[test]
    fn cp_partitions_cover(seq in 0u64..100_000, cp in 1u32..32) {
        let parts = cp_partition(seq, cp);
        let total: u64 = parts.iter().map(|r| r.end - r.start).sum();
        prop_assert_eq!(total, seq);
        let zz = zigzag_partition(seq, cp);
        let mut covered = 0u64;
        for (a, b) in &zz {
            covered += (a.end - a.start) + (b.end - b.start);
        }
        prop_assert_eq!(covered, seq);
    }

    /// ClientPlaceTree buckets partition the world for every axis and
    /// group size, on arbitrary 4D meshes.
    #[test]
    fn tree_buckets_partition_world(
        pp in 1u32..5, dp in 1u32..5, cp in 1u32..5, tp in 1u32..5,
        gs in proptest::option::of(1u32..6),
    ) {
        let mesh = DeviceMesh::pp_dp_cp_tp(pp, dp, cp, tp).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        for axis in [DistributeAxis::DP, DistributeAxis::CP, DistributeAxis::World] {
            let buckets = tree.buckets(axis, gs);
            prop_assert_eq!(buckets.len() as u32, tree.bucket_count(axis, gs));
            let mut all: Vec<u32> = buckets.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..mesh.world_size()).collect::<Vec<_>>());
        }
    }

    /// Mesh coordinates roundtrip through rank_of for arbitrary shapes.
    #[test]
    fn mesh_coords_roundtrip(pp in 1u32..4, dp in 1u32..6, cp in 1u32..4, tp in 1u32..4) {
        let mesh = DeviceMesh::pp_dp_cp_tp(pp, dp, cp, tp).unwrap();
        for rank in 0..mesh.world_size() {
            let coords = mesh.coords(rank).unwrap();
            prop_assert_eq!(mesh.rank_of(&coords).unwrap(), rank);
        }
    }

    /// Columnar files roundtrip arbitrary rows byte-exactly.
    #[test]
    fn columnar_roundtrip(
        rows in proptest::collection::vec(
            (any::<i64>(), ".{0,24}", proptest::collection::vec(any::<u8>(), 0..64)),
            0..50,
        ),
        group_bytes in 64usize..4096,
    ) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("text", DataType::Utf8),
            Field::new("blob", DataType::Bytes),
        ]);
        let mut writer = ColumnarWriter::with_group_size(schema, group_bytes);
        let expected: Vec<Vec<Value>> = rows
            .iter()
            .map(|(id, text, blob)| {
                vec![
                    Value::Int64(*id),
                    Value::Utf8(text.clone()),
                    Value::Bytes(blob.clone().into()),
                ]
            })
            .collect();
        for row in &expected {
            writer.push(row.clone()).unwrap();
        }
        let bytes = writer.finish().unwrap();
        let store = MemStore::new();
        store.put("f", bytes);
        let mut reader = ColumnarReader::open(&store, "f").unwrap();
        let decoded = reader.scan().unwrap();
        prop_assert_eq!(decoded, expected);
    }

    /// Mix schedules always yield normalized, non-negative weights.
    #[test]
    fn schedules_normalize(
        raw in proptest::collection::vec(-2.0f64..10.0, 1..12),
        step in 0u64..10_000,
        ramp in 1u64..5_000,
    ) {
        let n = raw.len();
        let schedules = vec![
            MixSchedule::Static(raw.clone()),
            MixSchedule::Warmup {
                from: raw.clone(),
                to: vec![1.0; n],
                steps: ramp,
            },
            MixSchedule::Staged(vec![(0, raw.clone()), (ramp, vec![1.0; n])]),
        ];
        for s in schedules {
            let w = s.weights(step);
            prop_assert_eq!(w.len(), n);
            prop_assert!(w.iter().all(|x| *x >= 0.0 && x.is_finite()));
            let sum: f64 = w.iter().sum();
            prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-6, "sum = {}", sum);
        }
    }

    /// The serve plane's global step frontier is monotone non-decreasing
    /// under arbitrary interleavings of progress reports (acks), client
    /// reconnects (re-acquires), evictions and stream completions
    /// (releases), and constructor restarts (re-acquires at stale
    /// cursors) — and while any capability is live, the frontier never
    /// exceeds the smallest live holder's cursor. These two facts are
    /// what make "step < frontier" a *proof* of consumption that plan-log
    /// retirement can act on.
    #[test]
    fn frontier_fold_is_monotone_and_bounded_by_live_cursors(
        ops in proptest::collection::vec(
            (0u8..3, any::<bool>(), 0u32..6, 0u64..512),
            1..250,
        ),
    ) {
        let hub = FrontierHub::new();
        let mut last = hub.frontier();
        for (op, ctor, id, v) in ops {
            let holder = if ctor {
                Holder::Constructor(id)
            } else {
                Holder::Client(id)
            };
            match op {
                0 => {
                    // (Re)connect / constructor restart: the granted
                    // cursor is clamped so it never sits below the
                    // frontier and never rewinds a live holder.
                    let granted = hub.acquire(holder, v);
                    prop_assert!(granted >= v, "acquire rewound below the request");
                    prop_assert!(granted >= hub.frontier(), "capability granted below the frontier");
                    prop_assert_eq!(hub.cursor(holder), Some(granted));
                }
                1 => hub.advance(holder, v), // Progress report (possibly stale).
                _ => hub.release(holder),    // Eviction / finish / drop.
            }
            let now = hub.frontier();
            prop_assert!(now >= last, "frontier regressed: {} -> {}", last, now);
            last = now;
            let snap = hub.snapshot();
            if let Some(min) = snap.holders.iter().map(|(_, c)| *c).min() {
                prop_assert!(
                    now <= min,
                    "frontier {} passed a live holder's cursor {}",
                    now,
                    min
                );
            }
        }
    }

    /// DGraph plans partition the participating samples: every sampled id
    /// appears in exactly one bin, and excluded ids in none.
    #[test]
    fn dgraph_plan_partitions_samples(
        n_samples in 1u64..120,
        dp in 1u32..6,
        take in 1usize..100,
        microbatches in 1u32..6,
        seed in 0u64..1000,
    ) {
        let samples: Vec<SampleMeta> = (0..n_samples)
            .map(|i| SampleMeta {
                sample_id: i,
                source: SourceId((i % 3) as u32),
                modality: Modality::Image,
                text_tokens: 10 + (i as u32 * 131) % 500,
                image_patches: 1 + (i as u32 * 29) % 2000,
                raw_bytes: 64,
            })
            .collect();
        let info = BufferInfo::new(vec![BufferSummary {
            loader_id: 0,
            source: SourceId(0),
            samples,
            mean_transform_ns: 1.0,
        }]);
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        // All samples are registered under loader 0 but carry 3 source
        // ids; build the weight vector over the graph's sources.
        let n_sources = g.sources().len();
        let tree = ClientPlaceTree::from_device_mesh(
            &DeviceMesh::pp_dp_cp_tp(1, dp, 1, 1).unwrap(),
        );
        g.init(tree);
        let mut rng = megascale_data::sim::SimRng::seed(seed);
        g.mix(&vec![1.0; n_sources], take, &mut rng).unwrap();
        g.distribute(DistributeAxis::DP, None).unwrap();
        g.cost(|m| (m.total_tokens() as f64).powi(2));
        g.balance(BalanceMethod::Greedy, BalanceOpts::full(microbatches)).unwrap();
        let plan = g.plan(0).unwrap();

        let scheduled: Vec<u64> = plan.all_samples();
        let unique: HashSet<u64> = scheduled.iter().copied().collect();
        prop_assert_eq!(unique.len(), scheduled.len(), "duplicate assignment");
        prop_assert_eq!(scheduled.len(), take.min(n_samples as usize));
        let excluded: HashSet<u64> = plan.excluded.iter().copied().collect();
        prop_assert!(unique.is_disjoint(&excluded));
        prop_assert_eq!(unique.len() + excluded.len(), n_samples as usize);
        // Directives cover exactly the scheduled set.
        let directed: usize = plan.directives.values().map(Vec::len).sum();
        prop_assert_eq!(directed, scheduled.len());
    }
}
