#!/usr/bin/env bash
# Performance-trajectory gate: runs the runtime-throughput bench (plus the
# fig19/fig20 cost-model and actor-scalability reproductions) and emits a
# machine-readable BENCH_runtime.json (samples/sec per deployment and
# client count) at the repo root. Run from the repo root.
set -euo pipefail

OUT="${BENCH_RUNTIME_JSON:-BENCH_runtime.json}"
# Cargo runs bench binaries with the package directory as cwd; hand the
# bench an absolute path so the report lands at the repo root.
case "${OUT}" in
  /*) ;;
  *) OUT="$(pwd)/${OUT}" ;;
esac

echo "==> compile benches (release)"
cargo build --release --benches

echo "==> runtime_throughput (writes ${OUT})"
BENCH_JSON_OUT="${OUT}" cargo bench -p msd_bench --bench runtime_throughput

echo "==> fig19_cost_model"
cargo bench -p msd_bench --bench fig19_cost_model

echo "==> fig20_actor_scalability"
cargo bench -p msd_bench --bench fig20_actor_scalability

echo "Bench gate passed; report at ${OUT}."
