//! Table 2 — API cost for data orchestration under scaled setups.
//!
//! Wall-clock cost of the `cost()` and `balance()` primitives as the
//! workload scales: baseline (Llama-12B + ViT-2B, 288 GPUs, BS 72, 8k),
//! then BS 72→144, seq 8k→16k, cluster 288→1152, and group size 1→2 at
//! 1152 GPUs. These are *real measurements* of the DGraph implementation,
//! not simulation. Paper: cost 0.004→0.107 s, balance 0.016→0.357 s —
//! always orders of magnitude below iteration time.

use std::collections::HashMap;

use msd_balance::BalanceMethod;
use msd_bench::{banner, plan_to_loads, table_header, table_row};
use msd_core::buffer::{BufferInfo, BufferSummary};
use msd_core::dgraph::{BalanceOpts, DGraph, MetaView};
use msd_data::catalog::navit_like;
use msd_data::SampleMeta;
use msd_mesh::{ClientPlaceTree, DeviceMesh, DistributeAxis};
use msd_sim::SimRng;
use msd_train::models::vlm_preset;
use msd_train::{GpuSpec, TrainSetup};

struct Case {
    label: &'static str,
    mesh: DeviceMesh,
    samples: usize,
    ctx: u64,
    group: Option<u32>,
}

/// Builds a gathered buffer view with `n` samples across 32 loaders.
fn buffers(n: usize, ctx: u64, rng: &mut SimRng) -> BufferInfo {
    let catalog = navit_like(rng);
    let loaders = 32u32;
    let per = n.div_ceil(loaders as usize);
    let summaries = (0..loaders)
        .map(|l| {
            let spec = &catalog.sources()[(l as usize * 7) % catalog.len()];
            BufferSummary {
                loader_id: l,
                source: spec.id,
                samples: (0..per)
                    .map(|i| {
                        let m = spec.sample_meta(rng, i as u64);
                        SampleMeta {
                            sample_id: (u64::from(l) << 40) | i as u64,
                            text_tokens: m.text_tokens.min(ctx as u32),
                            image_patches: m.image_patches.min(ctx as u32),
                            ..m
                        }
                    })
                    .collect(),
                mean_transform_ns: 1000.0,
            }
        })
        .collect();
    BufferInfo::new(summaries)
}

fn main() {
    banner(
        "Table 2",
        "API cost for data orchestration (measured wall clock)",
    );
    let model = vlm_preset("ViT-2B", "Llama-12B");
    let cases = vec![
        Case {
            label: "baseline (288 GPUs, BS72, 8k)",
            mesh: DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap(),
            samples: 72 * 288 / 4,
            ctx: 8192,
            group: None,
        },
        Case {
            label: "+BS 72 -> 144",
            mesh: DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap(),
            samples: 144 * 288 / 4,
            ctx: 8192,
            group: None,
        },
        Case {
            label: "+Seq 8k -> 16k",
            mesh: DeviceMesh::pp_dp_cp_tp(8, 9, 1, 4).unwrap(),
            samples: 72 * 288 / 4,
            ctx: 16384,
            group: None,
        },
        Case {
            label: "+Cluster 288 -> 1152",
            mesh: DeviceMesh::pp_dp_cp_tp(8, 36, 1, 4).unwrap(),
            samples: 72 * 1152 / 4,
            ctx: 8192,
            group: None,
        },
        Case {
            label: "+Group 1 -> 2, 1152 GPUs",
            mesh: DeviceMesh::pp_dp_cp_tp(8, 36, 1, 4).unwrap(),
            samples: 72 * 1152 / 4,
            ctx: 8192,
            group: Some(2),
        },
    ];

    table_header(&["case", "cost_s", "balance_s", "iter_s"]);
    for case in cases {
        let mut rng = SimRng::seed(2);
        let info = buffers(case.samples, case.ctx, &mut rng);
        let tree = ClientPlaceTree::from_device_mesh(&case.mesh);
        let mut g = DGraph::from_buffer_infos(&info, MetaView::Tokens);
        g.init(tree);
        g.distribute(DistributeAxis::DP, case.group)
            .expect("distribute");
        let backbone = model.backbone;
        g.cost(move |m| backbone.flops(m.total_tokens()));
        g.balance(BalanceMethod::Greedy, BalanceOpts::inter_microbatch(8))
            .expect("balance");
        let plan = g.plan(0).expect("plan");

        // Iteration time for the same plan, for the "much smaller than
        // training" comparison the paper makes.
        let metas: HashMap<u64, SampleMeta> = info
            .iter_samples()
            .map(|(_, m)| (m.sample_id, *m))
            .collect();
        let setup = TrainSetup::new(case.mesh.clone(), GpuSpec::l20(), model.clone());
        let loads = plan_to_loads(&plan, &metas, &model, &case.mesh, case.ctx);
        let iter_s = setup.iteration(&loads).total_s();

        table_row(&[
            case.label.to_string(),
            format!("{:.4}", g.cost_api_ns as f64 / 1e9),
            format!("{:.4}", g.balance_api_ns as f64 / 1e9),
            format!("{iter_s:.2}"),
        ]);
    }
    println!("\n[paper: cost 0.004 -> 0.107 s; balance 0.016 -> 0.357 s; iter ~14-17 s]");
    println!("Group size caps the balance() growth at large clusters (fewer buckets).");
}
