//! The Strategy Optimizer (paper §9, "Future Work").
//!
//! Because the data plane is declarative, an orchestration strategy can be
//! represented as a *program* — a sequence of primitive operations over a
//! [`DGraph`] — and rewritten before execution. This module implements the
//! paper's proposed optimizer: rule-based rewriting that removes dead
//! primitives and fuses adjacent ones, provably preserving the resulting
//! [`crate::plan::LoadingPlan`].
//!
//! Implemented rewrite rules:
//!
//! | rule | pattern | rewrite |
//! |---|---|---|
//! | dead cost | `cost(f); …; cost(g)` with no balance between | drop `cost(f)` |
//! | dead balance | `balance(_); …; balance(inter_bucket=true)` | drop the earlier |
//! | dead mix | `mix(_); …; mix(_)` with no distribute/balance between | drop the earlier |
//! | broadcast dedup | repeated `broadcast_at(axis)` | keep the first |
//! | distribute∘balance fusion | `distribute(a); balance(inter_bucket=true)` | `distribute_lazy(a); balance(…)` |
//! | lineage elision | production mode | skip lineage recording |
//!
//! Costs are expressed as serializable [`CostExpr`]s rather than closures so
//! the optimizer can reason about (and deduplicate) them, and so programs
//! can be checkpointed alongside Replay Mode plan stores.

use std::collections::HashMap;

use msd_balance::{BackboneShape, BalanceMethod, EncoderShape};
use msd_data::SampleMeta;
use msd_mesh::{Axis, DistributeAxis};
use msd_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::dgraph::{BalanceOpts, DGraph, DGraphError};

/// A serializable per-sample cost function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CostExpr {
    /// Total (text + image) tokens.
    Tokens,
    /// Text tokens only.
    TextTokens,
    /// Image patches only.
    ImagePatches,
    /// `scale · tokens²` — the attention-dominated regime.
    QuadraticTokens {
        /// Multiplier applied to the squared token count.
        scale: f64,
    },
    /// Full backbone FLOPs model over total tokens.
    Backbone(BackboneShape),
    /// Full encoder FLOPs model over image patches.
    Encoder(EncoderShape),
}

impl CostExpr {
    /// Evaluates the expression on one sample's metadata.
    pub fn eval(&self, meta: &SampleMeta) -> f64 {
        match self {
            CostExpr::Tokens => meta.total_tokens() as f64,
            CostExpr::TextTokens => f64::from(meta.text_tokens),
            CostExpr::ImagePatches => f64::from(meta.image_patches),
            CostExpr::QuadraticTokens { scale } => {
                let t = meta.total_tokens() as f64;
                scale * t * t
            }
            CostExpr::Backbone(shape) => shape.flops(meta.total_tokens()),
            CostExpr::Encoder(shape) => shape.flops_sample(u64::from(meta.image_patches)),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CostExpr::Tokens => "tokens",
            CostExpr::TextTokens => "text_tokens",
            CostExpr::ImagePatches => "image_patches",
            CostExpr::QuadraticTokens { .. } => "tokens^2",
            CostExpr::Backbone(_) => "backbone_flops",
            CostExpr::Encoder(_) => "encoder_flops",
        }
    }
}

/// One primitive operation of a declarative orchestration program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategyOp {
    /// `mix(weights, take)` — probabilistic source selection.
    Mix {
        /// Per-source weights in [`DGraph::sources`] order.
        weights: Vec<f64>,
        /// Samples to select.
        take: usize,
    },
    /// `distribute(axis, group_size)`.
    Distribute {
        /// Distribution axis.
        axis: DistributeAxis,
        /// Optional bucket grouping.
        group_size: Option<u32>,
    },
    /// Lazy distribute (produced by fusion; see [`DGraph::distribute_lazy`]).
    DistributeLazy {
        /// Distribution axis.
        axis: DistributeAxis,
        /// Optional bucket grouping.
        group_size: Option<u32>,
    },
    /// `cost(expr)`.
    Cost(CostExpr),
    /// `balance(method, opts)`.
    Balance {
        /// Bin-packing method.
        method: BalanceMethod,
        /// Balancing levels and microbatch count.
        opts: BalanceOpts,
    },
    /// Sequential chunking into microbatches (the unbalanced baseline).
    Chunk {
        /// Microbatches per bucket.
        microbatches: u32,
    },
    /// `broadcast_at(axis)`.
    BroadcastAt(Axis),
}

impl StrategyOp {
    /// Whether this op consumes previously registered costs.
    fn consumes_cost(&self) -> bool {
        matches!(self, StrategyOp::Balance { .. })
    }

    /// Whether this op consumes previously assigned buckets/bins.
    fn consumes_assignment(&self) -> bool {
        matches!(
            self,
            StrategyOp::Balance {
                opts: BalanceOpts {
                    inter_bucket: false,
                    ..
                },
                ..
            }
        )
    }

    /// Whether this op overwrites every bucket/bin assignment.
    fn overwrites_assignment(&self) -> bool {
        matches!(
            self,
            StrategyOp::Balance {
                opts: BalanceOpts {
                    inter_bucket: true,
                    ..
                },
                ..
            }
        )
    }

    /// Whether this op consumes the mix selection (making an earlier `mix`
    /// observable).
    fn consumes_selection(&self) -> bool {
        matches!(
            self,
            StrategyOp::Distribute { .. }
                | StrategyOp::DistributeLazy { .. }
                | StrategyOp::Cost(_)
                | StrategyOp::Balance { .. }
                | StrategyOp::Chunk { .. }
        )
    }
}

/// Which rewrites fired, and how often.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizeReport {
    /// Dead `cost` ops removed.
    pub dead_costs: u32,
    /// Dead `balance`/`chunk` ops removed.
    pub dead_balances: u32,
    /// Dead `mix` ops removed.
    pub dead_mixes: u32,
    /// Duplicate `broadcast_at` ops removed.
    pub duplicate_broadcasts: u32,
    /// `distribute` ops fused into a following inter-bucket `balance`.
    pub fused_distributes: u32,
    /// Whether lineage recording was elided.
    pub lineage_elided: bool,
}

impl OptimizeReport {
    /// Total ops removed or fused.
    pub fn total_rewrites(&self) -> u32 {
        self.dead_costs
            + self.dead_balances
            + self.dead_mixes
            + self.duplicate_broadcasts
            + self.fused_distributes
    }
}

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizeOpts {
    /// Production mode: additionally elide lineage recording. Lineage is
    /// the one observable the optimizer is allowed to change — plans are
    /// always preserved exactly.
    pub elide_lineage: bool,
}

/// A declarative orchestration program: ordered primitives over a
/// [`DGraph`], executable directly or after [`StrategyProgram::optimize`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyProgram {
    /// The primitive sequence.
    pub ops: Vec<StrategyOp>,
    /// Whether execution records lineage (set false by the optimizer in
    /// production mode).
    pub record_lineage: bool,
}

impl StrategyProgram {
    /// A program from ops, with lineage recording on.
    pub fn new(ops: Vec<StrategyOp>) -> Self {
        StrategyProgram {
            ops,
            record_lineage: true,
        }
    }

    /// Executes the program on `graph` in order.
    ///
    /// RNG discipline: exactly one value is drawn from `rng` per run; each
    /// *observable* `mix` (one whose selection some later op consumes)
    /// draws from its own substream keyed by its observable ordinal. Dead
    /// mixes use throwaway substreams. This makes execution invariant
    /// under dead-op elimination — the optimizer's plan-identity guarantee
    /// depends on it.
    pub fn run(&self, graph: &mut DGraph, rng: &mut SimRng) -> Result<(), DGraphError> {
        graph.set_record_lineage(self.record_lineage);
        let base = rng.next();
        let substream = |id: u64| SimRng::seed(base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(id));
        // Mixes are numbered by their ordinal among *live* mixes (the ones
        // surviving liveness analysis) so that executing a program and its
        // optimized form draw identical selections.
        let live = liveness(&self.ops);
        let mut live_ordinal = 0u64;
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                StrategyOp::Mix { weights, take } => {
                    let id = if live[i] {
                        live_ordinal += 1;
                        live_ordinal
                    } else {
                        // Effect fully overwritten by a later mix; any
                        // substream works, but keep it distinct.
                        u64::MAX - i as u64
                    };
                    graph.mix(weights, *take, &mut substream(id))?;
                }
                StrategyOp::Distribute { axis, group_size } => {
                    graph.distribute(*axis, *group_size).map(|_| ())?;
                }
                StrategyOp::DistributeLazy { axis, group_size } => {
                    graph.distribute_lazy(*axis, *group_size).map(|_| ())?;
                }
                StrategyOp::Cost(expr) => {
                    let expr = expr.clone();
                    graph.cost(move |meta| expr.eval(meta));
                }
                StrategyOp::Balance { method, opts } => graph.balance(*method, *opts)?,
                StrategyOp::Chunk { microbatches } => graph.chunk_microbatches(*microbatches)?,
                StrategyOp::BroadcastAt(axis) => graph.broadcast_at(*axis),
            }
        }
        Ok(())
    }

    /// Rewrites the program, returning the optimized program and a report
    /// of the rules that fired. The optimized program produces a
    /// plan identical to the original's (lineage excepted when
    /// `opts.elide_lineage` is set).
    pub fn optimize(&self, opts: OptimizeOpts) -> (StrategyProgram, OptimizeReport) {
        let mut report = OptimizeReport::default();
        let n = self.ops.len();

        // Fixpoint liveness for cost/balance/mix (see [`liveness`]); the
        // executor uses the same analysis for mix-substream numbering, so
        // removal never shifts a surviving mix's randomness.
        let mut keep = liveness(&self.ops);
        for (op, live) in self.ops.iter().zip(&keep) {
            if *live {
                continue;
            }
            match op {
                StrategyOp::Cost(_) => report.dead_costs += 1,
                StrategyOp::Balance { .. } | StrategyOp::Chunk { .. } => {
                    report.dead_balances += 1;
                }
                StrategyOp::Mix { .. } => report.dead_mixes += 1,
                _ => {}
            }
        }

        // Broadcast dedup: broadcast_at is idempotent per axis.
        let mut seen_axes: Vec<Axis> = Vec::new();
        for (op, keep_op) in self.ops.iter().zip(keep.iter_mut()) {
            if let StrategyOp::BroadcastAt(axis) = op {
                if seen_axes.contains(axis) {
                    *keep_op = false;
                    report.duplicate_broadcasts += 1;
                } else {
                    seen_axes.push(*axis);
                }
            }
        }

        // Assemble survivors, fusing distribute → balance(inter_bucket).
        let mut ops: Vec<StrategyOp> = Vec::with_capacity(n);
        let survivors: Vec<&StrategyOp> = self
            .ops
            .iter()
            .zip(&keep)
            .filter(|(_, k)| **k)
            .map(|(op, _)| op)
            .collect();
        // A distribute fuses with the next assignment-writer when every op
        // between them is transparent to assignments (cost reads only the
        // participant set; broadcast_at reads nothing) and that writer
        // recomputes every assignment from scratch.
        let fuses_forward = |from: usize| -> bool {
            for op in &survivors[from + 1..] {
                match op {
                    StrategyOp::Cost(_) | StrategyOp::BroadcastAt(_) => continue,
                    _ => return op.overwrites_assignment(),
                }
            }
            false
        };
        let mut i = 0;
        while i < survivors.len() {
            let op = survivors[i];
            let fusable = matches!(op, StrategyOp::Distribute { .. }) && fuses_forward(i);
            if fusable {
                if let StrategyOp::Distribute { axis, group_size } = op {
                    ops.push(StrategyOp::DistributeLazy {
                        axis: *axis,
                        group_size: *group_size,
                    });
                    report.fused_distributes += 1;
                }
            } else {
                ops.push(op.clone());
            }
            i += 1;
        }

        report.lineage_elided = opts.elide_lineage;
        (
            StrategyProgram {
                ops,
                record_lineage: self.record_lineage && !opts.elide_lineage,
            },
            report,
        )
    }

    /// The VLM backbone program of Fig 9 as a reusable constructor.
    // One argument per declarative primitive, in strategy order.
    #[allow(clippy::too_many_arguments)]
    pub fn backbone_balance(
        weights: Vec<f64>,
        take: usize,
        axis: DistributeAxis,
        group_size: Option<u32>,
        cost: CostExpr,
        method: BalanceMethod,
        microbatches: u32,
        broadcasts: &[Axis],
    ) -> Self {
        let mut ops = vec![
            StrategyOp::Mix { weights, take },
            StrategyOp::Distribute { axis, group_size },
        ];
        ops.extend(broadcasts.iter().map(|a| StrategyOp::BroadcastAt(*a)));
        ops.push(StrategyOp::Cost(cost));
        ops.push(StrategyOp::Balance {
            method,
            opts: BalanceOpts::full(microbatches),
        });
        StrategyProgram::new(ops)
    }
}

/// Fixpoint liveness analysis over cost/balance/mix ops.
///
/// An op is *dead* when its only observers are themselves dead — e.g. a
/// `cost` whose sole consumer is a `balance` that a later inter-bucket
/// `balance` fully overwrites. Single-pass scans miss such chains (and,
/// worse, removing a dead consumer can retroactively kill its producer),
/// so deadness is iterated to a fixpoint with dead ops skipped during
/// scans. Both the optimizer (removal) and the executor (mix-substream
/// numbering) use this same analysis, which is what makes dead-op
/// elimination plan-identity-preserving.
fn liveness(ops: &[StrategyOp]) -> Vec<bool> {
    let n = ops.len();
    let mut live = vec![true; n];
    loop {
        let mut changed = false;
        for i in 0..n {
            if !live[i] {
                continue;
            }
            let successors = || {
                ops[i + 1..]
                    .iter()
                    .zip(&live[i + 1..])
                    .filter(|(_, l)| **l)
                    .map(|(op, _)| op)
            };
            let dead = match &ops[i] {
                // Dead cost: another cost follows before any cost-consumer.
                // The last cost always stays — `plan()` reports per-bin
                // totals under the final costs.
                StrategyOp::Cost(_) => {
                    let mut verdict = false;
                    for op in successors() {
                        if op.consumes_cost() {
                            break;
                        }
                        if matches!(op, StrategyOp::Cost(_)) {
                            verdict = true;
                            break;
                        }
                    }
                    verdict
                }
                // Dead balance/chunk: a later inter-bucket balance
                // overwrites every assignment before anything reads it.
                StrategyOp::Balance { .. } | StrategyOp::Chunk { .. } => {
                    let mut verdict = false;
                    for op in successors() {
                        if op.consumes_assignment() {
                            break;
                        }
                        if op.overwrites_assignment() {
                            verdict = true;
                            break;
                        }
                    }
                    verdict
                }
                // Dead mix: another mix follows before any op consumes the
                // selection (mix re-queues *all* nodes, so the later one
                // fully overwrites). A trailing mix is observable: `plan()`
                // reads the states it rewrites.
                StrategyOp::Mix { .. } => {
                    let mut verdict = false;
                    for op in successors() {
                        if op.consumes_selection() {
                            break;
                        }
                        if matches!(op, StrategyOp::Mix { .. }) {
                            verdict = true;
                            break;
                        }
                    }
                    verdict
                }
                _ => false,
            };
            if dead {
                live[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    live
}

/// Convenience: a `sample_id → cost` table as a [`DGraph::cost`] closure
/// (used with Ahead-of-Fetch stored costs; absent ids cost 0).
pub fn table_costfn(table: HashMap<u64, f64>) -> impl Fn(&SampleMeta) -> f64 {
    move |meta| table.get(&meta.sample_id).copied().unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{BufferInfo, BufferSummary};
    use crate::plan::LoadingPlan;
    use msd_data::{Modality, SourceId};
    use msd_mesh::{ClientPlaceTree, DeviceMesh};

    fn info() -> BufferInfo {
        let mk = |loader: u32, src: u32, n: u64| BufferSummary {
            loader_id: loader,
            source: SourceId(src),
            samples: (0..n)
                .map(|i| SampleMeta {
                    sample_id: (u64::from(src) << 48) | i,
                    source: SourceId(src),
                    modality: Modality::Image,
                    text_tokens: 10 + (i as u32 * 53) % 300,
                    image_patches: 100 + (i as u32 * 97) % 2000,
                    raw_bytes: 256,
                })
                .collect(),
            mean_transform_ns: 100.0,
        };
        BufferInfo::new(vec![mk(0, 0, 40), mk(1, 1, 40)])
    }

    fn graph() -> DGraph {
        let mut g = DGraph::from_buffer_infos(&info(), crate::dgraph::MetaView::Tokens);
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).unwrap();
        g.init(ClientPlaceTree::from_device_mesh(&mesh));
        g
    }

    fn run_both(program: &StrategyProgram, opts: OptimizeOpts) -> (LoadingPlan, LoadingPlan) {
        let (optimized, _) = program.optimize(opts);
        let mut g1 = graph();
        let mut g2 = graph();
        let mut r1 = SimRng::seed(99);
        let mut r2 = SimRng::seed(99);
        program.run(&mut g1, &mut r1).unwrap();
        optimized.run(&mut g2, &mut r2).unwrap();
        (g1.plan(0).unwrap(), g2.plan(0).unwrap())
    }

    fn redundant_program() -> StrategyProgram {
        StrategyProgram::new(vec![
            StrategyOp::Mix {
                weights: vec![1.0, 1.0],
                take: 80,
            },
            StrategyOp::Mix {
                weights: vec![1.0, 2.0],
                take: 48,
            },
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
            StrategyOp::BroadcastAt(Axis::TP),
            StrategyOp::BroadcastAt(Axis::TP),
            StrategyOp::Cost(CostExpr::TextTokens),
            StrategyOp::Cost(CostExpr::QuadraticTokens { scale: 1.0 }),
            StrategyOp::Chunk { microbatches: 2 },
            StrategyOp::Balance {
                method: BalanceMethod::Greedy,
                opts: BalanceOpts::full(2),
            },
        ])
    }

    #[test]
    fn cost_exprs_evaluate() {
        let meta = SampleMeta {
            sample_id: 1,
            source: SourceId(0),
            modality: Modality::Image,
            text_tokens: 30,
            image_patches: 70,
            raw_bytes: 0,
        };
        assert_eq!(CostExpr::Tokens.eval(&meta), 100.0);
        assert_eq!(CostExpr::TextTokens.eval(&meta), 30.0);
        assert_eq!(CostExpr::ImagePatches.eval(&meta), 70.0);
        assert_eq!(CostExpr::QuadraticTokens { scale: 0.5 }.eval(&meta), 5000.0);
    }

    #[test]
    fn optimizer_removes_all_redundancies() {
        let program = redundant_program();
        let (optimized, report) = program.optimize(OptimizeOpts::default());
        assert_eq!(report.dead_mixes, 1);
        assert_eq!(report.duplicate_broadcasts, 1);
        assert_eq!(report.dead_costs, 1);
        assert_eq!(report.dead_balances, 1); // The chunk.
        assert_eq!(report.fused_distributes, 1);
        assert_eq!(report.total_rewrites(), 5);
        // 9 ops − 4 removed, distribute swapped for lazy.
        assert_eq!(optimized.ops.len(), 5);
        assert!(matches!(
            optimized.ops[1],
            StrategyOp::DistributeLazy { .. }
        ));
    }

    #[test]
    fn optimized_program_produces_identical_plan() {
        let (original, optimized) = run_both(&redundant_program(), OptimizeOpts::default());
        assert_eq!(original, optimized);
    }

    #[test]
    fn lineage_elision_preserves_plan_but_drops_trace() {
        let program = redundant_program();
        let (optimized, report) = program.optimize(OptimizeOpts {
            elide_lineage: true,
        });
        assert!(report.lineage_elided);
        assert!(!optimized.record_lineage);
        let mut g1 = graph();
        let mut g2 = graph();
        let mut r1 = SimRng::seed(5);
        let mut r2 = SimRng::seed(5);
        program.run(&mut g1, &mut r1).unwrap();
        optimized.run(&mut g2, &mut r2).unwrap();
        assert_eq!(g1.plan(3).unwrap(), g2.plan(3).unwrap());
        assert!(!g1.lineage().is_empty());
        assert!(g2.lineage().is_empty());
    }

    #[test]
    fn cost_before_consumer_is_not_dead() {
        // cost → balance → cost: both costs observable (first by the
        // balance, second by plan()'s bin totals).
        let program = StrategyProgram::new(vec![
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
            StrategyOp::Cost(CostExpr::Tokens),
            StrategyOp::Balance {
                method: BalanceMethod::Greedy,
                opts: BalanceOpts::full(2),
            },
            StrategyOp::Cost(CostExpr::ImagePatches),
        ]);
        let (optimized, report) = program.optimize(OptimizeOpts::default());
        assert_eq!(report.dead_costs, 0);
        assert_eq!(optimized.ops.len(), 4);
        let (p1, p2) = run_both(&program, OptimizeOpts::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn balance_before_intra_only_balance_is_not_dead() {
        // balance(full) → balance(intra-only): the second reads the first's
        // bucket assignment; the first must survive.
        let program = StrategyProgram::new(vec![
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
            StrategyOp::Cost(CostExpr::Tokens),
            StrategyOp::Balance {
                method: BalanceMethod::KarmarkarKarp,
                opts: BalanceOpts::full(2),
            },
            StrategyOp::Balance {
                method: BalanceMethod::Greedy,
                opts: BalanceOpts::inter_microbatch(2),
            },
        ]);
        let (_, report) = program.optimize(OptimizeOpts::default());
        assert_eq!(report.dead_balances, 0);
        // Distribute DOES fuse: the cost between it and the full balance is
        // transparent, the full balance recomputes all assignments, and the
        // intra-only balance then reads the *full balance's* buckets —
        // never distribute's.
        assert_eq!(report.fused_distributes, 1);
        let (p1, p2) = run_both(&program, OptimizeOpts::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn mix_before_consumer_is_not_dead() {
        // mix → cost → mix: the first mix's selection feeds cost's
        // participant set... cost applies to participants, so the first mix
        // is observable.
        let program = StrategyProgram::new(vec![
            StrategyOp::Mix {
                weights: vec![1.0, 0.0],
                take: 10,
            },
            StrategyOp::Cost(CostExpr::Tokens),
            StrategyOp::Mix {
                weights: vec![0.0, 1.0],
                take: 10,
            },
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
        ]);
        let (_, report) = program.optimize(OptimizeOpts::default());
        assert_eq!(report.dead_mixes, 0);
    }

    #[test]
    fn fused_lazy_distribute_matches_eager() {
        let program = StrategyProgram::new(vec![
            StrategyOp::Mix {
                weights: vec![1.0, 1.0],
                take: 32,
            },
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
            StrategyOp::Cost(CostExpr::QuadraticTokens { scale: 1e-3 }),
            StrategyOp::Balance {
                method: BalanceMethod::Greedy,
                opts: BalanceOpts::full(4),
            },
        ]);
        let (optimized, report) = program.optimize(OptimizeOpts::default());
        // Cost between distribute and balance is transparent → fuses.
        assert_eq!(report.fused_distributes, 1);
        let (p1, p2) = run_both(&program, OptimizeOpts::default());
        assert_eq!(p1, p2);
        let _ = optimized;

        // Adjacent case fuses and matches too.
        let adjacent = StrategyProgram::new(vec![
            StrategyOp::Mix {
                weights: vec![1.0, 1.0],
                take: 32,
            },
            StrategyOp::Cost(CostExpr::QuadraticTokens { scale: 1e-3 }),
            StrategyOp::Distribute {
                axis: DistributeAxis::DP,
                group_size: None,
            },
            StrategyOp::Balance {
                method: BalanceMethod::Greedy,
                opts: BalanceOpts::full(4),
            },
        ]);
        let (_, report) = adjacent.optimize(OptimizeOpts::default());
        assert_eq!(report.fused_distributes, 1);
        let (p1, p2) = run_both(&adjacent, OptimizeOpts::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn program_round_trips_through_json() {
        let program = redundant_program();
        let json = serde_json::to_string(&program).unwrap();
        let back: StrategyProgram = serde_json::from_str(&json).unwrap();
        assert_eq!(program, back);
    }

    #[test]
    fn optimizer_is_idempotent() {
        let program = redundant_program();
        let (once, _) = program.optimize(OptimizeOpts::default());
        let (twice, report) = once.optimize(OptimizeOpts::default());
        assert_eq!(once, twice);
        assert_eq!(report.total_rewrites(), 0);
    }

    #[test]
    fn backbone_constructor_shape() {
        let program = StrategyProgram::backbone_balance(
            vec![1.0, 1.0],
            32,
            DistributeAxis::DP,
            None,
            CostExpr::Tokens,
            BalanceMethod::Greedy,
            2,
            &[Axis::TP, Axis::CP],
        );
        assert_eq!(program.ops.len(), 6);
        let mut g = graph();
        let mut rng = SimRng::seed(1);
        program.run(&mut g, &mut rng).unwrap();
        let plan = g.plan(0).unwrap();
        assert_eq!(plan.all_samples().len(), 32);
        assert_eq!(plan.broadcast_axes, vec![Axis::TP, Axis::CP]);
    }

    #[test]
    fn table_costfn_looks_up_ids() {
        let mut table = HashMap::new();
        table.insert(7u64, 42.0);
        let f = table_costfn(table);
        let mut meta = SampleMeta {
            sample_id: 7,
            source: SourceId(0),
            modality: Modality::Text,
            text_tokens: 1,
            image_patches: 0,
            raw_bytes: 0,
        };
        assert_eq!(f(&meta), 42.0);
        meta.sample_id = 8;
        assert_eq!(f(&meta), 0.0);
    }
}
