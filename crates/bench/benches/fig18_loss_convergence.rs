//! Fig 18 — Impact of the balancer on training-loss convergence.
//!
//! Runs the same data stream through the unbalanced and balanced pipelines
//! and feeds the resulting microbatch compositions into the loss
//! simulator, (a) without and (b) with Context Parallelism. The paper's
//! conservative configuration (inter-microbatch only) leaves convergence
//! intact; CP adds minor numerical fluctuation.

use msd_balance::BalanceMethod;
use msd_bench::{banner, table_header, table_row, Scenario};
use msd_core::planner::Strategy;
use msd_data::catalog::navit_like;
use msd_mesh::DeviceMesh;
use msd_sim::SimRng;
use msd_train::models::vlm_preset;
use msd_train::LossSim;

fn curve(scenario: &Scenario, strategy: Strategy, cp: bool, reordered: bool) -> Vec<f64> {
    let mut msd = scenario.pipeline(strategy, 18);
    let mut sim = LossSim::new(1818, cp);
    (0..50)
        .map(|_| {
            let out = msd.step().expect("step");
            // Microbatch token counts of the first bucket (one replica).
            let mb: Vec<u64> = out.plan.buckets[0]
                .bins
                .iter()
                .map(|bin| {
                    bin.samples
                        .iter()
                        .filter_map(|id| out.metas.get(id))
                        .map(|m| m.total_tokens())
                        .sum()
                })
                .collect();
            sim.step(&mb, reordered)
        })
        .collect()
}

fn main() {
    banner("Figure 18", "Balancer impact on training loss convergence");
    let mut rng = SimRng::seed(18);
    let catalog = navit_like(&mut rng);
    let model = vlm_preset("ViT-1B", "Llama-12B");

    for (label, cp) in [("(a) without CP", false), ("(b) with CP", true)] {
        let mesh = if cp {
            DeviceMesh::pp_dp_cp_tp(1, 2, 2, 1).unwrap()
        } else {
            DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).unwrap()
        };
        let scenario = Scenario {
            mesh,
            model: model.clone(),
            ctx: 8192,
            microbatches: 4,
            samples_per_step: 64,
            catalog: catalog.clone(),
        };
        let base = curve(&scenario, Strategy::Vanilla, cp, false);
        let balanced = curve(
            &scenario,
            Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: model.backbone,
            },
            cp,
            true,
        );
        println!("\n{label}:");
        table_header(&["step", "balance=False", "balance=True", "gap"]);
        for step in (0..50).step_by(10).chain([49]) {
            table_row(&[
                step.to_string(),
                format!("{:.3}", base[step]),
                format!("{:.3}", balanced[step]),
                format!("{:+.3}", balanced[step] - base[step]),
            ]);
        }
        let max_gap = base
            .iter()
            .zip(&balanced)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!("max |gap| over 50 steps: {max_gap:.4}");
        let tail_base: f64 = base[45..].iter().sum::<f64>() / 5.0;
        let tail_bal: f64 = balanced[45..].iter().sum::<f64>() / 5.0;
        println!("tail means: base {tail_base:.3} vs balanced {tail_bal:.3}  (both converge)");
    }
    println!("\n[paper: (a) curves tightly track; (b) CP adds minor fluctuation, still converges]");
}
