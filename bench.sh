#!/usr/bin/env bash
# Performance-trajectory gate: runs the runtime-throughput bench (plus the
# fig19/fig20 cost-model and actor-scalability reproductions) and emits a
# machine-readable BENCH_runtime.json (samples/sec per deployment and
# client count) at the repo root. Run from the repo root.
set -euo pipefail

OUT="${BENCH_RUNTIME_JSON:-BENCH_runtime.json}"
# Cargo runs bench binaries with the package directory as cwd; hand the
# bench an absolute path so the report lands at the repo root.
case "${OUT}" in
  /*) ;;
  *) OUT="$(pwd)/${OUT}" ;;
esac

# Extracts a serve@N samples/sec figure (first match) or a top-level
# scalar field from a BENCH_runtime.json file; prints "n/a" when absent.
json_metric() { # file key
  awk -v key="\"$2\":" '
    $1 == key { gsub(/[,"]/, "", $2); print $2; found = 1; exit }
    END { if (!found) print "n/a" }' "$1" 2>/dev/null || echo "n/a"
}

# Stash the committed report for the post-run regression summary.
OLD_JSON=""
if [[ -f "${OUT}" ]]; then
  OLD_JSON="$(mktemp)"
  cp "${OUT}" "${OLD_JSON}"
fi

echo "==> compile benches (release)"
cargo build --release --benches

echo "==> runtime_throughput (writes ${OUT})"
BENCH_JSON_OUT="${OUT}" cargo bench -p msd_bench --bench runtime_throughput

# One-line regression summary against the previously committed report.
if [[ -n "${OLD_JSON}" ]]; then
  old_s8="$(json_metric "${OLD_JSON}" 8)"
  new_s8="$(json_metric "${OUT}" 8)"
  old_eff="$(json_metric "${OLD_JSON}" scaling_efficiency)"
  new_eff="$(json_metric "${OUT}" scaling_efficiency)"
  delta="n/a"
  if [[ "${old_s8}" != "n/a" && "${new_s8}" != "n/a" ]]; then
    delta="$(awk -v o="${old_s8}" -v n="${new_s8}" \
      'BEGIN { printf "%+.1f%%", (n - o) / o * 100 }')"
  fi
  echo "REGRESSION: serve@8 ${old_s8} -> ${new_s8} samples/s (${delta}); scaling_efficiency ${old_eff} -> ${new_eff}"
  rm -f "${OLD_JSON}"
fi

echo "==> fig19_cost_model"
cargo bench -p msd_bench --bench fig19_cost_model

echo "==> fig20_actor_scalability"
cargo bench -p msd_bench --bench fig20_actor_scalability

echo "Bench gate passed; report at ${OUT}."
