//! Network cost model.
//!
//! A deliberately simple alpha-beta model with two additions the paper's
//! evaluation needs:
//!
//! - **Connection state**: each open connection costs setup latency and
//!   resident memory; a node terminating tens of thousands of connections
//!   (every trainer rank talking to every loader) is what collapses the
//!   direct-transfer baseline in Fig 20.
//! - **Incast congestion**: when `n` senders converge on one receiver, the
//!   effective bandwidth degrades superlinearly past a saturation knee.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Parameters of the network model.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// One-way base latency per message.
    pub base_latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Cost to establish one connection.
    pub conn_setup: SimDuration,
    /// Resident memory per open connection (socket buffers, TLS state).
    pub conn_memory_bytes: u64,
    /// Number of concurrent flows a receiver absorbs before congestion.
    pub incast_knee: u32,
    /// Exponent of the congestion penalty past the knee (> 1 superlinear).
    pub incast_exponent: f64,
}

impl Default for NetModel {
    fn default() -> Self {
        // Roughly an InfiniBand-class datacenter fabric seen from user space.
        NetModel {
            base_latency: SimDuration::from_micros(25),
            bandwidth_bps: 12.5e9, // 100 Gb/s
            conn_setup: SimDuration::from_micros(500),
            conn_memory_bytes: 256 << 10,
            incast_knee: 256,
            incast_exponent: 2.0,
        }
    }
}

impl NetModel {
    /// Time to move `bytes` over one uncontended flow.
    pub fn transfer(&self, bytes: u64) -> SimDuration {
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bps)
    }

    /// Congestion multiplier for `flows` concurrent senders into one
    /// receiver. `1.0` below the knee, growing as
    /// `(flows / knee) ^ incast_exponent` above it.
    pub fn incast_factor(&self, flows: u32) -> f64 {
        if flows <= self.incast_knee {
            1.0
        } else {
            (flows as f64 / self.incast_knee as f64).powf(self.incast_exponent)
        }
    }

    /// Time for one of `flows` concurrent senders to deliver `bytes` to a
    /// shared receiver, including incast degradation.
    pub fn fanin_transfer(&self, bytes: u64, flows: u32) -> SimDuration {
        let factor = self.incast_factor(flows);
        self.base_latency + SimDuration::from_secs_f64(bytes as f64 * factor / self.bandwidth_bps)
    }

    /// Total setup time for `conns` connections established serially on one
    /// endpoint (accept-queue processing is serial per node).
    pub fn setup_time(&self, conns: u32) -> SimDuration {
        self.conn_setup * u64::from(conns)
    }

    /// Resident memory for `conns` open connections on one endpoint.
    pub fn conn_memory(&self, conns: u64) -> u64 {
        self.conn_memory_bytes * conns
    }

    /// Latency of a barrier-style synchronization over `participants`
    /// clients: logarithmic fan-in plus a linear straggler term that starts
    /// dominating in very large groups (the motivation for selective
    /// broadcasting over sub-groups in Sec 6.2).
    pub fn barrier(&self, participants: u32) -> SimDuration {
        if participants <= 1 {
            return SimDuration::ZERO;
        }
        let log_term = (participants as f64).log2().ceil();
        let straggler = participants as f64 / 512.0;
        self.base_latency * (log_term + straggler)
    }
}

/// Deterministic lossy/latency link: the per-message admission model the
/// distributed serving plane's simulated transport runs on. Each message
/// is either dropped (with probability `loss`, drawn from a seeded
/// [`SimRng`] so a run is bit-reproducible) or admitted with the
/// alpha-beta transfer delay of the underlying [`NetModel`].
#[derive(Debug, Clone)]
pub struct LossyLink {
    model: NetModel,
    loss: f64,
    rng: SimRng,
    /// Messages offered to the link.
    pub offered: u64,
    /// Messages the link dropped.
    pub dropped: u64,
    /// Bytes of every admitted message.
    pub delivered_bytes: u64,
}

impl LossyLink {
    /// Creates a link with the given loss probability in `[0, 1]`.
    pub fn new(model: NetModel, loss: f64, seed: u64) -> Self {
        LossyLink {
            model,
            loss: loss.clamp(0.0, 1.0),
            rng: SimRng::seed(seed),
            offered: 0,
            dropped: 0,
            delivered_bytes: 0,
        }
    }

    /// Offers one `bytes`-sized message to the link. Returns the modeled
    /// one-way delivery delay, or `None` when the link dropped it.
    pub fn admit(&mut self, bytes: u64) -> Option<SimDuration> {
        self.offered += 1;
        if self.loss > 0.0 && self.rng.chance(self.loss) {
            self.dropped += 1;
            return None;
        }
        self.delivered_bytes += bytes;
        Some(self.model.transfer(bytes))
    }

    /// Fraction of offered messages the link dropped so far.
    pub fn drop_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.dropped as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_scales_with_bytes() {
        let net = NetModel::default();
        let small = net.transfer(1 << 10);
        let large = net.transfer(1 << 30);
        assert!(large > small);
        // A 1 GiB transfer at 100 Gb/s is about 86 ms plus latency.
        let secs = large.as_secs_f64();
        assert!((0.08..0.10).contains(&secs), "secs = {secs}");
    }

    #[test]
    fn incast_is_flat_below_knee() {
        let net = NetModel::default();
        assert_eq!(net.incast_factor(1), 1.0);
        assert_eq!(net.incast_factor(256), 1.0);
        assert!(net.incast_factor(512) > 3.9);
        assert!(net.incast_factor(4096) > net.incast_factor(2048) * 3.5);
    }

    #[test]
    fn fanin_slower_than_solo() {
        let net = NetModel::default();
        let solo = net.fanin_transfer(1 << 20, 1);
        let crowded = net.fanin_transfer(1 << 20, 2048);
        assert!(crowded.as_secs_f64() > solo.as_secs_f64() * 10.0);
    }

    #[test]
    fn connection_costs_accumulate() {
        let net = NetModel::default();
        assert_eq!(net.conn_memory(4), (256 << 10) * 4);
        assert_eq!(
            net.setup_time(10).as_nanos(),
            net.conn_setup.as_nanos() * 10
        );
    }

    #[test]
    fn barrier_grows_with_participants() {
        let net = NetModel::default();
        assert_eq!(net.barrier(1), SimDuration::ZERO);
        let small = net.barrier(8);
        let big = net.barrier(4096);
        assert!(big > small);
    }

    #[test]
    fn lossy_link_is_deterministic_and_converges_to_loss() {
        let mut a = LossyLink::new(NetModel::default(), 0.25, 7);
        let mut b = LossyLink::new(NetModel::default(), 0.25, 7);
        for _ in 0..4000 {
            assert_eq!(a.admit(1024).is_some(), b.admit(1024).is_some());
        }
        assert_eq!(a.offered, 4000);
        assert_eq!(a.dropped, b.dropped);
        assert!(
            (a.drop_rate() - 0.25).abs() < 0.03,
            "rate {}",
            a.drop_rate()
        );
        assert_eq!(a.delivered_bytes, (a.offered - a.dropped) * 1024);
    }

    #[test]
    fn lossless_link_admits_everything_with_transfer_delay() {
        let mut link = LossyLink::new(NetModel::default(), 0.0, 1);
        let d = link.admit(1 << 20).expect("lossless link dropped");
        assert_eq!(d, NetModel::default().transfer(1 << 20));
        assert_eq!(link.drop_rate(), 0.0);
    }
}
