//! Thread-based actor runtime with supervision and failure injection.
//!
//! MegaScale-Data is built as a set of long-lived actors (Source Loaders,
//! Data Constructors, the Planner) exchanging messages — the paper deploys
//! them on Ray. This crate is the Rust substrate playing Ray's role:
//!
//! - [`actor`]: the [`actor::Actor`] trait and typed [`actor::ActorRef`]
//!   handles with `tell`/`ask` semantics (ask carries an RPC timeout, which
//!   is also the failure-detection mechanism the paper describes).
//! - [`system`]: [`system::ActorSystem`] spawning plain or *supervised*
//!   actors; supervised actors are restarted from a factory after a panic,
//!   like Ray's restartable actors backed by the GCS.
//! - [`fault`]: failure injection — crash an actor remotely, inject
//!   processing delays — used by the fault-tolerance experiments.
//! - [`gcs`]: a Global Control Store analogue: named registry plus a state
//!   blackboard actors checkpoint into and recover from.

// The zero-copy data plane makes many historical clones dead; keep new
// ones from creeping in (ci.sh runs clippy with -D warnings).
#![warn(clippy::redundant_clone)]

pub mod actor;
pub mod fault;
pub mod gcs;
pub mod system;

pub use actor::{Actor, ActorRef, AskError, Ctx, PendingReply};
pub use gcs::{FaultRecord, Gcs};
pub use system::{ActorSystem, RestartPolicy};
