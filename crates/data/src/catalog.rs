//! Source catalogs calibrated to the paper's published workloads.
//!
//! [`coyo700m_like`] models the open `coyo700m` dataset (5 sources): text
//! captions are extremely short (98.23% of samples ≤ 64 tokens) while the
//! top 1.62% of long captions carry ~9.3% of all text tokens; image patch
//! counts spread from under 1k to 32k (Fig 2 left).
//!
//! [`navit_like`] models the production `navit_data` corpus (306 sources):
//! broader text lengths, heavier image tails (≥16k patches carry 27.3% of
//! image tokens), and strong per-source heterogeneity in transformation
//! cost and access-state memory (Fig 5).

use msd_sim::SimRng;
use msd_storage::AccessState;

use crate::dist::LengthDist;
use crate::sample::{Modality, SampleMeta, SourceId};
use crate::transform::TransformPipeline;

/// Static description of one data source.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Source identifier (unique within a catalog).
    pub id: SourceId,
    /// Human-readable name.
    pub name: String,
    /// Payload modality.
    pub modality: Modality,
    /// Distribution of text-token counts per sample.
    pub text_dist: LengthDist,
    /// Distribution of image-patch counts per sample (Constant(0) for text).
    pub image_dist: LengthDist,
    /// Per-source transformation cost multiplier (Fig 5b heterogeneity).
    pub cost_scale: f64,
    /// Resident access-state memory when this source is open (Fig 5a).
    pub access_state: AccessState,
    /// Default mixing weight (normalized by the schedule).
    pub weight: f64,
}

impl SourceSpec {
    /// Draws one sample's metadata.
    pub fn sample_meta(&self, rng: &mut SimRng, sample_id: u64) -> SampleMeta {
        let text_tokens = self.text_dist.sample_len(rng);
        let image_patches = match self.modality {
            Modality::Text => 0,
            _ => self.image_dist.sample_len(rng),
        };
        // Raw bytes: ~4 B per text token (UTF-8) plus compressed pixels
        // (~48 B per patch pre-decode for JPEG-like 16x16 patches).
        let raw_bytes = u64::from(text_tokens) * 4 + u64::from(image_patches) * 48;
        SampleMeta {
            sample_id,
            source: self.id,
            modality: self.modality,
            text_tokens,
            image_patches,
            raw_bytes,
        }
    }

    /// The transformation pipeline for this source (modality pipeline with
    /// this source's cost multiplier).
    pub fn pipeline(&self) -> TransformPipeline {
        let base = TransformPipeline::for_modality(self.modality);
        TransformPipeline::new(base.transforms().to_vec(), self.cost_scale)
    }

    /// Mean per-sample transformation cost, estimated over `n` draws.
    pub fn mean_transform_cost_ns(&self, rng: &mut SimRng, n: usize) -> f64 {
        let pipeline = self.pipeline();
        let total: u64 = (0..n)
            .map(|i| pipeline.cost_ns(&self.sample_meta(rng, i as u64)))
            .sum();
        total as f64 / n.max(1) as f64
    }
}

/// A collection of sources forming one training data mixture.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Catalog name (used in reports).
    pub name: String,
    sources: Vec<SourceSpec>,
}

impl Catalog {
    /// Creates a catalog from sources.
    pub fn new(name: impl Into<String>, sources: Vec<SourceSpec>) -> Self {
        Catalog {
            name: name.into(),
            sources,
        }
    }

    /// All sources.
    pub fn sources(&self) -> &[SourceSpec] {
        &self.sources
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Looks up a source by id.
    pub fn get(&self, id: SourceId) -> Option<&SourceSpec> {
        self.sources.iter().find(|s| s.id == id)
    }

    /// Default mixing weights, in source order (unnormalized).
    pub fn default_weights(&self) -> Vec<f64> {
        self.sources.iter().map(|s| s.weight).collect()
    }

    /// Total access-state bytes if one client opened every source.
    pub fn total_access_state_bytes(&self) -> u64 {
        self.sources.iter().map(|s| s.access_state.total()).sum()
    }

    /// Draws a sample from the source selected by `weights`.
    pub fn sample_mixed(
        &self,
        rng: &mut SimRng,
        weights: &[f64],
        sample_id: u64,
    ) -> Option<SampleMeta> {
        let idx = rng.weighted_index(weights)?;
        let spec = self.sources.get(idx)?;
        Some(spec.sample_meta(rng, sample_id))
    }
}

/// Text-token distribution of `coyo700m` (Fig 2a, left): short captions
/// dominate samples; a thin Pareto tail carries ~9% of tokens.
pub fn coyo_text_dist() -> LengthDist {
    LengthDist::Mixture(vec![
        (
            0.982,
            LengthDist::lognormal_median(22.0, 0.55).clamped(4.0, 64.0),
        ),
        (
            0.018,
            LengthDist::Pareto {
                x_min: 65.0,
                alpha: 1.8,
            }
            .clamped(65.0, 8192.0),
        ),
    ])
}

/// Image-patch distribution of `coyo700m` (Fig 2b, left).
pub fn coyo_image_dist() -> LengthDist {
    LengthDist::lognormal_median(3200.0, 1.15).clamped(64.0, 32768.0)
}

/// Text-token distribution of `navit_data` (Fig 2a, right): much broader,
/// with ≥8k sequences carrying ~15% of tokens.
pub fn navit_text_dist() -> LengthDist {
    LengthDist::Mixture(vec![
        (
            0.72,
            LengthDist::lognormal_median(64.0, 1.05).clamped(4.0, 512.0),
        ),
        (
            0.28,
            LengthDist::lognormal_median(1400.0, 1.3).clamped(256.0, 32768.0),
        ),
    ])
}

/// Image-patch distribution of `navit_data` (Fig 2b, right): variable
/// resolution with a heavy ≥16k tail (27.3% of image tokens).
pub fn navit_image_dist() -> LengthDist {
    LengthDist::lognormal_median(4000.0, 1.0).clamped(64.0, 32768.0)
}

/// Builds the 5-source `coyo700m`-like catalog.
pub fn coyo700m_like(rng: &mut SimRng) -> Catalog {
    let mut rng = rng.split("coyo700m");
    let sources = (0..5)
        .map(|i| {
            // The five shards are near-identical statistically; jitter the
            // cost scale slightly so workers are not perfectly uniform.
            let cost_scale = rng.lognormal(0.0, 0.25);
            SourceSpec {
                id: SourceId(i),
                name: format!("coyo700m/part-{i:02}"),
                modality: Modality::Image,
                text_dist: coyo_text_dist(),
                image_dist: coyo_image_dist(),
                cost_scale,
                access_state: AccessState::production(
                    8 << 20,   // Footers of wide shards are sizable.
                    768 << 20, // 768 MiB row groups.
                ),
                weight: 1.0,
            }
        })
        .collect();
    Catalog::new("coyo700m", sources)
}

/// Builds the 306-source `navit_data`-like catalog with Fig 5
/// heterogeneity: per-source cost multipliers span ~3 orders of magnitude
/// and access states range from tens of MiB to multiple GiB.
pub fn navit_like(rng: &mut SimRng) -> Catalog {
    navit_sized(rng, 306)
}

/// `navit_data`-like catalog with an explicit source count (Fig 15 sweeps
/// 100 → 300 sources).
pub fn navit_sized(rng: &mut SimRng, n_sources: u32) -> Catalog {
    let mut rng = rng.split("navit_data");
    let sources = (0..n_sources)
        .map(|i| {
            // Modalities: mostly image-text, some text-only, a few video
            // and audio sources (the expensive tail of Fig 5b).
            let roll = rng.f64();
            let modality = if roll < 0.70 {
                Modality::Image
            } else if roll < 0.88 {
                Modality::Text
            } else if roll < 0.96 {
                Modality::Video
            } else {
                Modality::Audio
            };
            // Jitter distribution parameters per source.
            let text_dist = match modality {
                Modality::Text => LengthDist::lognormal_median(
                    rng.f64_range(200.0, 2400.0),
                    rng.f64_range(0.9, 1.5),
                )
                .clamped(16.0, 32768.0),
                _ => navit_text_dist(),
            };
            let image_dist = match modality {
                Modality::Text => LengthDist::Constant(0.0),
                Modality::Video => {
                    LengthDist::lognormal_median(9000.0, 1.1).clamped(512.0, 65536.0)
                }
                _ => navit_image_dist(),
            };
            // Fig 5b: transformation latency spans ~1 s to ~1000 s across
            // sources for the same batch size.
            let cost_scale = rng.lognormal(0.0, 1.5).clamp(0.05, 40.0);
            // Fig 5a: access-state memory up to ~6 GiB, median ~1 GiB.
            let metadata = (rng.lognormal((32.0f64).ln(), 0.8) * (1 << 20) as f64) as u64;
            let buffer = (rng.lognormal((700.0f64).ln(), 0.6) * (1 << 20) as f64)
                .clamp(128.0 * (1 << 20) as f64, 5.0 * (1 << 30) as f64)
                as u64;
            SourceSpec {
                id: SourceId(i),
                name: format!("navit_data/{}-{i:03}", modality.label()),
                modality,
                text_dist,
                image_dist,
                cost_scale,
                access_state: AccessState::production(metadata, buffer),
                weight: rng.lognormal(0.0, 0.7),
            }
        })
        .collect();
    Catalog::new(format!("navit_data[{n_sources}]"), sources)
}

/// A small text-only catalog (used by the Fig 20 pure-text scaling study).
pub fn text_only(rng: &mut SimRng, n_sources: u32) -> Catalog {
    let mut rng = rng.split("text_only");
    let sources = (0..n_sources)
        .map(|i| SourceSpec {
            id: SourceId(i),
            name: format!("text/{i:03}"),
            modality: Modality::Text,
            text_dist: LengthDist::lognormal_median(
                rng.f64_range(400.0, 1600.0),
                rng.f64_range(0.8, 1.2),
            )
            .clamped(16.0, 16384.0),
            image_dist: LengthDist::Constant(0.0),
            cost_scale: rng.lognormal(0.0, 0.4).clamp(0.2, 5.0),
            access_state: AccessState::production(4 << 20, 512 << 20),
            weight: 1.0,
        })
        .collect();
    Catalog::new("text_only", sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_sim::{Histogram, SimRng};

    fn rng() -> SimRng {
        SimRng::seed(2024)
    }

    #[test]
    fn coyo_text_matches_published_skew() {
        let mut r = rng();
        let d = coyo_text_dist();
        let n = 100_000;
        let mut hist = Histogram::pow2(16, 32768);
        let mut le64 = 0usize;
        let mut tokens_total = 0u64;
        let mut tokens_long = 0u64;
        for _ in 0..n {
            let len = d.sample_len(&mut r);
            hist.add_weighted(f64::from(len), f64::from(len));
            if len <= 64 {
                le64 += 1;
            } else {
                tokens_long += u64::from(len);
            }
            tokens_total += u64::from(len);
        }
        let sample_share_le64 = le64 as f64 / n as f64;
        let token_share_gt64 = tokens_long as f64 / tokens_total as f64;
        // Paper: 98.23% of samples <= 64 tokens; >64-token tail carries 9.3%.
        assert!(
            (0.96..0.995).contains(&sample_share_le64),
            "share <=64 = {sample_share_le64}"
        );
        assert!(
            (0.04..0.20).contains(&token_share_gt64),
            "token share >64 = {token_share_gt64}"
        );
    }

    #[test]
    fn navit_image_tail_is_heavy() {
        let mut r = rng();
        let d = navit_image_dist();
        let n = 100_000;
        let mut total = 0.0f64;
        let mut ge16k = 0.0f64;
        for _ in 0..n {
            let v = d.sample(&mut r);
            total += v;
            if v >= 16384.0 {
                ge16k += v;
            }
        }
        let share = ge16k / total;
        // Paper: >=16k patches carry 27.3% of image tokens.
        assert!((0.15..0.45).contains(&share), "share >=16k = {share}");
    }

    #[test]
    fn catalog_sizes() {
        let mut r = rng();
        assert_eq!(coyo700m_like(&mut r).len(), 5);
        assert_eq!(navit_like(&mut r).len(), 306);
        assert_eq!(navit_sized(&mut r, 100).len(), 100);
        assert_eq!(text_only(&mut r, 10).len(), 10);
    }

    #[test]
    fn navit_cost_heterogeneity_spans_orders_of_magnitude() {
        let mut r = rng();
        let cat = navit_like(&mut r);
        let scales: Vec<f64> = cat.sources().iter().map(|s| s.cost_scale).collect();
        let min = scales.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scales.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 50.0, "spread = {}", max / min);
    }

    #[test]
    fn navit_access_state_range_matches_fig5a() {
        let mut r = rng();
        let cat = navit_like(&mut r);
        let totals: Vec<u64> = cat
            .sources()
            .iter()
            .map(|s| s.access_state.total())
            .collect();
        let max = *totals.iter().max().unwrap();
        let min = *totals.iter().min().unwrap();
        // Fig 5a: tail up to ~6 GiB, floor above 100 MiB.
        assert!(max > 2 << 30, "max = {max}");
        assert!(max < 8 << 30, "max = {max}");
        assert!(min > 100 << 20, "min = {min}");
    }

    #[test]
    fn sample_meta_respects_modality() {
        let mut r = rng();
        let cat = navit_like(&mut r);
        let text_src = cat
            .sources()
            .iter()
            .find(|s| s.modality == Modality::Text)
            .expect("navit has text sources");
        let m = text_src.sample_meta(&mut r, 7);
        assert_eq!(m.image_patches, 0);
        assert!(m.text_tokens >= 16);
        assert_eq!(m.source, text_src.id);
    }

    #[test]
    fn mixed_sampling_follows_weights() {
        let mut r = rng();
        let cat = coyo700m_like(&mut r);
        let mut weights = vec![0.0; cat.len()];
        weights[3] = 1.0;
        for i in 0..100 {
            let m = cat.sample_mixed(&mut r, &weights, i).unwrap();
            assert_eq!(m.source, SourceId(3));
        }
        assert!(cat.sample_mixed(&mut r, &[0.0; 5], 0).is_none());
    }

    #[test]
    fn catalog_lookup() {
        let mut r = rng();
        let cat = coyo700m_like(&mut r);
        assert!(cat.get(SourceId(0)).is_some());
        assert!(cat.get(SourceId(99)).is_none());
        assert_eq!(cat.default_weights().len(), 5);
        assert!(cat.total_access_state_bytes() > 5 * (768 << 20));
    }

    #[test]
    fn mean_transform_cost_is_finite_and_modality_ordered() {
        let mut r = rng();
        let cat = navit_like(&mut r);
        // Compare a text source vs a video source at equal cost_scale by
        // normalizing the scale away.
        let text = cat
            .sources()
            .iter()
            .find(|s| s.modality == Modality::Text)
            .unwrap();
        let video = cat
            .sources()
            .iter()
            .find(|s| s.modality == Modality::Video)
            .unwrap();
        let ct = text.mean_transform_cost_ns(&mut r, 200) / text.cost_scale;
        let cv = video.mean_transform_cost_ns(&mut r, 200) / video.cost_scale;
        assert!(cv > ct * 10.0, "video {cv} vs text {ct}");
    }
}
