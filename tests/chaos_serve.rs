//! Seeded chaos soak over the distributed serving plane.
//!
//! The contract under test is the PR-8 hardening story: with a
//! `ChaosPlan` injecting frame drops/duplicates/reorders, scheduled
//! partitions, a full `DataServer` crash-restart, and one client dying
//! *silently* mid-serve (no `Close`), the surviving clients' streams
//! stay byte-identical to a fault-free local serve — in order, gap-free,
//! duplicate-free — and the dead client's session is reaped within its
//! lease: retransmit buffer freed, constructor cursor released, eviction
//! logged to the GCS fault log with id, rank, and reason.
//!
//! The same soak runs over Loopback, the simulated fabric, and real TCP
//! via the shared `harness/` recipe, because fault recovery that only
//! works on one transport is not recovery. A separate test pins
//! admission control (`max_sessions` + wire `Reject`) and the
//! lease-then-late-return resume path end to end.

mod harness;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use harness::{assert_byte_identical, assert_ordered_full, Stream};
use megascale_data::core::system::chaos::{ChaosPlan, ChaosTransport};
use megascale_data::core::system::net::{LoopbackTransport, SimTransport, Transport};
use megascale_data::core::system::server::RedialBackoff;
use megascale_data::core::system::tcp::TcpTransport;
use megascale_data::sim::NetModel;

const CLIENTS: u32 = 6;
const STEPS: u64 = 10;
/// The client that dies silently, and how many steps it consumes first.
const DEAD: u32 = 5;
const DEAD_AT: u64 = 4;
/// Observed progress (server-side pull cursor) at which the harness
/// crashes the server actor, per the plan's `CrashServer` event.
const CRASH_AT: u64 = 2;
const STALL_AT: u64 = 3;

/// The soak's fault script. Step-keyed events are applied by the
/// harness below; frame faults and partitions replay from the seed
/// inside `ChaosTransport`.
fn soak_plan() -> ChaosPlan {
    ChaosPlan::seeded(0xC4A0_5EED)
        .with_drops(0.04)
        .with_duplicates(0.04)
        .with_reorders(0.04)
        .partition(150, 170)
        .partition(520, 540)
        .kill_client(DEAD, DEAD_AT)
        .crash_server(CRASH_AT)
        .stall_constructor(0, STALL_AT, Duration::from_millis(40))
}

fn chaos_soak(inner: Arc<dyn Transport>, label: &str) {
    let reference = harness::local_streams(5, CLIENTS, STEPS);

    let mut p = harness::pipeline(5);
    let mut o = harness::opts(CLIENTS, STEPS);
    // Short lease so the silently-dead client is reaped inside the
    // test, but long enough that a healthy client's worst-case silent
    // stretch — a quiet-timeout teardown (~1s), a backoff sleep, and a
    // partition window riding on retry-rate traffic — never trips it.
    o.server.lease = Some(Duration::from_millis(3000));
    let plan = soak_plan();
    let chaos = Arc::new(ChaosTransport::new(inner, plan.clone()));
    let (session, handle) = p.serve_distributed(o, chaos.clone(), &harness::placements(CLIENTS));

    let threads: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mut rc = handle.connect(c);
            std::thread::spawn(move || {
                let mut stream = Stream::new();
                while let Some(item) = rc.next() {
                    stream.push(item);
                    if rc.id == DEAD && rc.consumed() >= DEAD_AT {
                        // Die silently: drop the connection without a
                        // Close handshake, then never pull again. The
                        // lease sweep is the only thing that can free
                        // this client's server-side state.
                        rc.disconnect();
                        return (rc.id, stream);
                    }
                }
                (rc.id, stream)
            })
        })
        .collect();

    // Harness half of the chaos plan: watch server-side progress and
    // fire the step-keyed actor faults when the fleet crosses them.
    let mut crashed = false;
    let mut stalled = false;
    let fault_deadline = Instant::now() + Duration::from_secs(30);
    while (!crashed || !stalled) && Instant::now() < fault_deadline {
        if let Some(status) = handle.status() {
            let progress = status
                .clients
                .iter()
                .map(|c| c.next_pull)
                .max()
                .unwrap_or(0);
            if !crashed && progress >= CRASH_AT {
                handle.inject_server_crash("chaos: scheduled server crash");
                crashed = true;
            }
            if !stalled && progress >= STALL_AT {
                p.inject_constructor_stall(0, Duration::from_millis(40));
                stalled = true;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(crashed && stalled, "{label}: fault schedule never fired");

    let mut streams: Vec<(u32, Stream)> = threads
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    streams.sort_by_key(|(id, _)| *id);

    // The driver finishing every step is itself the eviction proof: the
    // dead client froze the backpressure floor at its cursor, and only
    // a lease eviction can release it within the step retry budget.
    assert_eq!(
        session.join(),
        STEPS,
        "{label}: distributed driver fell short"
    );

    // Survivors: full streams, in order, duplicate-free, byte-identical
    // to the fault-free local reference.
    let survivors: Vec<(u32, Stream)> = streams
        .iter()
        .filter(|(id, _)| *id != DEAD)
        .cloned()
        .collect();
    let survivor_reference: Vec<(u32, Stream)> = reference
        .iter()
        .filter(|(id, _)| *id != DEAD)
        .cloned()
        .collect();
    assert_ordered_full(&survivors, STEPS);
    assert_byte_identical(&survivor_reference, &survivors, label);

    // The dead client consumed a clean prefix before dying.
    let (_, dead_stream) = streams.iter().find(|(id, _)| *id == DEAD).unwrap();
    assert_eq!(
        dead_stream.len() as u64,
        DEAD_AT,
        "{label}: dead client prefix"
    );
    let (_, dead_reference) = reference.iter().find(|(id, _)| *id == DEAD).unwrap();
    for (i, ((step, batch), (rstep, rbatch))) in dead_stream.iter().zip(dead_reference).enumerate()
    {
        assert_eq!((*step, step), (i as u64, rstep), "{label}: dead client gap");
        assert_eq!(**batch, **rbatch, "{label}: dead client diverged");
    }

    // Its server-side state was reaped: session unbound, retransmit
    // buffer freed, eviction counted. (The eviction happens after the
    // crash-restart, so the restarted incarnation's counters carry it.)
    let status = handle.status().expect("server status after serve");
    let dead = status
        .clients
        .iter()
        .find(|c| c.client == DEAD)
        .expect("dead client stat");
    assert!(!dead.connected, "{label}: dead client still bound");
    assert_eq!(dead.unacked, 0, "{label}: retransmit buffer not freed");
    assert_eq!(dead.unacked_bytes, 0, "{label}: retransmit bytes not freed");
    assert!(status.evictions >= 1, "{label}: no eviction recorded");

    // The eviction left a post-mortem trail with id, rank, and reason.
    let log = p.gcs.fault_log("data-server");
    assert!(
        log.iter()
            .any(|r| r.detail.contains(&format!("evicted client {DEAD}"))
                && r.detail.contains("rank")
                && r.detail.contains("lease expired")),
        "{label}: eviction missing from GCS fault log: {log:?}"
    );

    // The chaos layer actually perturbed the run.
    let stats = chaos.stats();
    assert!(
        stats.dropped > 0 && stats.duplicated > 0 && stats.reordered > 0,
        "{label}: chaos plan injected nothing: {stats:?}"
    );

    p.shutdown();
}

#[test]
fn chaos_soak_over_loopback() {
    chaos_soak(Arc::new(LoopbackTransport), "chaos/loopback");
}

#[test]
fn chaos_soak_over_sim_fabric() {
    chaos_soak(
        Arc::new(SimTransport::new(NetModel::default(), 0.05, 21)),
        "chaos/sim",
    );
}

#[test]
fn chaos_soak_over_tcp() {
    chaos_soak(
        Arc::new(TcpTransport::new().expect("bind tcp transport")),
        "chaos/tcp",
    );
}

/// Admission control end to end: with `max_sessions = 1`, the second
/// client's dials are refused with a wire `Reject` (surfaced in its
/// `ClientStats` and the server's rejection counter + fault log), it
/// backs off, and once the first client finishes and its session dies,
/// the late client is admitted and still pulls its full stream.
#[test]
fn over_capacity_dials_are_rejected_then_admitted() {
    const AC_STEPS: u64 = 4;
    let mut p = harness::pipeline(9);
    let mut o = harness::opts(2, AC_STEPS);
    o.server.max_sessions = 1;
    let (session, handle) =
        p.serve_distributed(o, Arc::new(LoopbackTransport), &harness::placements(2));

    let mut first = handle.connect(0);
    // Bind the only session slot *before* the second client dials.
    let first_item = first.next().expect("first client pull");
    let holder = std::thread::spawn(move || {
        let mut stream = vec![first_item];
        while let Some(item) = first.next() {
            stream.push(item);
            // Hold the slot long enough for the second client to
            // collect rejections.
            std::thread::sleep(Duration::from_millis(60));
        }
        drop(first); // Session dies here; the slot frees.
        stream
    });

    let mut second = handle.connect(1);
    // Tight, seeded envelope so the rejected client retries fast and
    // deterministically instead of sleeping out the default 250 ms cap.
    second.set_backoff(RedialBackoff::new(
        7,
        Duration::from_millis(1),
        Duration::from_millis(10),
    ));
    let mut stream = Stream::new();
    while let Some(item) = second.next() {
        stream.push(item);
    }

    let first_stream = holder.join().expect("holder thread");
    assert_eq!(first_stream.len() as u64, AC_STEPS);
    assert_eq!(stream.len() as u64, AC_STEPS, "late client fell short");
    for (i, (step, _)) in stream.iter().enumerate() {
        assert_eq!(*step, i as u64, "late client stream out of order");
    }

    let stats = second.stats();
    assert!(
        stats.rejections >= 1,
        "second dial was never rejected: {stats:?}"
    );
    assert!(
        stats.backoffs >= 1,
        "rejected client never backed off: {stats:?}"
    );

    assert_eq!(session.join(), AC_STEPS);
    let status = handle.status().expect("server status");
    assert!(status.rejections >= 1, "server counted no rejections");
    let log = p.gcs.fault_log("data-server");
    assert!(
        log.iter().any(|r| r.detail.contains("rejected client 1")
            && r.detail.contains("session limit reached")),
        "rejection missing from GCS fault log: {log:?}"
    );
    p.shutdown();
}

/// The lease-then-late-return path end to end: a client disconnects
/// silently, is evicted on lease expiry, then *returns* — re-dialing
/// with the same cursor — and resumes gap-free because eviction
/// released (not finished) its stream and the re-`Subscribe` rewinds
/// its constructor cursor, letting the driver re-send retained window
/// steps.
///
/// Gap-free resume is only possible while the retained window still
/// covers the returner's cursor, and the window floor tracks the
/// slowest *live* client's server-side cursor (its consumed count plus
/// the credit push-ahead). The choreography below keeps that true: the
/// dead client pauses at the production frontier (pacer cursor 3 +
/// queue depth 3 = step 6), so the slow pacer has three unhurried
/// pulls of headroom before the floor would pass the resume point —
/// comfortably longer than lease expiry plus redial.
#[test]
fn evicted_client_resumes_gap_free_after_late_return() {
    const LR_STEPS: u64 = 8;
    const PAUSE_AT: u64 = 6;
    let reference = harness::local_streams(11, 2, LR_STEPS);

    let mut p = harness::pipeline(11);
    let mut o = harness::opts(2, LR_STEPS);
    o.server.lease = Some(Duration::from_millis(1200));
    let (session, handle) =
        p.serve_distributed(o, Arc::new(LoopbackTransport), &harness::placements(2));
    let resumed = Arc::new(AtomicBool::new(false));

    // Client 0 paces slowly so the driver's window still covers the
    // returning client's cursor when it comes back — but each pull
    // (and its Ack) lands well inside the lease, so only the silent
    // client is ever evicted. Once the late-returner is back, the
    // pacer drains at full speed.
    let mut pacer = handle.connect(0);
    let pacer_resumed = resumed.clone();
    let pacer_thread = std::thread::spawn(move || {
        let mut stream = Stream::new();
        while let Some(item) = pacer.next() {
            stream.push(item);
            if !pacer_resumed.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(800));
            }
        }
        stream
    });

    let mut lazarus = handle.connect(1);
    let mut stream = Stream::new();
    while stream.len() < PAUSE_AT as usize {
        let item = lazarus.next().expect("pre-death pull");
        stream.push(item);
    }
    lazarus.disconnect(); // Silent: no Close.

    // Wait out the lease until the server reaps the session.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "lease eviction never happened");
        if let Some(status) = handle.status() {
            let stat = status.clients.iter().find(|c| c.client == 1).unwrap();
            if stat.evictions >= 1 && !stat.connected {
                assert_eq!(stat.unacked, 0, "eviction left retransmit state");
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // The late return: same client object, same cursor, fresh session.
    while let Some(item) = lazarus.next() {
        stream.push(item);
        resumed.store(true, Ordering::SeqCst);
    }

    let pacer_stream = pacer_thread.join().expect("pacer thread");
    assert_eq!(session.join(), LR_STEPS);

    let streams = vec![(0u32, pacer_stream), (1u32, stream)];
    assert_ordered_full(&streams, LR_STEPS);
    assert_byte_identical(&reference, &streams, "late-return");
    assert!(lazarus.reconnects() >= 1, "late return never re-dialed");
    p.shutdown();
}
