//! runtime_throughput — concurrent serving vs. the inline step loop.
//!
//! Compares three deployments of the same pipeline on the same workload:
//!
//! 1. `inline`: the single-threaded loop (refill → gather → plan → pop →
//!    construct on one caller thread, no actors, no overlap);
//! 2. `actorized`: [`ThreadedPipeline::step`] — actor-hosted components,
//!    still driven synchronously by one caller;
//! 3. `serve+prefetch`: [`ThreadedPipeline::serve`] with pipelined
//!    refill-ahead and N trainer clients pulling concurrently, for
//!    N ∈ {1, 2, 4, 8}.
//!
//! Throughput is *delivered* throughput: samples (and payload MB) that
//! actually reached a consumer per second, summed over consumers. For
//! the single-consumer deployments that equals step throughput; for
//! serve it is the aggregate fan-out rate the zero-copy data plane is
//! built for — N clients of one constructor read the same `Arc`-shared
//! batch, so serving more clients multiplies egress without re-copying
//! payloads. `scaling_efficiency` = delivered-samples/sec at 8 clients ÷
//! at 1 client.
//!
//! Prints a table and, when `BENCH_JSON_OUT` is set, writes a
//! machine-readable JSON report (consumed by `bench.sh` to produce
//! `BENCH_runtime.json`).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use msd_actor::Gcs;
use msd_bench::{banner, f, table_header, table_row};
use msd_core::buffer::BufferInfo;
use msd_core::constructor::DataConstructor;
use msd_core::loader::{LoaderConfig, SourceLoader};
use msd_core::planner::{Planner, PlannerConfig, Strategy};
use msd_core::schedule::MixSchedule;
use msd_core::system::chaos::{ChaosPlan, ChaosTransport};
use msd_core::system::controller::ControllerConfig;
use msd_core::system::core::PipelineCore;
use msd_core::system::net::{LoopbackTransport, SimTransport, Transport};
use msd_core::system::runtime::{ServeOptions, ThreadedPipeline};
use msd_core::system::server::RemotePlacement;
use msd_data::catalog::coyo700m_like;
use msd_data::{Catalog, SourceSpec};
use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use msd_sim::{NetModel, SimDuration, SimRng};
use std::sync::Arc;

const STEPS: u64 = 24;
const SAMPLES_PER_STEP: usize = 128;
const REFILL_TARGET: usize = 96;

fn catalog() -> Catalog {
    let mut rng = SimRng::seed(17);
    coyo700m_like(&mut rng)
}

fn mesh() -> DeviceMesh {
    DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).unwrap()
}

fn planner(catalog: &Catalog) -> Planner {
    planner_with(catalog, MixSchedule::uniform(catalog.len()))
}

fn planner_with(catalog: &Catalog, schedule: MixSchedule) -> Planner {
    let tree = ClientPlaceTree::from_device_mesh(&mesh());
    Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: SAMPLES_PER_STEP,
            schedule,
        },
        Strategy::BackboneBalance {
            method: msd_balance::BalanceMethod::Greedy,
            backbone: msd_balance::BackboneShape {
                layers: 4,
                hidden: 256,
                mlp_ratio: 4.0,
                heads: 4,
                vocab: 8000,
                experts_per_token: 1,
            },
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        7,
    )
}

/// Per-sample storage-fetch latency (real wall time, amortized over each
/// loader's 2 workers): the stall the disaggregated runtime exists to
/// hide. Identical in every deployment; only the overlap differs.
const FETCH_LATENCY_NS: u64 = 400_000;

fn sources(catalog: &Catalog) -> Vec<(SourceSpec, LoaderConfig)> {
    catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, FETCH_LATENCY_NS),
            )
        })
        .collect()
}

fn constructors(count: usize) -> Vec<DataConstructor> {
    (0..count)
        .map(|_| DataConstructor::new(mesh(), 4096))
        .collect()
}

/// One deployment's measured delivery: wall time plus what consumers
/// actually received.
struct Delivered {
    elapsed_s: f64,
    samples: u64,
    payload_bytes: u64,
}

impl Delivered {
    fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.elapsed_s
    }

    fn payload_mb_per_sec(&self) -> f64 {
        self.payload_bytes as f64 / (1u64 << 20) as f64 / self.elapsed_s
    }
}

/// Samples and payload bytes one constructed batch delivers.
fn batch_delivery(batch: &msd_core::constructor::ConstructedBatch) -> (u64, u64) {
    let samples: u64 = batch
        .microbatches
        .iter()
        .map(|m| m.payloads.len() as u64)
        .sum();
    let bytes: u64 = batch.microbatches.iter().map(|m| m.payload_bytes).sum();
    (samples, bytes)
}

/// Deployment 1: everything on the caller thread, no actors.
fn run_inline() -> Delivered {
    let catalog = catalog();
    let mut core = PipelineCore::new(planner(&catalog));
    let mut loaders: Vec<SourceLoader> = sources(&catalog)
        .into_iter()
        .map(|(spec, cfg)| SourceLoader::synthetic(spec, cfg, 99))
        .collect();
    let ctors = constructors(4);
    let mut samples = 0u64;
    let mut payload_bytes = 0u64;
    let t0 = Instant::now();
    for _ in 0..STEPS {
        for l in &mut loaders {
            l.refill(REFILL_TARGET).expect("synthetic refill");
        }
        let info = BufferInfo::new(loaders.iter().map(SourceLoader::summary).collect());
        let out = core.synthesize(&info).expect("plan");
        let mut popped = HashMap::new();
        for l in &mut loaders {
            if let Some(ids) = out.plan.directives.get(&l.id()) {
                let ids = ids.clone();
                for s in l.pop(&ids) {
                    popped.insert(s.meta.sample_id, s);
                }
            }
        }
        let batches = PipelineCore::assemble(&ctors, &out.plan, &popped);
        for b in &batches {
            let (s, p) = batch_delivery(b);
            samples += s;
            payload_bytes += p;
        }
        std::hint::black_box(batches);
    }
    Delivered {
        elapsed_s: t0.elapsed().as_secs_f64(),
        samples,
        payload_bytes,
    }
}

/// Deployment 2: actor-hosted components, synchronous single caller.
fn run_actorized() -> Delivered {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let mut samples = 0u64;
    let mut payload_bytes = 0u64;
    let t0 = Instant::now();
    for _ in 0..STEPS {
        let (_, _, batches) = pipeline.step(REFILL_TARGET).expect("threaded step");
        for b in &batches {
            let (s, p) = batch_delivery(b);
            samples += s;
            payload_bytes += p;
        }
        std::hint::black_box(batches);
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    pipeline.shutdown();
    Delivered {
        elapsed_s,
        samples,
        payload_bytes,
    }
}

/// Deployment 3: concurrent serving with pipelined refill-ahead.
/// Delivery is summed across clients — each pull hands the client an
/// `Arc`-shared view of the one constructed batch, so this measures the
/// fan-out rate of the zero-copy data plane.
fn run_serve(clients: u32) -> Delivered {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let t0 = Instant::now();
    let mut session = pipeline.serve(ServeOptions {
        clients,
        steps: STEPS,
        refill_target: REFILL_TARGET,
        queue_depth: 4,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let (mut pulled, mut samples, mut bytes) = (0u64, 0u64, 0u64);
                while let Some((_, batch)) = c.next() {
                    let (s, p) = batch_delivery(&batch);
                    samples += s;
                    bytes += p;
                    std::hint::black_box(&batch);
                    pulled += 1;
                }
                (pulled, samples, bytes)
            })
        })
        .collect();
    let (mut pulled, mut samples, mut payload_bytes) = (0u64, 0u64, 0u64);
    for h in handles {
        let (c_pulled, c_samples, c_bytes) = h.join().expect("client thread");
        pulled += c_pulled;
        samples += c_samples;
        payload_bytes += c_bytes;
    }
    let served = session.join();
    let elapsed_s = t0.elapsed().as_secs_f64();
    assert_eq!(served, STEPS, "driver fell short");
    assert_eq!(pulled, STEPS * u64::from(clients), "clients missed steps");
    pipeline.shutdown();
    Delivered {
        elapsed_s,
        samples,
        payload_bytes,
    }
}

/// Deployment 5: the distributed serving plane — the same serve drive
/// as deployment 3, but consumers are `RemoteClient`s reaching the
/// pipeline through the `DataServer` actor and the MSDB wire protocol
/// (Hello/Subscribe/Batch/Ack/Credit/Close with credit-based flow
/// control), over the given transport. Loopback keeps batch payloads
/// `Arc`-shared, so its delta vs `run_serve` is pure protocol overhead;
/// the sim transport additionally serializes every frame through the
/// binary batch codec, so *its* delta vs loopback is pure encoding
/// cost.
fn run_distributed(clients: u32, transport: Arc<dyn Transport>) -> Delivered {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    // The 1×4×1×2 mesh: DP bucket `d` holds ranks {2d, 2d+1}; spread the
    // clients over all buckets (and both TP ranks) like `serve` does via
    // `id % constructors`.
    let placements: Vec<RemotePlacement> = (0..clients)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 4) * 2 + (c / 4) % 2,
        })
        .collect();
    let t0 = Instant::now();
    let (session, handle) = pipeline.serve_distributed(
        ServeOptions {
            clients,
            steps: STEPS,
            refill_target: REFILL_TARGET,
            queue_depth: 4,
            prefetch: true,
            pull_timeout: Duration::from_millis(500),
            ..ServeOptions::default()
        },
        transport,
        &placements,
    );
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let mut rc = handle.connect(c);
            std::thread::spawn(move || {
                let (mut pulled, mut samples, mut bytes) = (0u64, 0u64, 0u64);
                while let Some((_, batch)) = rc.next() {
                    let (s, p) = batch_delivery(&batch);
                    samples += s;
                    bytes += p;
                    std::hint::black_box(&batch);
                    pulled += 1;
                }
                (pulled, samples, bytes)
            })
        })
        .collect();
    let (mut pulled, mut samples, mut payload_bytes) = (0u64, 0u64, 0u64);
    for h in handles {
        let (c_pulled, c_samples, c_bytes) = h.join().expect("remote client thread");
        pulled += c_pulled;
        samples += c_samples;
        payload_bytes += c_bytes;
    }
    let served = session.join();
    let elapsed_s = t0.elapsed().as_secs_f64();
    assert_eq!(served, STEPS, "distributed driver fell short");
    assert_eq!(
        pulled,
        STEPS * u64::from(clients),
        "remote clients missed steps"
    );
    pipeline.shutdown();
    Delivered {
        elapsed_s,
        samples,
        payload_bytes,
    }
}

/// The elastic scenario's phase boundaries (plan steps): a steady uniform
/// mixture, a hot-source phase that forces live loader scale-ups, then a
/// return to uniform that forces retirements. Throughput is measured per
/// window from client pull timestamps.
const ELASTIC_STEPS: u64 = 30;
const ELASTIC_HOT_AT: u64 = 10;
const ELASTIC_COOL_AT: u64 = 20;

/// Measured delivery of the elastic serve session, windowed around the
/// scaling events.
struct ElasticReport {
    /// Steady-state delivered samples/s before any scaling (warmup
    /// steps excluded).
    before: f64,
    /// Delivered samples/s across the mixture shift + scale-up window.
    during: f64,
    /// Delivered samples/s after the retirement settles.
    after: f64,
    /// Live loader spawns executed by the controller.
    scale_ups: u64,
    /// Live retirements executed by the controller.
    scale_downs: u64,
}

impl ElasticReport {
    /// `after ÷ before`: how much of steady-state throughput the fleet
    /// recovers once scaling and rebalancing settle.
    fn recovery_ratio(&self) -> f64 {
        self.after / self.before
    }
}

/// Deployment 4: concurrent serving under a drifting source mixture with
/// the elastic control plane live (controller ticked every serve step).
fn run_elastic() -> ElasticReport {
    let catalog = catalog();
    let uniform = vec![0.2; 5];
    let schedule = MixSchedule::Staged(vec![
        (0, uniform.clone()),
        (ELASTIC_HOT_AT, vec![0.8, 0.05, 0.05, 0.05, 0.05]),
        (ELASTIC_COOL_AT, uniform),
    ]);
    let ctrl = ControllerConfig {
        alpha: 0.6,
        patience: 2,
        max_loaders_per_source: 3,
        ..ControllerConfig::default()
    };
    let mut pipeline = ThreadedPipeline::new_with(
        sources(&catalog),
        planner_with(&catalog, schedule),
        constructors(4),
        99,
        Gcs::new(),
        ctrl,
    );
    let mut session = pipeline.serve(ServeOptions {
        clients: 2,
        steps: ELASTIC_STEPS,
        refill_target: REFILL_TARGET,
        queue_depth: 4,
        prefetch: true,
        pull_timeout: Duration::from_millis(500),
        control_interval: 1,
        ..ServeOptions::default()
    });
    // Each client records (step, delivered samples, pull completion time).
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut timeline: Vec<(u64, u64, Instant)> = Vec::new();
                while let Some((step, batch)) = c.next() {
                    let (s, _) = batch_delivery(&batch);
                    timeline.push((step, s, Instant::now()));
                }
                timeline
            })
        })
        .collect();
    let timelines: Vec<Vec<(u64, u64, Instant)>> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let served = session.join();
    assert_eq!(served, ELASTIC_STEPS, "elastic driver fell short");
    let status = pipeline
        .controller_status()
        .expect("controller unreachable");
    pipeline.shutdown();

    // Windowed delivered rate: samples pulled in [a, b) over the span of
    // their pull timestamps, summed across clients.
    let rate = |a: u64, b: u64| -> f64 {
        let mut samples = 0u64;
        let mut t0: Option<Instant> = None;
        let mut t1: Option<Instant> = None;
        for timeline in &timelines {
            for (step, s, t) in timeline {
                if *step >= a && *step < b {
                    samples += s;
                    t0 = Some(t0.map_or(*t, |x: Instant| x.min(*t)));
                    t1 = Some(t1.map_or(*t, |x: Instant| x.max(*t)));
                }
            }
        }
        match (t0, t1) {
            (Some(t0), Some(t1)) if t1 > t0 => samples as f64 / (t1 - t0).as_secs_f64(),
            _ => 0.0,
        }
    };
    ElasticReport {
        before: rate(2, ELASTIC_HOT_AT),
        during: rate(ELASTIC_HOT_AT, ELASTIC_COOL_AT + 2),
        after: rate(ELASTIC_COOL_AT + 2, ELASTIC_STEPS),
        scale_ups: status.scale_ups,
        scale_downs: status.scale_downs,
    }
}

/// The degraded scenario's phase boundaries (serve steps): a clean
/// steady window, a fault window riding out one flapping client and two
/// full-fabric partitions, and a recovered tail after the last fault
/// clears. Windowed delivered rates come from client pull timestamps,
/// exactly like the elastic scenario.
const DEGRADED_CLIENTS: u32 = 8;
const DEGRADED_STEPS: u64 = 28;
const DEGRADED_STEADY_END: u64 = 8;
const DEGRADED_RECOVER_AT: u64 = 20;
/// The flapping client, and the consumed counts at which it silently
/// drops its connection mid-stream (no `Close`); each flap redials
/// under seeded exponential backoff and resumes from the cursor.
const FLAPPER: u32 = 7;
const FLAP_AT: [u64; 3] = [9, 12, 15];
/// Observed server progress (the *slowest* client's pull cursor, so
/// every client has cleared the previous fault) at which the harness
/// blocks every chaos link for one beat — a short full-fabric
/// partition the protocol must ride out with retransmits + redials.
const PARTITION_AT: [u64; 2] = [10, 13];

/// Measured delivery of the degraded serve session, windowed around
/// the injected faults.
struct DegradedReport {
    /// Delivered samples/s before any fault (warmup steps excluded).
    steady: f64,
    /// Delivered samples/s across the flap + partition window.
    faulted: f64,
    /// Delivered samples/s after the last fault clears.
    recovered: f64,
    /// Redials the flapping client performed.
    flapper_reconnects: u64,
    /// Backoff sleeps the flapping client served before redialing.
    flapper_backoffs: u64,
}

impl DegradedReport {
    /// `recovered ÷ steady`: how much of fault-free throughput the
    /// fleet regains once the faults stop — `bench.sh --check` gates
    /// this at ≥ 0.70. The steady window sits early in the run while
    /// production is still ramping, so a healthy run lands well above
    /// 1.0; what the floor catches is residual fault damage — a client
    /// that never resumed spends the recovered window in 300 ms
    /// pull-timeout stalls, which stretches the window span and drags
    /// the ratio under the gate.
    fn recovery_ratio(&self) -> f64 {
        self.recovered / self.steady
    }
}

/// Deployment 6: the distributed serve@8 of deployment 5, degraded on
/// purpose — loopback wrapped in a seeded `ChaosTransport` (2% frame
/// duplicate/reorder noise), one client flapping its connection
/// three times mid-run, and two scheduled full-fabric partitions. The
/// serving plane's hardening (retransmit buffers, cursor resume,
/// seeded redial backoff) is what keeps every client gap-free; the
/// report measures what the faults cost and how fully throughput
/// recovers.
fn run_degraded() -> DegradedReport {
    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let placements: Vec<RemotePlacement> = (0..DEGRADED_CLIENTS)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 4) * 2 + (c / 4) % 2,
        })
        .collect();
    // Frame-level noise replays from the seed. Duplicates and
    // adjacent-swap reorders only — their delay is bounded, so the
    // recovered window is genuinely fault-free once the partitions and
    // flaps stop; probability *drops* each cost a pull-timeout stall
    // and belong to `tests/chaos_serve.rs`, not a windowed rate gate.
    // The partitions are driven from the harness loop below so they
    // land in the faulted window regardless of frame volume.
    let plan = ChaosPlan::seeded(0xDE64_ADED)
        .with_duplicates(0.02)
        .with_reorders(0.02);
    let chaos = Arc::new(ChaosTransport::new(Arc::new(LoopbackTransport), plan));
    let (session, handle) = pipeline.serve_distributed(
        ServeOptions {
            clients: DEGRADED_CLIENTS,
            steps: DEGRADED_STEPS,
            refill_target: REFILL_TARGET,
            queue_depth: 4,
            prefetch: true,
            pull_timeout: Duration::from_millis(300),
            ..ServeOptions::default()
        },
        chaos.clone(),
        &placements,
    );
    let handles: Vec<_> = (0..DEGRADED_CLIENTS)
        .map(|c| {
            let mut rc = handle.connect(c);
            std::thread::spawn(move || {
                let mut timeline: Vec<(u64, u64, Instant)> = Vec::new();
                while let Some((step, batch)) = rc.next() {
                    let (s, _) = batch_delivery(&batch);
                    timeline.push((step, s, Instant::now()));
                    if rc.id == FLAPPER && FLAP_AT.contains(&rc.consumed()) {
                        rc.disconnect(); // Silent flap; next() redials.
                    }
                }
                (timeline, rc.stats())
            })
        })
        .collect();

    // Harness half of the fault schedule: watch server-side progress
    // and cut every link for one beat at each partition threshold.
    let mut partitions: Vec<u64> = PARTITION_AT.to_vec();
    let fault_deadline = Instant::now() + Duration::from_secs(30);
    while !partitions.is_empty() && Instant::now() < fault_deadline {
        if let Some(status) = handle.status() {
            let progress = status
                .clients
                .iter()
                .map(|c| c.next_pull)
                .min()
                .unwrap_or(0);
            if progress >= partitions[0] {
                partitions.remove(0);
                let links = chaos.links();
                for l in &links {
                    l.block();
                }
                std::thread::sleep(Duration::from_millis(250));
                for l in &links {
                    l.unblock();
                }
                continue;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(partitions.is_empty(), "degraded partitions never fired");

    let mut timelines: Vec<Vec<(u64, u64, Instant)>> = Vec::new();
    let mut flapper_stats = None;
    for (c, h) in handles.into_iter().enumerate() {
        let (timeline, stats) = h.join().expect("degraded client thread");
        assert_eq!(
            timeline.len() as u64,
            DEGRADED_STEPS,
            "degraded client {c} missed steps"
        );
        if c as u32 == FLAPPER {
            flapper_stats = Some(stats);
        }
        timelines.push(timeline);
    }
    let served = session.join();
    assert_eq!(served, DEGRADED_STEPS, "degraded driver fell short");
    pipeline.shutdown();
    let flapper_stats = flapper_stats.expect("flapper stats");
    assert!(
        flapper_stats.reconnects >= FLAP_AT.len() as u64,
        "flapper never flapped: {flapper_stats:?}"
    );

    let rate = |a: u64, b: u64| -> f64 {
        let mut samples = 0u64;
        let mut t0: Option<Instant> = None;
        let mut t1: Option<Instant> = None;
        for timeline in &timelines {
            for (step, s, t) in timeline {
                if *step >= a && *step < b {
                    samples += s;
                    t0 = Some(t0.map_or(*t, |x: Instant| x.min(*t)));
                    t1 = Some(t1.map_or(*t, |x: Instant| x.max(*t)));
                }
            }
        }
        match (t0, t1) {
            (Some(t0), Some(t1)) if t1 > t0 => samples as f64 / (t1 - t0).as_secs_f64(),
            _ => 0.0,
        }
    };
    DegradedReport {
        steady: rate(2, DEGRADED_STEADY_END),
        faulted: rate(DEGRADED_STEADY_END, DEGRADED_RECOVER_AT),
        recovered: rate(DEGRADED_RECOVER_AT, DEGRADED_STEPS),
        flapper_reconnects: flapper_stats.reconnects,
        flapper_backoffs: flapper_stats.backoffs,
    }
}

/// The massive fan-out scenario's shape: a small fixed active set
/// streams the full run while the rest of the fleet sits attached and
/// idle. The totals sweep 256 → 4k so the wall-cost slope across them
/// measures what one *idle* client costs.
const MANY_TOTALS: [u32; 3] = [256, 1024, 4096];
const MANY_ACTIVE: u32 = 8;
const MANY_STEPS: u64 = 24;

/// Measured delivery of one `many_clients` total.
struct ManyClientsReport {
    /// Connected clients (active + idle).
    total: u32,
    /// Wall seconds of the active streaming window, measured with the
    /// full idle fleet attached.
    wall_s: f64,
    /// Samples delivered to the active set in that window.
    samples: u64,
    /// Pump-tick p99 over the window (the per-tick cost the activity
    /// ring + expiry wheel keep independent of session count).
    pump_p99_us: f64,
    /// Largest retained retransmit byte count across the idle fleet at
    /// the end of the run (flat-cost idle clients retain nothing).
    idle_retained_max_bytes: u64,
    /// Reader-plane shard threads — fixed by core count, not sessions.
    reader_threads: usize,
}

impl ManyClientsReport {
    fn samples_per_sec(&self) -> f64 {
        self.samples as f64 / self.wall_s
    }
}

/// Fan-out scenario: the distributed serve of deployment 5 with
/// `MANY_ACTIVE` streaming clients, run while `total - MANY_ACTIVE`
/// idle clients hold bound sessions (Hello + an end-of-stream
/// Subscribe: the idle-attach path, a registry entry on the sharded
/// reader plane and nothing else). The active window's wall clock at
/// 256 vs 4096 total clients is the per-idle-client cost slope
/// `bench.sh --check` gates at ≤ 1.25.
fn run_many_clients(total: u32) -> ManyClientsReport {
    use msd_core::system::net::WireFrame;
    use msd_core::system::server::ServerConfig;

    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 99);
    let placements: Vec<RemotePlacement> = (0..total)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 4) * 2 + (c / 4) % 2,
        })
        .collect();
    let (session, handle) = pipeline.serve_distributed(
        ServeOptions {
            clients: MANY_ACTIVE,
            steps: MANY_STEPS,
            refill_target: REFILL_TARGET,
            queue_depth: 4,
            prefetch: true,
            pull_timeout: Duration::from_millis(500),
            server: ServerConfig {
                max_sessions: total as usize + 16,
                ..ServerConfig::default()
            },
            ..ServeOptions::default()
        },
        Arc::new(LoopbackTransport),
        &placements,
    );

    // Attach the idle fleet before the measured window so the active
    // run streams against the full session count. Each connection is
    // held open (dropping it would be a hang-up, not an idle session).
    let idle_conns: Vec<_> = (MANY_ACTIVE..total)
        .map(|c| {
            let conn = handle.dial_raw();
            conn.tx
                .send(WireFrame::Hello {
                    client: c,
                    rank: placements[c as usize].rank,
                })
                .expect("idle hello");
            conn.tx
                .send(WireFrame::Subscribe {
                    client: c,
                    from_step: MANY_STEPS,
                    credits: 0,
                })
                .expect("idle subscribe");
            conn
        })
        .collect();
    let attach_deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Some(status) = handle.status() {
            let attached = status
                .clients
                .iter()
                .filter(|c| c.client >= MANY_ACTIVE && c.done)
                .count() as u32;
            if attached == total - MANY_ACTIVE {
                break;
            }
        }
        assert!(
            Instant::now() < attach_deadline,
            "many_clients@{total}: idle fleet never finished attaching"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let stages_before = msd_core::metrics::snapshot();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..MANY_ACTIVE)
        .map(|c| {
            let mut rc = handle.connect(c);
            std::thread::spawn(move || {
                let (mut pulled, mut samples) = (0u64, 0u64);
                while let Some((_, batch)) = rc.next() {
                    let (s, _) = batch_delivery(&batch);
                    samples += s;
                    std::hint::black_box(&batch);
                    pulled += 1;
                }
                (pulled, samples)
            })
        })
        .collect();
    let (mut pulled, mut samples) = (0u64, 0u64);
    for h in handles {
        let (c_pulled, c_samples) = h.join().expect("many-clients active client");
        pulled += c_pulled;
        samples += c_samples;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stages_after = msd_core::metrics::snapshot();
    assert_eq!(
        pulled,
        MANY_STEPS * u64::from(MANY_ACTIVE),
        "many_clients@{total}: active clients missed steps"
    );

    let status = handle.status().expect("many_clients status");
    let idle_retained_max_bytes = status
        .clients
        .iter()
        .filter(|c| c.client >= MANY_ACTIVE)
        .map(|c| c.unacked_bytes)
        .max()
        .unwrap_or(0);
    let reader_threads = handle.reader_threads();
    let served = session.join();
    assert_eq!(
        served, MANY_STEPS,
        "many_clients@{total}: driver fell short"
    );
    drop(idle_conns);
    pipeline.shutdown();

    let pump_h = stages_after
        .stage(msd_core::metrics::Stage::Pump)
        .histogram
        .since(
            &stages_before
                .stage(msd_core::metrics::Stage::Pump)
                .histogram,
        );
    ManyClientsReport {
        total,
        wall_s,
        samples,
        pump_p99_us: pump_h.quantile(0.99) as f64 / 1000.0,
        idle_retained_max_bytes,
        reader_threads,
    }
}

/// Frontier-retirement scenario shape: one deliberate laggard client is
/// paced to trail the slowest leader by `FRONTIER_LAG` steps for the
/// whole `FRONTIER_STEPS` run (10x the lag). Under frontier retirement
/// the retained plan log is bounded by the laggard's actual lag plus
/// the serve window — never by run length — which `bench.sh --check`
/// gates via `plan_log_retained_steps <= plan_log_retained_budget`.
const FRONTIER_STEPS: u64 = 80;
const FRONTIER_LAG: u64 = 8;
const FRONTIER_CLIENTS: u32 = 4;
/// Serve window. Must exceed `FRONTIER_LAG`: the driver refuses to run
/// more than `queue_depth` past the slowest floor, and the laggard
/// refuses to run closer than `FRONTIER_LAG` behind the leaders, so a
/// window smaller than the lag would deadlock the two paces.
const FRONTIER_QUEUE: u64 = 24;

/// Measured retention under the deliberate laggard, sampled with the
/// leaders finished and the laggard still parked at its lag.
struct FrontierReport {
    /// Global step frontier (min over live capability cursors).
    frontier_step: u64,
    /// Laggard's distance behind the served head at sample time.
    laggard_lag_steps: u64,
    /// Live `plan/{step}` entries still in the GCS at sample time.
    plan_log_retained_steps: u64,
    /// What frontier retirement bounds retention to: the lag, plus the
    /// serve window (retirement folds before the window's consumers
    /// ack), plus one retirement cadence of slack.
    plan_log_retained_budget: u64,
    /// Server-side retransmit bytes retained at sample time.
    retained_bytes: u64,
}

/// Distributed serve with `FRONTIER_CLIENTS - 1` free-running leaders
/// and one paced laggard. The laggard pulls step `s` only once every
/// leader is `FRONTIER_LAG` past it, holding its frontier capability a
/// fixed, known distance behind the head; retention is sampled after
/// the leaders drain, then the laggard is released to finish the run.
fn run_frontier() -> FrontierReport {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let catalog = catalog();
    let mut pipeline =
        ThreadedPipeline::new(sources(&catalog), planner(&catalog), constructors(4), 131);
    let placements: Vec<RemotePlacement> = (0..FRONTIER_CLIENTS)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 4) * 2,
        })
        .collect();
    let (session, handle) = pipeline.serve_distributed(
        ServeOptions {
            clients: FRONTIER_CLIENTS,
            steps: FRONTIER_STEPS,
            refill_target: REFILL_TARGET,
            queue_depth: FRONTIER_QUEUE,
            prefetch: true,
            pull_timeout: Duration::from_millis(500),
            ..ServeOptions::default()
        },
        Arc::new(LoopbackTransport),
        &placements,
    );

    let leader_marks: Arc<Vec<AtomicU64>> =
        Arc::new((1..FRONTIER_CLIENTS).map(|_| AtomicU64::new(0)).collect());
    let laggard_mark = Arc::new(AtomicU64::new(0));
    let release = Arc::new(AtomicBool::new(false));

    let laggard = {
        let mut rc = handle.connect(0);
        let leader_marks = Arc::clone(&leader_marks);
        let laggard_mark = Arc::clone(&laggard_mark);
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            let mut samples = 0u64;
            loop {
                while !release.load(Ordering::Acquire) {
                    let slowest_leader = leader_marks
                        .iter()
                        .map(|m| m.load(Ordering::Acquire))
                        .min()
                        .unwrap_or(0);
                    if laggard_mark.load(Ordering::Acquire) + FRONTIER_LAG <= slowest_leader {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                match rc.next() {
                    Some((_, batch)) => {
                        let (s, _) = batch_delivery(&batch);
                        samples += s;
                        laggard_mark.fetch_add(1, Ordering::Release);
                    }
                    None => break,
                }
            }
            samples
        })
    };
    let leaders: Vec<_> = (1..FRONTIER_CLIENTS)
        .map(|c| {
            let mut rc = handle.connect(c);
            let marks = Arc::clone(&leader_marks);
            std::thread::spawn(move || {
                let mut pulled = 0u64;
                while let Some((_, batch)) = rc.next() {
                    std::hint::black_box(&batch);
                    pulled += 1;
                    marks[(c - 1) as usize].store(pulled, Ordering::Release);
                }
                pulled
            })
        })
        .collect();
    for (i, h) in leaders.into_iter().enumerate() {
        let pulled = h.join().expect("frontier leader");
        assert_eq!(pulled, FRONTIER_STEPS, "frontier leader {i} missed steps");
    }

    // Leaders are done; the laggard is parked FRONTIER_LAG short of the
    // head, pinning the frontier there. Let its in-flight acks land,
    // then sample what the protocol retained.
    std::thread::sleep(Duration::from_millis(100));
    let status = handle.status().expect("frontier status");
    let laggard_at = laggard_mark.load(Ordering::Acquire);
    let plan_log_retained_steps = (0..FRONTIER_STEPS)
        .filter(|s| pipeline.gcs.get_state(&format!("plan/{s}")).is_some())
        .count() as u64;
    let report = FrontierReport {
        frontier_step: status.frontier,
        laggard_lag_steps: FRONTIER_STEPS - laggard_at,
        plan_log_retained_steps,
        plan_log_retained_budget: FRONTIER_LAG + FRONTIER_QUEUE + 8,
        retained_bytes: status.retained_bytes,
    };

    release.store(true, Ordering::Release);
    let laggard_samples = laggard.join().expect("frontier laggard");
    assert!(laggard_samples > 0, "laggard delivered nothing");
    assert_eq!(session.join(), FRONTIER_STEPS, "frontier driver fell short");
    pipeline.shutdown();
    report
}

fn main() {
    banner(
        "runtime_throughput",
        "inline vs actorized vs actorized+prefetch concurrent serving",
    );

    let inline = run_inline();
    let actorized = run_actorized();
    let client_counts = [1u32, 2, 4, 8];
    let mut serve: Vec<Delivered> = client_counts[..client_counts.len() - 1]
        .iter()
        .map(|c| run_serve(*c))
        .collect();
    // Memory scenario: bracket the serve@8 run with buffer-pool counter
    // and stage-latency snapshots. Every lease is one would-be backing
    // allocation of the pre-pool hot path, so leases/misses is exactly
    // the allocation-reduction factor the pool delivers; by this point
    // the pool is warm (inline/actorized/serve@{1,2,4} ran first), so
    // this window is the steady state the gates in bench.sh guard.
    let pool_before = msd_core::pool::global().counters();
    let stages_before = msd_core::metrics::snapshot();
    serve.push(run_serve(client_counts[client_counts.len() - 1]));
    let pool_mem = msd_core::pool::global().counters().since(&pool_before);
    let stages_after = msd_core::metrics::snapshot();
    let mem_samples = (STEPS * SAMPLES_PER_STEP as u64) as f64;
    let leases_per_sample = pool_mem.leases as f64 / mem_samples;
    let allocs_per_sample = pool_mem.misses as f64 / mem_samples;
    let pool_hit_rate = pool_mem.hit_rate();
    let alloc_reduction = pool_mem.leases as f64 / pool_mem.misses.max(1) as f64;
    let stage_delta = |stage: msd_core::metrics::Stage| {
        stages_after
            .stage(stage)
            .histogram
            .since(&stages_before.stage(stage).histogram)
    };
    let decode_h = stage_delta(msd_core::metrics::Stage::Decode);
    let construct_h = stage_delta(msd_core::metrics::Stage::Construct);
    // Raw serve@8 ÷ serve@1 routinely lands *above* 8.0: serve@1 pays
    // the full per-step driver latency for one consumer while serve@8
    // amortizes it over eight Arc-shared pulls, and wall-clock noise on
    // shared CI boxes adds a few percent either way. Anything past the
    // client count is measurement artifact, not real efficiency, so the
    // reported metric clamps there (the raw ratio is emitted alongside
    // for forensics).
    let scaling_efficiency_raw = serve[3].samples_per_sec() / serve[0].samples_per_sec();
    let scaling_efficiency =
        scaling_efficiency_raw.min(f64::from(client_counts[client_counts.len() - 1]));
    let distributed_clients = client_counts[client_counts.len() - 1];
    let distributed = run_distributed(distributed_clients, Arc::new(LoopbackTransport));
    // Protocol overhead of the distributed plane: delivered throughput
    // relative to the same serve drive with in-process clients.
    let distributed_vs_local = distributed.samples_per_sec() / serve[3].samples_per_sec();
    // The same serve over a wire-speed, loss-free sim link: every batch
    // crosses the wire through the binary MSDB batch codec, so the
    // delta vs loopback isolates pure encode/decode cost, and the sim's
    // traffic counters yield the wire bytes paid per delivered sample.
    let wire_speed = NetModel {
        base_latency: SimDuration::from_micros(0),
        bandwidth_bps: 1e12,
        ..NetModel::default()
    };
    let sim = Arc::new(SimTransport::new(wire_speed, 0.0, 5));
    let distributed_sim = run_distributed(distributed_clients, sim.clone());
    let sim_vs_loopback = distributed_sim.samples_per_sec() / distributed.samples_per_sec();
    let wire_bytes_per_sample = sim.stats().wire_bytes_per_sample();
    let elastic = run_elastic();
    let degraded = run_degraded();
    let many: Vec<ManyClientsReport> = MANY_TOTALS.iter().map(|t| run_many_clients(*t)).collect();
    // The knee metric: wall cost of the same active workload at 4096
    // vs 256 attached clients. Flat idle cost ⇒ ratio ≈ 1.0; the gate
    // in bench.sh allows 1.25 for shared-box noise.
    let cost_per_idle_client_ratio = many[many.len() - 1].wall_s / many[0].wall_s;
    let frontier = run_frontier();

    table_header(&[
        "deployment",
        "clients",
        "elapsed_s",
        "delivered_samples/s",
        "payload_MB/s",
        "vs_inline",
    ]);
    let row = |name: &str, clients: u32, d: &Delivered| {
        table_row(&[
            name.into(),
            clients.to_string(),
            f(d.elapsed_s),
            f(d.samples_per_sec()),
            f(d.payload_mb_per_sec()),
            format!("{:.2}x", d.samples_per_sec() / inline.samples_per_sec()),
        ]);
    };
    row("inline", 1, &inline);
    row("actorized", 1, &actorized);
    for (c, d) in client_counts.iter().zip(&serve) {
        row("serve+prefetch", *c, d);
    }
    row("distributed(loopback)", distributed_clients, &distributed);
    row("distributed(sim)", distributed_clients, &distributed_sim);
    println!("\n[steps={STEPS}, samples/step={SAMPLES_PER_STEP}; delivered throughput sums over");
    println!(" consumers: serve clients share each constructed batch zero-copy, so fan-out");
    println!(
        " multiplies egress. scaling_efficiency (serve@8 / serve@1) = {scaling_efficiency:.2} \
         (raw {scaling_efficiency_raw:.2}, clamped at the client count);"
    );
    println!(
        " distributed loopback serve delivers {distributed_vs_local:.2}x of local serve@{distributed_clients};"
    );
    println!(
        " over a wire-speed sim link (binary batch codec on every frame) it holds \
         {sim_vs_loopback:.2}x"
    );
    println!(" of loopback at {wire_bytes_per_sample:.0} wire bytes per delivered sample]");

    println!("\nmemory (pooled buffers, measured across the serve@8 run):");
    table_header(&[
        "pool_hit_rate",
        "leases/sample",
        "allocs/sample",
        "alloc_reduction",
        "alloc_MB",
        "recycled_MB",
    ]);
    table_row(&[
        format!("{pool_hit_rate:.3}"),
        format!("{leases_per_sample:.2}"),
        format!("{allocs_per_sample:.3}"),
        format!("{alloc_reduction:.1}x"),
        f(pool_mem.bytes_allocated as f64 / (1 << 20) as f64),
        f(pool_mem.bytes_recycled as f64 / (1 << 20) as f64),
    ]);
    println!(
        "[leases = backing-buffer allocations the pre-pool hot path would have made; \
         misses = actual heap allocations now. stage latency p50/p99: decode {:.0}/{:.0}us, \
         construct {:.0}/{:.0}us]",
        decode_h.quantile(0.50) as f64 / 1000.0,
        decode_h.quantile(0.99) as f64 / 1000.0,
        construct_h.quantile(0.50) as f64 / 1000.0,
        construct_h.quantile(0.99) as f64 / 1000.0,
    );

    println!("\nelastic scenario (drifting mixture, controller live, 2 clients):");
    table_header(&[
        "window",
        "steps",
        "delivered_samples/s",
        "scale_ups",
        "scale_downs",
    ]);
    table_row(&[
        "steady".into(),
        format!("2..{ELASTIC_HOT_AT}"),
        f(elastic.before),
        "-".into(),
        "-".into(),
    ]);
    table_row(&[
        "scaling".into(),
        format!("{ELASTIC_HOT_AT}..{}", ELASTIC_COOL_AT + 2),
        f(elastic.during),
        elastic.scale_ups.to_string(),
        elastic.scale_downs.to_string(),
    ]);
    table_row(&[
        "recovered".into(),
        format!("{}..{ELASTIC_STEPS}", ELASTIC_COOL_AT + 2),
        f(elastic.after),
        "-".into(),
        "-".into(),
    ]);
    println!(
        "[recovery_ratio (post-rebalance / steady) = {:.2}]",
        elastic.recovery_ratio()
    );

    println!(
        "\ndegraded scenario (distributed serve@{DEGRADED_CLIENTS}, chaos transport, \
         one flapping client, {} partitions):",
        PARTITION_AT.len()
    );
    table_header(&["window", "steps", "delivered_samples/s"]);
    table_row(&[
        "steady".into(),
        format!("2..{DEGRADED_STEADY_END}"),
        f(degraded.steady),
    ]);
    table_row(&[
        "faulted".into(),
        format!("{DEGRADED_STEADY_END}..{DEGRADED_RECOVER_AT}"),
        f(degraded.faulted),
    ]);
    table_row(&[
        "recovered".into(),
        format!("{DEGRADED_RECOVER_AT}..{DEGRADED_STEPS}"),
        f(degraded.recovered),
    ]);
    println!(
        "[degraded_recovery_ratio (recovered / steady) = {:.2}; flapper redialed {} times \
         over {} backoff sleeps, every stream gap-free]",
        degraded.recovery_ratio(),
        degraded.flapper_reconnects,
        degraded.flapper_backoffs,
    );

    println!(
        "\nmany_clients scenario ({MANY_ACTIVE} active, rest idle-attached, \
         {} reader shards):",
        many[0].reader_threads
    );
    table_header(&[
        "total_clients",
        "wall_s",
        "delivered_samples/s",
        "pump_p99_us",
        "idle_retained_max_B",
    ]);
    for r in &many {
        table_row(&[
            r.total.to_string(),
            f(r.wall_s),
            f(r.samples_per_sec()),
            format!("{:.1}", r.pump_p99_us),
            r.idle_retained_max_bytes.to_string(),
        ]);
    }
    println!(
        "[cost_per_idle_client_ratio (wall@{} / wall@{}) = {:.2}; flat idle cost is ~1.0, \
         bench.sh --check gates <= 1.25]",
        MANY_TOTALS[MANY_TOTALS.len() - 1],
        MANY_TOTALS[0],
        cost_per_idle_client_ratio
    );

    println!(
        "\nfrontier scenario (distributed serve@{FRONTIER_CLIENTS}, one laggard held \
         {FRONTIER_LAG} steps behind over {FRONTIER_STEPS} steps):"
    );
    table_header(&[
        "laggard_lag",
        "frontier_step",
        "plan_log_retained",
        "retained_budget",
        "retained_B",
    ]);
    table_row(&[
        frontier.laggard_lag_steps.to_string(),
        frontier.frontier_step.to_string(),
        frontier.plan_log_retained_steps.to_string(),
        frontier.plan_log_retained_budget.to_string(),
        frontier.retained_bytes.to_string(),
    ]);
    println!(
        "[retained plan log is bounded by the laggard's lag + the serve window, never by \
         run length; bench.sh --check gates plan_log_retained_steps <= plan_log_retained_budget]"
    );

    if let Ok(path) = std::env::var("BENCH_JSON_OUT") {
        let by_clients = |metric: &dyn Fn(&Delivered) -> f64| -> String {
            client_counts
                .iter()
                .zip(&serve)
                .map(|(c, d)| format!("    \"{}\": {:.2}", c, metric(d)))
                .collect::<Vec<_>>()
                .join(",\n")
        };
        let json = format!(
            "{{\n  \"bench\": \"runtime_throughput\",\n  \"steps\": {STEPS},\n  \
             \"samples_per_step\": {SAMPLES_PER_STEP},\n  \
             \"samples_per_sec\": {{\n    \"inline\": {:.2},\n    \"actorized\": {:.2},\n    \
             \"serve_prefetch_by_clients\": {{\n{}\n    }}\n  }},\n  \
             \"payload_mb_per_sec\": {{\n    \"inline\": {:.2},\n    \"actorized\": {:.2},\n    \
             \"serve_prefetch_by_clients\": {{\n{}\n    }}\n  }},\n  \
             \"scaling_efficiency\": {:.2},\n  \
             \"scaling_efficiency_raw\": {:.2},\n  \
             \"distributed\": {{\n    \"clients\": {},\n    \
             \"samples_per_sec\": {:.2},\n    \
             \"payload_mb_per_sec\": {:.2},\n    \
             \"vs_local_serve8\": {:.2},\n    \
             \"sim_samples_per_sec\": {:.2},\n    \
             \"sim_vs_loopback\": {:.2},\n    \
             \"wire_bytes_per_sample\": {:.1}\n  }},\n  \
             \"memory\": {{\n    \"pool_hit_rate\": {:.3},\n    \
             \"leases_per_sample\": {:.2},\n    \
             \"allocs_per_sample\": {:.3},\n    \
             \"alloc_reduction\": {:.1},\n    \
             \"pool_bytes_allocated_mb\": {:.2},\n    \
             \"pool_bytes_recycled_mb\": {:.2},\n    \
             \"decode_p99_us\": {:.1},\n    \
             \"construct_p99_us\": {:.1}\n  }},\n  \
             \"elastic\": {{\n    \"steady_samples_per_sec\": {:.2},\n    \
             \"scaling_samples_per_sec\": {:.2},\n    \
             \"recovered_samples_per_sec\": {:.2},\n    \
             \"recovery_ratio\": {:.2},\n    \
             \"scale_ups\": {},\n    \"scale_downs\": {}\n  }},\n  \
             \"degraded\": {{\n    \"steady_samples_per_sec\": {:.2},\n    \
             \"faulted_samples_per_sec\": {:.2},\n    \
             \"recovered_samples_per_sec\": {:.2},\n    \
             \"degraded_recovery_ratio\": {:.2},\n    \
             \"flapper_reconnects\": {},\n    \"flapper_backoffs\": {}\n  }}\n}}\n",
            inline.samples_per_sec(),
            actorized.samples_per_sec(),
            by_clients(&Delivered::samples_per_sec),
            inline.payload_mb_per_sec(),
            actorized.payload_mb_per_sec(),
            by_clients(&Delivered::payload_mb_per_sec),
            scaling_efficiency,
            scaling_efficiency_raw,
            distributed_clients,
            distributed.samples_per_sec(),
            distributed.payload_mb_per_sec(),
            distributed_vs_local,
            distributed_sim.samples_per_sec(),
            sim_vs_loopback,
            wire_bytes_per_sample,
            pool_hit_rate,
            leases_per_sample,
            allocs_per_sample,
            alloc_reduction,
            pool_mem.bytes_allocated as f64 / (1 << 20) as f64,
            pool_mem.bytes_recycled as f64 / (1 << 20) as f64,
            decode_h.quantile(0.99) as f64 / 1000.0,
            construct_h.quantile(0.99) as f64 / 1000.0,
            elastic.before,
            elastic.during,
            elastic.after,
            elastic.recovery_ratio(),
            elastic.scale_ups,
            elastic.scale_downs,
            degraded.steady,
            degraded.faulted,
            degraded.recovered,
            degraded.recovery_ratio(),
            degraded.flapper_reconnects,
            degraded.flapper_backoffs,
        );
        // Fan-out section: every key is suffixed with its client total
        // so bench.sh's first-match extractor stays unambiguous.
        let many_rows = many
            .iter()
            .map(|r| {
                format!(
                    "    \"samples_per_sec_{}\": {:.2},\n    \
                     \"wall_ms_{}\": {:.1},\n    \
                     \"pump_p99_us_{}\": {:.1}",
                    r.total,
                    r.samples_per_sec(),
                    r.total,
                    r.wall_s * 1000.0,
                    r.total,
                    r.pump_p99_us,
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let many_json = format!(
            "  \"many_clients\": {{\n    \"active_clients\": {MANY_ACTIVE},\n    \
             \"steps\": {MANY_STEPS},\n{many_rows},\n    \
             \"idle_retained_max_bytes\": {},\n    \
             \"reader_threads\": {},\n    \
             \"cost_per_idle_client_ratio\": {:.2}\n  }}\n}}\n",
            many.iter()
                .map(|r| r.idle_retained_max_bytes)
                .max()
                .unwrap_or(0),
            many[0].reader_threads,
            cost_per_idle_client_ratio,
        );
        let json = json
            .trim_end()
            .strip_suffix('}')
            .expect("report ends with a brace")
            .to_string()
            + ",\n"
            + &many_json;
        let frontier_json = format!(
            "  \"frontier\": {{\n    \"steps\": {FRONTIER_STEPS},\n    \
             \"laggard_lag_steps\": {},\n    \
             \"frontier_step\": {},\n    \
             \"plan_log_retained_steps\": {},\n    \
             \"plan_log_retained_budget\": {},\n    \
             \"retained_bytes\": {}\n  }}\n}}\n",
            frontier.laggard_lag_steps,
            frontier.frontier_step,
            frontier.plan_log_retained_steps,
            frontier.plan_log_retained_budget,
            frontier.retained_bytes,
        );
        let json = json
            .trim_end()
            .strip_suffix('}')
            .expect("fan-out report ends with a brace")
            .to_string()
            + ",\n"
            + &frontier_json;
        std::fs::write(&path, json).expect("write BENCH_JSON_OUT");
        println!("[json report written to {path}]");
    }
}
