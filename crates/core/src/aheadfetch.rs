//! Ahead-of-Fetch load balancing (paper §9, "Future Work").
//!
//! The production pipeline balances *reactively*: Source Loaders fetch and
//! transform samples into read buffers, and only then does the Planner see
//! their metadata. Ahead-of-Fetch inverts this: per-sample metadata (and
//! optionally pre-computed costs, embedded at dataset-build time) is read
//! straight from storage footers and metadata columns with cheap
//! column-projection scans, the Planner balances *first*, and loaders then
//! fetch exactly the rows the plan names — never materializing excluded
//! samples.
//!
//! Components:
//!
//! - [`MetaIndex`]: a per-source metadata index built from an `MSDCOL01`
//!   file without touching payload columns.
//! - [`PositionalFetcher`]: row-group-granular payload fetches for exactly
//!   the sample ids a [`LoadingPlan`] directive names.
//! - [`AheadOfFetchSession`]: drives a standard [`Planner`] from indexes
//!   instead of loader buffers and accounts the avoided payload traffic.

use std::collections::HashMap;
use std::sync::Arc;

use msd_data::gen::COST_COLUMN;
use msd_data::{Modality, Sample, SampleMeta, SourceId};
use msd_storage::{ColumnarReader, MemStore, StorageError};

use crate::buffer::{BufferInfo, BufferSummary};
use crate::plan::LoadingPlan;
use crate::planner::{PhaseBreakdown, Planner};

/// A per-source metadata index built ahead of any payload fetch.
///
/// Sample ids are namespaced exactly like a shard-0
/// [`crate::loader::SourceLoader`] would assign them
/// (`source << 48 | ordinal`), so plans generated from an index are
/// interchangeable with loader-driven plans.
#[derive(Debug, Clone)]
pub struct MetaIndex {
    /// The source this index covers.
    pub source: SourceId,
    /// Loader id used in the buffer summaries this index emits.
    pub loader_id: u32,
    entries: Vec<SampleMeta>,
    stored_costs: Option<Vec<f64>>,
    /// Virtual-time cost of building the index (footer + projection reads).
    pub build_io_ns: u64,
    /// Bytes transferred to build the index (metadata columns only).
    pub metadata_bytes: u64,
    /// Per-row-group `(rows, payload_chunk_bytes)` from the footer — the
    /// basis of fetch-savings accounting.
    group_payload: Vec<(u64, u64)>,
}

impl MetaIndex {
    /// Builds the index for `path`: opens the file, projection-scans the
    /// `text_tokens`/`img_patches` columns (plus `msd_cost` when the file
    /// embeds it), and never touches `text`/`image` payload chunks.
    pub fn build(
        store: &MemStore,
        path: &str,
        source: SourceId,
        modality: Modality,
        loader_id: u32,
    ) -> Result<Self, StorageError> {
        let mut reader = ColumnarReader::open(store, path)?;
        let schema = reader.schema().clone();
        let text_col = schema
            .index_of("text_tokens")
            .ok_or_else(|| StorageError::Corrupt("missing text_tokens column".into()))?;
        let img_col = schema
            .index_of("img_patches")
            .ok_or_else(|| StorageError::Corrupt("missing img_patches column".into()))?;
        let cost_col = schema.index_of(COST_COLUMN);

        let mut cols = vec![text_col, img_col];
        if let Some(c) = cost_col {
            cols.push(c);
        }
        let projected = reader.scan_columns(&cols)?;
        let footer = reader.footer();
        let payload_col = schema.index_of("image");
        let group_payload = footer
            .row_groups
            .iter()
            .map(|rg| {
                let payload = payload_col.map(|c| rg.columns[c].byte_len).unwrap_or(0);
                (rg.rows, payload)
            })
            .collect();
        let metadata_bytes: u64 = footer
            .row_groups
            .iter()
            .flat_map(|rg| cols.iter().map(|c| rg.columns[*c].byte_len))
            .sum::<u64>()
            + footer.encoded_len() as u64;

        let rows = projected[0].len();
        let mut entries = Vec::with_capacity(rows);
        for (ordinal, (tokens_v, patches_v)) in projected[0].iter().zip(&projected[1]).enumerate() {
            let text_tokens = tokens_v.as_i64().unwrap_or(0).max(0) as u32;
            let image_patches = patches_v.as_i64().unwrap_or(0).max(0) as u32;
            entries.push(SampleMeta {
                sample_id: (u64::from(source.0) << 48) | ordinal as u64,
                source,
                modality,
                text_tokens,
                image_patches,
                // Estimated from lengths, same model as the catalog; actual
                // payload bytes are only known after the (avoided) fetch.
                raw_bytes: u64::from(text_tokens) * 4 + u64::from(image_patches) * 48,
            });
        }
        let stored_costs = cost_col.map(|_| {
            projected[2]
                .iter()
                .map(|v| v.as_i64().unwrap_or(0).max(0) as f64)
                .collect()
        });
        Ok(MetaIndex {
            source,
            loader_id,
            entries,
            stored_costs,
            build_io_ns: reader.io_ns(),
            metadata_bytes,
            group_payload,
        })
    }

    /// Number of indexed samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indexed metadata, in file order.
    pub fn entries(&self) -> &[SampleMeta] {
        &self.entries
    }

    /// Whether the file embedded pre-computed costs.
    pub fn has_stored_costs(&self) -> bool {
        self.stored_costs.is_some()
    }

    /// The file ordinal of an indexed sample id, if it belongs here.
    pub fn ordinal_of(&self, sample_id: u64) -> Option<u64> {
        if sample_id >> 48 != u64::from(self.source.0) {
            return None;
        }
        let ordinal = sample_id & ((1 << 48) - 1);
        (ordinal < self.entries.len() as u64).then_some(ordinal)
    }

    /// The stored cost of a sample, when the file embeds costs.
    pub fn stored_cost(&self, sample_id: u64) -> Option<f64> {
        let ordinal = self.ordinal_of(sample_id)?;
        self.stored_costs.as_ref().map(|c| c[ordinal as usize])
    }

    /// A `sample_id → stored cost` table for use with
    /// [`crate::dgraph::DGraph::cost`] (zero-recompute cost registration).
    pub fn cost_table(&self) -> HashMap<u64, f64> {
        match &self.stored_costs {
            None => HashMap::new(),
            Some(costs) => self
                .entries
                .iter()
                .zip(costs)
                .map(|(m, c)| (m.sample_id, *c))
                .collect(),
        }
    }

    /// A buffer summary over the index window `[start, start+len)`, shaped
    /// exactly like a Source Loader's — so a standard [`Planner`] consumes
    /// it unchanged.
    pub fn summary(&self, start: usize, len: usize) -> BufferSummary {
        let end = (start + len).min(self.entries.len());
        let start = start.min(end);
        BufferSummary {
            loader_id: self.loader_id,
            source: self.source,
            samples: self.entries[start..end].to_vec(),
            mean_transform_ns: 0.0,
        }
    }

    /// Estimated payload bytes of the window `[start, start+len)` — what a
    /// buffer-first loader would have fetched to show the Planner the same
    /// metadata. Accounted at row-group granularity (a loader reads whole
    /// groups).
    pub fn window_payload_bytes(&self, start: usize, len: usize) -> u64 {
        let end = (start + len).min(self.entries.len()) as u64;
        let start = (start as u64).min(end);
        let mut base = 0u64;
        let mut bytes = 0u64;
        for (rows, payload) in &self.group_payload {
            let g_start = base;
            let g_end = base + rows;
            if g_end > start && g_start < end {
                bytes += payload;
            }
            base = g_end;
        }
        bytes
    }

    /// Payload bytes of the row groups containing the given sample ids
    /// (row-group-granular fetch accounting).
    pub fn payload_bytes_for(&self, ids: &[u64]) -> u64 {
        let mut touched = vec![false; self.group_payload.len()];
        for id in ids {
            if let Some(ordinal) = self.ordinal_of(*id) {
                if let Some(g) = self.group_of(ordinal) {
                    touched[g] = true;
                }
            }
        }
        touched
            .iter()
            .zip(&self.group_payload)
            .filter(|(t, _)| **t)
            .map(|(_, (_, payload))| *payload)
            .sum()
    }

    fn group_of(&self, ordinal: u64) -> Option<usize> {
        let mut base = 0u64;
        for (g, (rows, _)) in self.group_payload.iter().enumerate() {
            if ordinal < base + rows {
                return Some(g);
            }
            base += rows;
        }
        None
    }
}

/// Fetches payload rows for plan directives, at row-group granularity.
pub struct PositionalFetcher {
    store: Arc<MemStore>,
    path: String,
    /// Virtual-time I/O spent fetching payloads.
    pub io_ns: u64,
    /// Row groups read so far (deduplicated per call, not across calls).
    pub groups_read: u64,
}

impl PositionalFetcher {
    /// Creates a fetcher over one materialized source file.
    pub fn new(store: Arc<MemStore>, path: impl Into<String>) -> Self {
        PositionalFetcher {
            store,
            path: path.into(),
            io_ns: 0,
            groups_read: 0,
        }
    }

    /// Fetches the named samples (ids must belong to `index`), reading each
    /// touched row group once. Returns samples in `ids` order; ids not in
    /// the index are skipped (mirrors `SourceLoader::pop` idempotence).
    pub fn fetch(&mut self, index: &MetaIndex, ids: &[u64]) -> Result<Vec<Sample>, StorageError> {
        let mut reader = ColumnarReader::open(self.store.as_ref(), &self.path)?;
        let schema = reader.schema().clone();
        let img_col = schema
            .index_of("image")
            .ok_or_else(|| StorageError::Corrupt("missing image column".into()))?;

        // Group ordinals by row group, remembering output positions.
        let mut by_group: HashMap<usize, Vec<(usize, u64)>> = HashMap::new();
        let mut group_base: Vec<u64> = Vec::new();
        let mut base = 0u64;
        for rg in &reader.footer().row_groups {
            group_base.push(base);
            base += rg.rows;
        }
        for (pos, id) in ids.iter().enumerate() {
            if let Some(ordinal) = index.ordinal_of(*id) {
                if let Some(g) = index.group_of(ordinal) {
                    by_group.entry(g).or_default().push((pos, ordinal));
                }
            }
        }

        let mut out: Vec<Option<Sample>> = (0..ids.len()).map(|_| None).collect();
        let mut groups: Vec<usize> = by_group.keys().copied().collect();
        groups.sort_unstable();
        for g in groups {
            let rows = reader.read_group(g)?;
            for (pos, ordinal) in &by_group[&g] {
                let local = (ordinal - group_base[g]) as usize;
                let row = &rows[local];
                // Zero-copy: the payload is a shared slice of the
                // resident row-group buffer.
                let payload = row[img_col].as_shared_bytes().unwrap_or_default();
                let meta = index.entries[*ordinal as usize];
                out[*pos] = Some(Sample {
                    meta: SampleMeta {
                        raw_bytes: payload.len() as u64,
                        ..meta
                    },
                    payload,
                });
            }
            self.groups_read += 1;
        }
        self.io_ns += reader.io_ns();
        Ok(out.into_iter().flatten().collect())
    }
}

/// Fetch-traffic accounting for one Ahead-of-Fetch step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FetchSavings {
    /// Payload bytes a buffer-first pipeline would have fetched to expose
    /// the same planning window.
    pub window_payload_bytes: u64,
    /// Payload bytes actually fetched (row groups containing planned ids).
    pub planned_payload_bytes: u64,
    /// One-off metadata bytes attributable to this window (amortized index
    /// build traffic).
    pub metadata_bytes: u64,
}

impl FetchSavings {
    /// Bytes avoided versus the buffer-first pipeline.
    pub fn avoided_bytes(&self) -> u64 {
        self.window_payload_bytes
            .saturating_sub(self.planned_payload_bytes + self.metadata_bytes)
    }
}

/// Drives a standard [`Planner`] from [`MetaIndex`]es: plan first, fetch
/// after.
pub struct AheadOfFetchSession {
    indexes: Vec<MetaIndex>,
    cursors: Vec<usize>,
    planner: Planner,
}

impl AheadOfFetchSession {
    /// Creates a session over per-source indexes and a configured planner.
    /// Index order must match the planner's catalog source order.
    pub fn new(indexes: Vec<MetaIndex>, planner: Planner) -> Self {
        let cursors = vec![0; indexes.len()];
        AheadOfFetchSession {
            indexes,
            cursors,
            planner,
        }
    }

    /// The wrapped planner.
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The per-source indexes.
    pub fn indexes(&self) -> &[MetaIndex] {
        &self.indexes
    }

    /// Plans the next step over a `window`-sample lookahead per source,
    /// advancing each source's cursor past the samples the plan consumed.
    ///
    /// Returns the plan, the planner's phase breakdown, and the
    /// fetch-savings accounting (metadata bytes are amortized linearly over
    /// the index length).
    pub fn step(
        &mut self,
        window: usize,
    ) -> Result<(LoadingPlan, PhaseBreakdown, FetchSavings), crate::dgraph::DGraphError> {
        let summaries: Vec<BufferSummary> = self
            .indexes
            .iter()
            .zip(&self.cursors)
            .map(|(ix, cur)| ix.summary(*cur, window))
            .collect();
        let info = BufferInfo::new(summaries);
        let (plan, phases) = self.planner.generate(&info)?;

        let mut savings = FetchSavings::default();
        let planned = plan.all_samples();
        for (slot, ix) in self.indexes.iter().enumerate() {
            let cur = self.cursors[slot];
            savings.window_payload_bytes += ix.window_payload_bytes(cur, window);
            let mine: Vec<u64> = planned
                .iter()
                .copied()
                .filter(|id| ix.ordinal_of(*id).is_some())
                .collect();
            savings.planned_payload_bytes += ix.payload_bytes_for(&mine);
            if !ix.is_empty() {
                let frac = window.min(ix.len()) as f64 / ix.len() as f64;
                savings.metadata_bytes += (ix.metadata_bytes as f64 * frac) as u64;
            }
            // Advance past the highest consumed ordinal in the window.
            let max_consumed = mine
                .iter()
                .filter_map(|id| ix.ordinal_of(*id))
                .max()
                .map(|o| o as usize + 1);
            if let Some(next) = max_consumed {
                self.cursors[slot] = next.max(cur);
            }
        }
        Ok((plan, phases, savings))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlannerConfig, Strategy};
    use crate::schedule::MixSchedule;
    use msd_balance::BalanceMethod;
    use msd_data::catalog::coyo700m_like;
    use msd_data::gen::{materialize_source, materialize_source_with_cost};
    use msd_data::SimRng;
    use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
    use msd_storage::ObjectStore;

    fn setup() -> (Arc<MemStore>, Vec<msd_data::SourceSpec>) {
        let store = Arc::new(MemStore::new());
        let mut rng = SimRng::seed(21);
        let cat = coyo700m_like(&mut rng);
        (store, cat.sources()[..3].to_vec())
    }

    fn costfn(m: &SampleMeta) -> f64 {
        (m.total_tokens() as f64).powi(2) / 1e3
    }

    #[test]
    fn index_matches_full_scan_metadata() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(1);
        let manifest = materialize_source(store.as_ref(), "d", &specs[0], 120, &mut rng).unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[0].id, specs[0].modality, 0).unwrap();
        assert_eq!(ix.len(), 120);
        assert!(!ix.has_stored_costs());
        // Cross-check against a full scan.
        let mut reader = ColumnarReader::open(store.as_ref(), &manifest.path).unwrap();
        let schema = reader.schema().clone();
        let rows = reader.scan().unwrap();
        let t = schema.index_of("text_tokens").unwrap();
        for (e, row) in ix.entries().iter().zip(&rows) {
            assert_eq!(i64::from(e.text_tokens), row[t].as_i64().unwrap());
        }
        // The index transfers only the metadata columns — a small fraction
        // of the file (payload columns dominate). Per-request latency is
        // accounted separately in `build_io_ns`.
        let file_bytes = store.get(&manifest.path).unwrap().len() as u64;
        assert!(
            ix.metadata_bytes * 4 < file_bytes,
            "metadata {} vs file {file_bytes}",
            ix.metadata_bytes
        );
        assert!(ix.build_io_ns > 0);
    }

    #[test]
    fn index_ids_are_namespaced_and_reversible() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(2);
        let manifest = materialize_source(store.as_ref(), "d", &specs[1], 50, &mut rng).unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[1].id, specs[1].modality, 3).unwrap();
        for (ordinal, e) in ix.entries().iter().enumerate() {
            assert_eq!(e.sample_id >> 48, u64::from(specs[1].id.0));
            assert_eq!(ix.ordinal_of(e.sample_id), Some(ordinal as u64));
        }
        // Foreign ids are rejected.
        assert_eq!(ix.ordinal_of(u64::from(specs[0].id.0) << 48), None);
        assert_eq!(ix.ordinal_of((u64::from(specs[1].id.0) << 48) | 50), None);
    }

    #[test]
    fn stored_costs_round_trip() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(3);
        let manifest =
            materialize_source_with_cost(store.as_ref(), "d", &specs[0], 60, &mut rng, costfn)
                .unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[0].id, specs[0].modality, 0).unwrap();
        assert!(ix.has_stored_costs());
        let table = ix.cost_table();
        assert_eq!(table.len(), 60);
        for e in ix.entries() {
            let expect = costfn(e).round();
            assert_eq!(table[&e.sample_id], expect);
            assert_eq!(ix.stored_cost(e.sample_id), Some(expect));
        }
    }

    #[test]
    fn positional_fetch_returns_exactly_named_rows() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(4);
        let manifest = materialize_source(store.as_ref(), "d", &specs[0], 90, &mut rng).unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[0].id, specs[0].modality, 0).unwrap();
        let ids: Vec<u64> = [5usize, 17, 42, 88]
            .iter()
            .map(|o| ix.entries()[*o].sample_id)
            .collect();
        let mut fetcher = PositionalFetcher::new(store.clone(), manifest.path);
        let samples = fetcher.fetch(&ix, &ids).unwrap();
        assert_eq!(samples.len(), 4);
        for (s, id) in samples.iter().zip(&ids) {
            assert_eq!(s.meta.sample_id, *id);
            assert!(!s.payload.is_empty());
        }
        assert!(fetcher.io_ns > 0);
        // Unknown ids are skipped, known ids still served.
        let mixed = vec![ids[0], 0xFFFF_0000_0000_0000];
        assert_eq!(fetcher.fetch(&ix, &mixed).unwrap().len(), 1);
    }

    #[test]
    fn fetch_touches_only_needed_groups() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(5);
        let manifest = materialize_source(store.as_ref(), "d", &specs[0], 300, &mut rng).unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[0].id, specs[0].modality, 0).unwrap();
        let reader = ColumnarReader::open(store.as_ref(), &manifest.path).unwrap();
        assert!(reader.group_count() > 2, "need multiple groups");
        // Fetch two ids from the first group only.
        let ids = vec![ix.entries()[0].sample_id, ix.entries()[1].sample_id];
        let mut fetcher = PositionalFetcher::new(store.clone(), manifest.path);
        fetcher.fetch(&ix, &ids).unwrap();
        assert_eq!(fetcher.groups_read, 1);
    }

    #[test]
    fn session_plans_then_saves_fetch_traffic() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(6);
        let mut indexes = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let manifest =
                materialize_source_with_cost(store.as_ref(), "d", spec, 200, &mut rng, costfn)
                    .unwrap();
            indexes.push(
                MetaIndex::build(&store, &manifest.path, spec.id, spec.modality, i as u32).unwrap(),
            );
        }
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 1).unwrap();
        let planner = Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 16,
                schedule: MixSchedule::Static(vec![1.0, 1.0, 0.0]),
            },
            Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: msd_balance::BackboneShape {
                    layers: 4,
                    hidden: 256,
                    mlp_ratio: 4.0,
                    heads: 8,
                    vocab: 32000,
                    experts_per_token: 1,
                },
            },
            ClientPlaceTree::from_device_mesh(&mesh),
            specs.iter().map(|s| s.id).collect(),
            7,
        );
        let mut session = AheadOfFetchSession::new(indexes, planner);
        let (plan, phases, savings) = session.step(64).unwrap();
        assert_eq!(plan.all_samples().len(), 16);
        assert!(phases.compute_ns > 0);
        // 3 sources × 64-sample windows exposed; only 16 samples planned
        // (and none from the zero-weighted source) — traffic is avoided.
        assert!(savings.window_payload_bytes > savings.planned_payload_bytes);
        assert!(savings.avoided_bytes() > 0, "savings = {savings:?}");
        // The zero-weighted source contributes nothing to the plan.
        for id in plan.all_samples() {
            assert_ne!(id >> 48, u64::from(specs[2].id.0));
        }
    }

    #[test]
    fn session_cursors_advance_without_repeats() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(8);
        let mut indexes = Vec::new();
        for (i, spec) in specs.iter().enumerate() {
            let manifest = materialize_source(store.as_ref(), "d", spec, 400, &mut rng).unwrap();
            indexes.push(
                MetaIndex::build(&store, &manifest.path, spec.id, spec.modality, i as u32).unwrap(),
            );
        }
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 1).unwrap();
        let planner = Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 1,
                broadcast_axes: vec![],
                samples_per_step: 24,
                schedule: MixSchedule::uniform(3),
            },
            Strategy::Vanilla,
            ClientPlaceTree::from_device_mesh(&mesh),
            specs.iter().map(|s| s.id).collect(),
            11,
        );
        let mut session = AheadOfFetchSession::new(indexes, planner);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..6 {
            let (plan, _, _) = session.step(48).unwrap();
            for id in plan.all_samples() {
                assert!(seen.insert(id), "sample {id} re-planned");
            }
        }
    }

    #[test]
    fn window_payload_accounting_is_group_granular() {
        let (store, specs) = setup();
        let mut rng = SimRng::seed(12);
        let manifest = materialize_source(store.as_ref(), "d", &specs[0], 250, &mut rng).unwrap();
        let ix =
            MetaIndex::build(&store, &manifest.path, specs[0].id, specs[0].modality, 0).unwrap();
        let total = ix.window_payload_bytes(0, 250);
        assert!(total > 0);
        // Windows tile the file: non-overlapping windows sum to >= total
        // (group granularity can double-count boundary groups).
        let halves = ix.window_payload_bytes(0, 125) + ix.window_payload_bytes(125, 125);
        assert!(halves >= total);
        // Empty and out-of-range windows are zero.
        assert_eq!(ix.window_payload_bytes(250, 10), 0);
        assert_eq!(ix.window_payload_bytes(0, 0), 0);
    }
}
