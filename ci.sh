#!/usr/bin/env bash
# Full verification gate for the workspace. Run from the repo root.
#
# Tier-1 (the minimum the repo promises) is just:
#     cargo build --release && cargo test -q
# This script adds formatting, clippy, bench/example compilation, and
# rustdoc on top.
set -euo pipefail

# Clippy allowlist — style lints the seed code deliberately trips, kept
# as warnings rather than rewriting working code:
#   single_range_in_vec_init mesh transform builds vec![range] on purpose
#   should_implement_trait   SimRng::next is the generator's public name
#   neg_cmp_op_on_partial_ord rng.rs uses `!(total > 0.0)` to reject NaN —
#                            a partial_cmp rewrite would lose that
#   cloned_ref_to_slice_refs mesh transform clones for a by-value slice
#
# Note: msd_core and msd_actor additionally opt IN to
# clippy::redundant_clone via crate-level attributes (the zero-copy data
# plane must not regrow payload copies); -D warnings makes those errors.
ALLOW=(
  -A clippy::single_range_in_vec_init
  -A clippy::should_implement_trait
  -A clippy::neg_cmp_op_on_partial_ord
  -A clippy::cloned_ref_to_slice_refs
)

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings (+allowlist)"
cargo clippy --all-targets -- -D warnings "${ALLOW[@]}"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo build --benches --examples"
cargo build --benches --examples

# Compile-only check for the perf gate: bench.sh must stay runnable (the
# bench targets themselves were just built above).
echo "==> bash -n bench.sh"
bash -n bench.sh

echo "==> cargo test -q"
cargo test -q

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps

echo "CI gate passed."
