//! VLM pretraining with hybrid (encoder + backbone) balancing.
//!
//! ```text
//! cargo run --release --example vlm_pretraining
//! ```
//!
//! Reproduces the paper's flagship scenario at desk scale: a ViT-1B +
//! Llama-12B VLM on a 16-GPU hybrid mesh (PP=2, DP=4, TP=2) training on
//! the 306-source `navit_data`-like corpus. Compares all three strategies
//! of Sec 7.3 and prints the modeled iteration breakdown.

use std::collections::HashMap;

use megascale_data::balance::BalanceMethod;
use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::planner::{PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::data::catalog::navit_like;
use megascale_data::data::SampleMeta;
use megascale_data::mesh::{Axis, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;
use megascale_data::train::models::vlm_preset;
use megascale_data::train::{GpuSpec, RankLoads, TrainSetup};

fn main() {
    let mut rng = SimRng::seed(2026);
    let catalog = navit_like(&mut rng);
    let model = vlm_preset("ViT-1B", "Llama-12B");
    let mesh = DeviceMesh::pp_dp_cp_tp(2, 4, 1, 2).expect("valid mesh");
    let ctx = 8192u64;

    let strategies: Vec<(&str, Strategy)> = vec![
        ("baseline", Strategy::Vanilla),
        (
            "backbone",
            Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: model.backbone,
            },
        ),
        (
            "hybrid",
            Strategy::HybridBalance {
                method: BalanceMethod::Greedy,
                backbone: model.backbone,
                encoder: model.encoder.expect("VLM has an encoder"),
            },
        ),
    ];

    println!("VLM pretraining: {} on {}", model.name, catalog.name);
    println!(
        "{:>10} | {:>12} | {:>12} | {:>12} | {:>12}",
        "strategy", "encoder_s", "backbone_s", "iter_s", "tokens/s"
    );
    let mut baseline_iter = 0.0;
    for (name, strategy) in strategies {
        let mut msd = MegaScaleData::new(MsdConfig {
            catalog: catalog.clone(),
            mesh: mesh.clone(),
            strategy,
            planner: PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 8,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 96,
                schedule: MixSchedule::uniform(catalog.len()),
            },
            max_seq_len: ctx,
            resources: ClusterResources {
                total_cores: 256,
                total_mem_bytes: 4 << 40,
            },
            partition: PartitionOpts::default(),
            shadow_loaders: 0,
            buffer_capacity: 512,
            seed: 7,
        });
        let setup = TrainSetup::new(mesh.clone(), GpuSpec::l20(), model.clone());
        let mut iter_sum = 0.0;
        let mut enc_sum = 0.0;
        let mut bb_sum = 0.0;
        let mut tokens = 0u64;
        let steps = 3;
        for _ in 0..steps {
            let out = msd.step().expect("step");
            let loads = loads_for(&out, &model, &mesh, ctx);
            let b = setup.iteration(&loads);
            iter_sum += b.total_s();
            enc_sum += b.encoder_s;
            bb_sum += b.backbone_s;
            tokens += out
                .metas
                .values()
                .map(SampleMeta::total_tokens)
                .sum::<u64>();
        }
        let iter = iter_sum / steps as f64;
        if name == "baseline" {
            baseline_iter = iter;
        }
        println!(
            "{:>10} | {:>12.2} | {:>12.2} | {:>12.2} | {:>12.0}  ({:.2}x)",
            name,
            enc_sum / steps as f64,
            bb_sum / steps as f64,
            iter,
            tokens as f64 / iter_sum,
            baseline_iter / iter,
        );
    }
}

/// Converts one step's plan into per-rank trainer loads (the same logic
/// the benches use, inlined here to keep the example self-contained).
fn loads_for(
    out: &megascale_data::core::system::StepOutput,
    model: &megascale_data::train::ModelPreset,
    mesh: &DeviceMesh,
    ctx: u64,
) -> RankLoads {
    let metas: &HashMap<u64, SampleMeta> = &out.metas;
    let backbone_mb_flops = out
        .plan
        .buckets
        .iter()
        .map(|b| {
            b.bins
                .iter()
                .map(|bin| {
                    model.backbone.flops_packed(
                        bin.samples
                            .iter()
                            .filter_map(|id| metas.get(id))
                            .map(|m| m.total_tokens().clamp(1, ctx)),
                    )
                })
                .collect()
        })
        .collect();
    let world = mesh.world_size() as usize;
    let encoder = model.encoder.expect("VLM");
    let mut encoder_rank_flops = vec![0.0; world];
    match out.plan.subplans.get("encoder") {
        Some(sub) => {
            for (r, bucket) in sub.buckets.iter().enumerate() {
                for bin in &bucket.bins {
                    for id in &bin.samples {
                        if let Some(m) = metas.get(id) {
                            encoder_rank_flops[r % world] +=
                                encoder.flops_sample(u64::from(m.image_patches));
                        }
                    }
                }
            }
        }
        None => {
            // Unbalanced: images stay on each bucket's fetching clients.
            for bucket in &out.plan.buckets {
                let ranks: Vec<usize> = bucket
                    .clients
                    .iter()
                    .filter(|r| {
                        megascale_data::mesh::delivery_kind(mesh, **r, &out.plan.broadcast_axes)
                            == megascale_data::mesh::DeliveryKind::Payload
                    })
                    .map(|r| *r as usize)
                    .collect();
                let mut i = 0usize;
                for bin in &bucket.bins {
                    for id in &bin.samples {
                        if let Some(m) = metas.get(id) {
                            if m.image_patches > 0 && !ranks.is_empty() {
                                encoder_rank_flops[ranks[i % ranks.len()]] +=
                                    encoder.flops_sample(u64::from(m.image_patches));
                                i += 1;
                            }
                        }
                    }
                }
            }
        }
    }
    RankLoads {
        backbone_mb_flops,
        encoder_rank_flops,
        a2a_bytes_per_rank: 1e6,
    }
}
