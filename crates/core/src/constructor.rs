//! Data Constructor: microbatch assembly and parallelism transformation.
//!
//! The constructor is the data sink for a consumer bucket (e.g. one DP
//! group). It aggregates samples from Source Loaders, performs the
//! microbatch transformations of Fig 1 — packing fragmented subsequences
//! into complete sequences with segment masks, padding, position-id
//! (RoPE) generation — and applies the parallelism transformation so each
//! trainer client receives exactly its slice:
//!
//! - CP ranks get sequence shards (contiguous or zig-zag);
//! - PP stages beyond 0 get metadata only;
//! - TP/CP ranks covered by `broadcast_at` are elided entirely.
//!
//! Because *one* constructor serves the whole bucket, CP/PP rank loaders
//! are never replicated — the parallelism-redundancy fix of Fig 6.

use std::collections::HashMap;

use bytes::Bytes;
use msd_data::Sample;
use msd_mesh::{cp_partition, delivery_kind, Axis, DeliveryKind, DeviceMesh, Rank};
use serde::{Deserialize, Serialize};

use crate::plan::BucketPlan;

/// One packed segment (one original sample) inside a packed sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Originating sample.
    pub sample_id: u64,
    /// Tokens this segment contributes.
    pub tokens: u64,
}

/// A complete (packed) sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedSequence {
    /// Segments in packing order.
    pub segments: Vec<Segment>,
    /// Real tokens (sum of segments).
    pub tokens: u64,
    /// Dummy tokens appended to reach the padded length.
    pub padding: u64,
    /// Position ids (RoPE input): restart at 0 for every segment, then
    /// zeros for padding.
    pub position_ids: Vec<u32>,
}

impl PackedSequence {
    /// Padded length (`tokens + padding`).
    pub fn padded_len(&self) -> u64 {
        self.tokens + self.padding
    }
}

/// One assembled microbatch.
///
/// The microbatch carries its samples' actual payload bytes as shared
/// [`Bytes`] views: assembling a batch bumps refcounts on the loaders'
/// buffers, and cloning a batch (or handing it to N serving clients)
/// never duplicates payload data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Microbatch {
    /// Bin index within the bucket.
    pub bin: u32,
    /// Packed sequences.
    pub sequences: Vec<PackedSequence>,
    /// Transformed payloads, `(sample id, bytes)` in bin order — shared
    /// slices of the samples popped from loader buffers, not copies.
    pub payloads: Vec<(u64, Bytes)>,
    /// Payload bytes carried (sum of transformed sample payloads).
    pub payload_bytes: u64,
}

impl Microbatch {
    /// Total real tokens in the microbatch.
    pub fn tokens(&self) -> u64 {
        self.sequences.iter().map(|s| s.tokens).sum()
    }

    /// Total padded tokens.
    pub fn padded_tokens(&self) -> u64 {
        self.sequences.iter().map(PackedSequence::padded_len).sum()
    }
}

/// What one trainer client receives for a bucket's batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientDelivery {
    /// Target rank.
    pub rank: Rank,
    /// Payload, metadata-only, or elided.
    pub kind: DeliveryKind,
    /// For CP ranks receiving payloads: the token range of each packed
    /// sequence this rank owns, per microbatch (`[mb][seq] -> (start,end)`).
    pub cp_slices: Vec<Vec<(u64, u64)>>,
    /// Estimated bytes shipped to this client.
    pub bytes: u64,
}

/// A fully constructed batch for one bucket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstructedBatch {
    /// Bucket index.
    pub bucket: u32,
    /// Assembled microbatches.
    pub microbatches: Vec<Microbatch>,
    /// Per-client deliveries.
    pub deliveries: Vec<ClientDelivery>,
}

/// The Data Constructor component for one bucket.
#[derive(Debug, Clone)]
pub struct DataConstructor {
    mesh: DeviceMesh,
    /// Maximum packed-sequence length (the trainer context length).
    pub max_seq_len: u64,
    /// Pad packed sequences up to a multiple of this (1 = exact packing).
    pub pad_multiple: u64,
}

impl DataConstructor {
    /// Creates a constructor for the given trainer mesh and context length.
    pub fn new(mesh: DeviceMesh, max_seq_len: u64) -> Self {
        DataConstructor {
            mesh,
            max_seq_len: max_seq_len.max(1),
            pad_multiple: 1,
        }
    }

    /// First-fit packing of samples (in plan order) into sequences of at
    /// most `max_seq_len` tokens. Oversized samples are truncated to fit.
    pub fn pack(&self, samples: &[(u64, u64)]) -> Vec<PackedSequence> {
        let mut sequences: Vec<Vec<Segment>> = Vec::new();
        let mut loads: Vec<u64> = Vec::new();
        for (sample_id, tokens) in samples {
            let tokens = (*tokens).clamp(1, self.max_seq_len);
            // First fit over existing open sequences.
            match loads.iter().position(|l| l + tokens <= self.max_seq_len) {
                Some(i) => {
                    sequences[i].push(Segment {
                        sample_id: *sample_id,
                        tokens,
                    });
                    loads[i] += tokens;
                }
                None => {
                    sequences.push(vec![Segment {
                        sample_id: *sample_id,
                        tokens,
                    }]);
                    loads.push(tokens);
                }
            }
        }
        sequences
            .into_iter()
            .zip(loads)
            .map(|(segments, tokens)| {
                let padded = tokens.div_ceil(self.pad_multiple) * self.pad_multiple;
                let padding = padded - tokens;
                let mut position_ids = Vec::with_capacity(padded as usize);
                for seg in &segments {
                    position_ids.extend(0..seg.tokens as u32);
                }
                position_ids.extend(std::iter::repeat_n(0u32, padding as usize));
                PackedSequence {
                    segments,
                    tokens,
                    padding,
                    position_ids,
                }
            })
            .collect()
    }

    /// Assembles one bucket's batch: microbatch transforms + parallelism
    /// transforms. `samples` maps sample id → transformed sample.
    pub fn construct(
        &self,
        bucket_plan: &BucketPlan,
        samples: &HashMap<u64, Sample>,
        broadcast_axes: &[Axis],
    ) -> ConstructedBatch {
        let microbatches: Vec<Microbatch> = bucket_plan
            .bins
            .iter()
            .map(|bin| {
                let toks: Vec<(u64, u64)> = bin
                    .samples
                    .iter()
                    .filter_map(|id| samples.get(id))
                    .map(|s| (s.meta.sample_id, s.meta.total_tokens().max(1)))
                    .collect();
                // Refcount bumps, not copies: the batch shares the popped
                // samples' allocations.
                let payloads: Vec<(u64, Bytes)> = bin
                    .samples
                    .iter()
                    .filter_map(|id| samples.get(id))
                    .map(|s| (s.meta.sample_id, s.payload.clone()))
                    .collect();
                let payload_bytes: u64 = payloads.iter().map(|(_, p)| p.len() as u64).sum();
                Microbatch {
                    bin: bin.bin,
                    sequences: self.pack(&toks),
                    payloads,
                    payload_bytes,
                }
            })
            .collect();

        let cp = self.mesh.size(Axis::CP);
        let deliveries = bucket_plan
            .clients
            .iter()
            .map(|rank| {
                let kind = delivery_kind(&self.mesh, *rank, broadcast_axes);
                let cp_coord = self.mesh.coord(*rank, Axis::CP).unwrap_or(0);
                let cp_slices: Vec<Vec<(u64, u64)>> = match kind {
                    DeliveryKind::Payload => microbatches
                        .iter()
                        .map(|mb| {
                            mb.sequences
                                .iter()
                                .map(|seq| {
                                    let parts = cp_partition(seq.padded_len(), cp);
                                    let r = &parts[cp_coord as usize];
                                    (r.start, r.end)
                                })
                                .collect()
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                let bytes = match kind {
                    DeliveryKind::Payload => {
                        let total_payload: u64 = microbatches.iter().map(|m| m.payload_bytes).sum();
                        // CP ranks receive ~1/cp of the tokens.
                        total_payload / u64::from(cp.max(1))
                    }
                    DeliveryKind::MetadataOnly => {
                        64 * microbatches
                            .iter()
                            .map(|m| m.sequences.len() as u64)
                            .sum::<u64>()
                    }
                    DeliveryKind::Elided => 0,
                };
                ClientDelivery {
                    rank: *rank,
                    kind,
                    cp_slices,
                    bytes,
                }
            })
            .collect();

        ConstructedBatch {
            bucket: bucket_plan.bucket,
            microbatches,
            deliveries,
        }
    }

    /// Resident memory of a constructed batch held for delivery.
    pub fn batch_memory_bytes(batch: &ConstructedBatch) -> u64 {
        batch
            .microbatches
            .iter()
            .map(|m| m.payload_bytes + m.padded_tokens() * 4)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{BinPlan, BucketPlan};
    use msd_data::{Modality, SampleMeta, SourceId};

    fn mk_sample(id: u64, tokens: u32) -> Sample {
        Sample {
            meta: SampleMeta {
                sample_id: id,
                source: SourceId(0),
                modality: Modality::Text,
                text_tokens: tokens,
                image_patches: 0,
                raw_bytes: u64::from(tokens) * 2,
            },
            // Shared zeroed template: one allocation for all test samples.
            payload: msd_data::zeroed_payload(tokens as usize * 2),
        }
    }

    fn constructor(cp: u32, pp: u32, tp: u32, max_len: u64) -> DataConstructor {
        let mesh = DeviceMesh::pp_dp_cp_tp(pp, 1, cp, tp).unwrap();
        DataConstructor::new(mesh, max_len)
    }

    #[test]
    fn packing_respects_max_len_and_conserves_tokens() {
        let c = constructor(1, 1, 1, 100);
        let samples: Vec<(u64, u64)> = vec![(1, 30), (2, 70), (3, 50), (4, 50), (5, 99)];
        let packed = c.pack(&samples);
        let total: u64 = packed.iter().map(|p| p.tokens).sum();
        assert_eq!(total, 299);
        for p in &packed {
            assert!(p.padded_len() <= 100);
        }
        // First-fit: 30+70 share a sequence.
        assert_eq!(packed[0].segments.len(), 2);
        assert_eq!(packed[0].tokens, 100);
    }

    #[test]
    fn position_ids_restart_per_segment() {
        let c = constructor(1, 1, 1, 16);
        let packed = c.pack(&[(1, 3), (2, 4)]);
        assert_eq!(packed.len(), 1);
        assert_eq!(
            packed[0].position_ids,
            vec![0, 1, 2, 0, 1, 2, 3] // Segment restarts at 0.
        );
    }

    #[test]
    fn padding_to_multiple() {
        let mut c = constructor(1, 1, 1, 64);
        c.pad_multiple = 16;
        let packed = c.pack(&[(1, 20)]);
        assert_eq!(packed[0].tokens, 20);
        assert_eq!(packed[0].padding, 12);
        assert_eq!(packed[0].position_ids.len(), 32);
        // Trailing pad positions are zero.
        assert!(packed[0].position_ids[20..].iter().all(|p| *p == 0));
    }

    #[test]
    fn oversized_sample_is_truncated() {
        let c = constructor(1, 1, 1, 64);
        let packed = c.pack(&[(1, 500)]);
        assert_eq!(packed[0].tokens, 64);
    }

    fn bucket_plan(clients: Vec<Rank>, bins: Vec<Vec<u64>>) -> BucketPlan {
        BucketPlan {
            bucket: 0,
            clients,
            bins: bins
                .into_iter()
                .enumerate()
                .map(|(i, samples)| BinPlan {
                    bin: i as u32,
                    samples,
                    total_cost: 0.0,
                })
                .collect(),
        }
    }

    #[test]
    fn construct_delivers_by_parallelism_role() {
        // Mesh: PP=2, CP=2, TP=2 → 8 ranks in this bucket.
        let c = constructor(2, 2, 2, 128);
        let plan = bucket_plan((0..8).collect(), vec![vec![1, 2], vec![3]]);
        let samples: HashMap<u64, Sample> = [(1, 60), (2, 60), (3, 100)]
            .iter()
            .map(|(id, t)| (*id, mk_sample(*id, *t)))
            .collect();
        let batch = c.construct(&plan, &samples, &[Axis::TP]);
        assert_eq!(batch.microbatches.len(), 2);
        assert_eq!(batch.deliveries.len(), 8);
        let kinds: Vec<DeliveryKind> = batch.deliveries.iter().map(|d| d.kind).collect();
        // TP1 ranks elided (odd ranks in this mesh), PP1 ranks metadata.
        assert!(kinds.contains(&DeliveryKind::Elided));
        assert!(kinds.contains(&DeliveryKind::MetadataOnly));
        assert!(kinds.contains(&DeliveryKind::Payload));
        // Elided clients cost zero bytes.
        for d in &batch.deliveries {
            if d.kind == DeliveryKind::Elided {
                assert_eq!(d.bytes, 0);
            }
        }
    }

    #[test]
    fn cp_slices_tile_each_sequence() {
        let c = constructor(4, 1, 1, 1024);
        let plan = bucket_plan((0..4).collect(), vec![vec![1]]);
        let samples: HashMap<u64, Sample> = [(1u64, mk_sample(1, 1000))].into_iter().collect();
        let batch = c.construct(&plan, &samples, &[]);
        // 4 CP ranks each take a quarter of the packed sequence.
        let seq_len = batch.microbatches[0].sequences[0].padded_len();
        let mut covered = 0u64;
        for d in &batch.deliveries {
            assert_eq!(d.kind, DeliveryKind::Payload);
            let (start, end) = d.cp_slices[0][0];
            covered += end - start;
            assert!(end <= seq_len);
        }
        assert_eq!(covered, seq_len);
    }

    #[test]
    fn missing_samples_are_skipped() {
        let c = constructor(1, 1, 1, 128);
        let plan = bucket_plan(vec![0], vec![vec![1, 999]]);
        let samples: HashMap<u64, Sample> = [(1u64, mk_sample(1, 10))].into_iter().collect();
        let batch = c.construct(&plan, &samples, &[]);
        assert_eq!(batch.microbatches[0].tokens(), 10);
    }

    #[test]
    fn constructed_batch_shares_sample_payloads() {
        // The constructor → client hop is zero-copy: batch payloads are
        // views of the popped samples' allocations, and cloning the batch
        // (per-client fan-out) keeps sharing them.
        let c = constructor(1, 1, 1, 128);
        let plan = bucket_plan(vec![0], vec![vec![1, 2]]);
        let samples: HashMap<u64, Sample> = [(1u64, mk_sample(1, 10)), (2u64, mk_sample(2, 20))]
            .into_iter()
            .collect();
        let batch = c.construct(&plan, &samples, &[]);
        let mb = &batch.microbatches[0];
        assert_eq!(mb.payloads.len(), 2);
        assert_eq!(mb.payload_bytes, 60);
        for (id, payload) in &mb.payloads {
            assert!(
                Bytes::ptr_eq(payload, &samples[id].payload),
                "sample {id} payload was copied into the batch"
            );
        }
        let cloned = batch.clone();
        for (orig, copy) in mb.payloads.iter().zip(&cloned.microbatches[0].payloads) {
            assert!(Bytes::ptr_eq(&orig.1, &copy.1));
        }
    }

    #[test]
    fn batch_memory_scales_with_payload() {
        let c = constructor(1, 1, 1, 128);
        let small = c.construct(
            &bucket_plan(vec![0], vec![vec![1]]),
            &[(1u64, mk_sample(1, 10))].into_iter().collect(),
            &[],
        );
        let large = c.construct(
            &bucket_plan(vec![0], vec![vec![1]]),
            &[(1u64, mk_sample(1, 120))].into_iter().collect(),
            &[],
        );
        assert!(
            DataConstructor::batch_memory_bytes(&large)
                > DataConstructor::batch_memory_bytes(&small)
        );
    }
}
