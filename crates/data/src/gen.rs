//! Materializes synthetic sources as real `MSDCOL01` files in an object
//! store, so the end-to-end pipeline (Source Loader → Data Constructor →
//! trainer client) exercises genuine storage reads.

use msd_sim::SimRng;
use msd_storage::{ColumnarWriter, Field, MemStore, ObjectStore, Schema, StorageError, Value};

use crate::catalog::{Catalog, SourceSpec};
use crate::sample::{Sample, SampleMeta};

/// Name of the optional embedded-cost column written by
/// [`materialize_source_with_cost`] (Ahead-of-Fetch balancing, paper §9).
pub const COST_COLUMN: &str = "msd_cost";

/// The sample schema extended with a trailing `msd_cost` Int64 column
/// carrying the pre-computed per-sample cost.
pub fn sample_schema_with_cost() -> Schema {
    let mut fields = Schema::sample_schema().fields().to_vec();
    fields.push(Field::new(COST_COLUMN, msd_storage::DataType::Int64));
    Schema::new(fields)
}

/// Manifest of one materialized source.
#[derive(Debug, Clone)]
pub struct SourceFiles {
    /// Source spec id this manifest belongs to.
    pub source: crate::sample::SourceId,
    /// Object-store path of the file.
    pub path: String,
    /// Number of rows written.
    pub rows: u64,
}

/// Writes `rows` samples of `spec` into `store` at `prefix/<source-name>`.
///
/// Payload bytes are capped (samples carry deterministic pseudo-payloads);
/// what matters for the experiments is the metadata columns, which downstream
/// planners read from footer stats and row scans.
pub fn materialize_source(
    store: &dyn ObjectStore,
    prefix: &str,
    spec: &SourceSpec,
    rows: u64,
    rng: &mut SimRng,
) -> Result<SourceFiles, StorageError> {
    let schema = Schema::sample_schema();
    // Small row groups on purpose: more footer metadata per file, matching
    // the many-row-group layout of production Parquet.
    let mut writer = ColumnarWriter::with_group_size(schema, 64 << 10);
    for i in 0..rows {
        let meta = spec.sample_meta(rng, i);
        let sample = Sample::synthesize(SampleMeta {
            raw_bytes: meta.raw_bytes.min(2048),
            ..meta
        });
        writer.push(vec![
            Value::Int64(meta.sample_id as i64),
            Value::Utf8(format!("sample-{}-{}", spec.name, i)),
            Value::Bytes(sample.payload),
            Value::Int64(i64::from(meta.text_tokens)),
            Value::Int64(i64::from(meta.image_patches)),
        ])?;
    }
    let path = format!("{prefix}/{}", spec.name);
    store.put(&path, writer.finish()?);
    Ok(SourceFiles {
        source: spec.id,
        path,
        rows,
    })
}

/// Like [`materialize_source`], but additionally evaluates `costfn` on each
/// sample's metadata at *write* time and embeds the result in a trailing
/// [`COST_COLUMN`] Int64 column (rounded to the nearest integer).
///
/// This is the storage half of Ahead-of-Fetch load balancing (paper §9):
/// cost computation moves from the training-time Planner to the one-off
/// dataset build, and the Planner later reads it back with a cheap
/// column-projection scan — before any loader has fetched payload bytes.
pub fn materialize_source_with_cost(
    store: &dyn ObjectStore,
    prefix: &str,
    spec: &SourceSpec,
    rows: u64,
    rng: &mut SimRng,
    costfn: impl Fn(&SampleMeta) -> f64,
) -> Result<SourceFiles, StorageError> {
    let schema = sample_schema_with_cost();
    let mut writer = ColumnarWriter::with_group_size(schema, 64 << 10);
    for i in 0..rows {
        let meta = spec.sample_meta(rng, i);
        let sample = Sample::synthesize(SampleMeta {
            raw_bytes: meta.raw_bytes.min(2048),
            ..meta
        });
        let cost = costfn(&meta).max(0.0).round() as i64;
        writer.push(vec![
            Value::Int64(meta.sample_id as i64),
            Value::Utf8(format!("sample-{}-{}", spec.name, i)),
            Value::Bytes(sample.payload),
            Value::Int64(i64::from(meta.text_tokens)),
            Value::Int64(i64::from(meta.image_patches)),
            Value::Int64(cost),
        ])?;
    }
    let path = format!("{prefix}/{}", spec.name);
    store.put(&path, writer.finish()?);
    Ok(SourceFiles {
        source: spec.id,
        path,
        rows,
    })
}

/// Materializes every source of a catalog; returns manifests in catalog
/// order.
pub fn materialize_catalog(
    store: &MemStore,
    prefix: &str,
    catalog: &Catalog,
    rows_per_source: u64,
    rng: &mut SimRng,
) -> Result<Vec<SourceFiles>, StorageError> {
    catalog
        .sources()
        .iter()
        .map(|spec| materialize_source(store, prefix, spec, rows_per_source, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::coyo700m_like;
    use msd_storage::ColumnarReader;

    #[test]
    fn materialized_source_is_readable() {
        let store = MemStore::new();
        let mut rng = SimRng::seed(1);
        let cat = coyo700m_like(&mut rng);
        let manifest =
            materialize_source(&store, "data", &cat.sources()[0], 100, &mut rng).unwrap();
        assert_eq!(manifest.rows, 100);
        let mut reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        assert_eq!(reader.total_rows(), 100);
        let rows = reader.scan().unwrap();
        let tokens_col = reader.schema().index_of("text_tokens").unwrap();
        assert!(rows.iter().all(|r| r[tokens_col].as_i64().unwrap() >= 1));
    }

    #[test]
    fn catalog_materialization_covers_all_sources() {
        let store = MemStore::new();
        let mut rng = SimRng::seed(2);
        let cat = coyo700m_like(&mut rng);
        let manifests = materialize_catalog(&store, "data", &cat, 10, &mut rng).unwrap();
        assert_eq!(manifests.len(), cat.len());
        assert_eq!(store.object_count(), cat.len());
        // Paths are distinct.
        let mut paths: Vec<&str> = manifests.iter().map(|m| m.path.as_str()).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), cat.len());
    }

    #[test]
    fn cost_column_embeds_costfn_results() {
        let store = MemStore::new();
        let mut rng = SimRng::seed(9);
        let cat = coyo700m_like(&mut rng);
        let costfn = |m: &SampleMeta| (m.total_tokens() as f64).powi(2);
        let manifest =
            materialize_source_with_cost(&store, "data", &cat.sources()[0], 80, &mut rng, costfn)
                .unwrap();
        let mut reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        let schema = reader.schema().clone();
        let cost_col = schema.index_of(COST_COLUMN).expect("cost column present");
        let text_col = schema.index_of("text_tokens").unwrap();
        let img_col = schema.index_of("img_patches").unwrap();
        let rows = reader.scan().unwrap();
        assert_eq!(rows.len(), 80);
        for row in &rows {
            let tokens =
                row[text_col].as_i64().unwrap() as u64 + row[img_col].as_i64().unwrap() as u64;
            let expect = (tokens as f64).powi(2).round() as i64;
            assert_eq!(row[cost_col].as_i64(), Some(expect));
        }
    }

    #[test]
    fn cost_column_stats_cover_value_range() {
        // Row-group stats on the embedded cost column let a planner bound
        // per-group costs from the footer alone.
        let store = MemStore::new();
        let mut rng = SimRng::seed(10);
        let cat = coyo700m_like(&mut rng);
        let manifest =
            materialize_source_with_cost(&store, "data", &cat.sources()[0], 200, &mut rng, |m| {
                m.total_tokens() as f64
            })
            .unwrap();
        let mut reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        let cost_col = reader.schema().index_of(COST_COLUMN).unwrap();
        let footer = reader.footer().clone();
        for (g, rg) in footer.row_groups.iter().enumerate() {
            let stats = rg.columns[cost_col].stats.expect("int stats");
            let vals = reader.read_columns(g, &[cost_col]).unwrap();
            for v in &vals[0] {
                let v = v.as_i64().unwrap();
                assert!(v >= stats.min && v <= stats.max);
            }
        }
    }

    #[test]
    fn footer_stats_expose_sequence_lengths() {
        // The Planner reads length stats from footers without scanning data:
        // verify the int columns carry stats.
        let store = MemStore::new();
        let mut rng = SimRng::seed(3);
        let cat = coyo700m_like(&mut rng);
        let manifest =
            materialize_source(&store, "data", &cat.sources()[1], 300, &mut rng).unwrap();
        let reader = ColumnarReader::open(&store, &manifest.path).unwrap();
        let col = reader.schema().index_of("img_patches").unwrap();
        let any_stats = reader
            .footer()
            .row_groups
            .iter()
            .all(|rg| rg.columns[col].stats.is_some());
        assert!(any_stats);
    }
}
