//! Elastic resharding: adapting to a trainer-topology change mid-run.
//!
//! ```text
//! cargo run --example elastic_resharding
//! ```
//!
//! The training framework shrinks from DP=8 to DP=4 (e.g. after losing a
//! node). MegaScale-Data rebuilds its `ClientPlaceTree`, recomputes the
//! loading plan for future data, and fast-reshards the batches already
//! resident in Data Constructors (Sec 6.1).

use megascale_data::core::autoscale::{ClusterResources, PartitionOpts};
use megascale_data::core::planner::PlannerConfig;
use megascale_data::core::planner::Strategy;
use megascale_data::core::reshard::reshard;
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::{MegaScaleData, MsdConfig};
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed(5);
    let catalog = coyo700m_like(&mut rng);
    let mesh8 = DeviceMesh::pp_dp_cp_tp(1, 8, 1, 2).expect("mesh");
    let mesh4 = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).expect("mesh");

    let mut msd = MegaScaleData::new(MsdConfig {
        catalog: catalog.clone(),
        mesh: mesh8.clone(),
        strategy: Strategy::Vanilla,
        planner: PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 64,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        max_seq_len: 4096,
        resources: ClusterResources {
            total_cores: 64,
            total_mem_bytes: 1 << 40,
        },
        partition: PartitionOpts::default(),
        shadow_loaders: 0,
        buffer_capacity: 256,
        seed: 1,
    });

    // Run on the 16-GPU topology.
    let out = msd.step().expect("step");
    println!(
        "before reshard: {} buckets x {} clients each",
        out.plan.buckets.len(),
        out.plan.buckets[0].clients.len()
    );

    // Capture resident (bucket, sample) placement from the last step.
    let resident: Vec<(u64, u32)> = out
        .plan
        .buckets
        .iter()
        .flat_map(|b| {
            b.bins
                .iter()
                .flat_map(move |bin| bin.samples.iter().map(move |s| (*s, b.bucket)))
        })
        .collect();

    // Notification arrives: topology shrinks to DP=4.
    let old_tree = ClientPlaceTree::from_device_mesh(&mesh8);
    let new_tree = ClientPlaceTree::from_device_mesh(&mesh4);
    let plan = reshard(&resident, &old_tree, &new_tree, DistributeAxis::DP);
    println!(
        "reshard to {} buckets: {} samples stay, {} move ({:.0}% of resident data)",
        plan.new_buckets,
        plan.stationary,
        plan.moves.len(),
        plan.move_fraction() * 100.0
    );

    // The planner switches to the new topology; future plans follow it.
    msd.planner().set_tree(new_tree);
    let out = msd.step().expect("post-reshard step");
    println!(
        "after reshard: {} buckets x {} clients each, {} samples delivered",
        out.plan.buckets.len(),
        out.plan.buckets[0].clients.len(),
        out.plan.all_samples().len()
    );
}
