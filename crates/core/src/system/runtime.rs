//! Threaded actor deployment of the pipeline.
//!
//! The synchronous components in [`crate::system`] are deterministic and
//! drive the simulations; this module deploys the *same* components as
//! supervised [`msd_actor`] actors — the shape the paper runs on Ray
//! (Fig 7). Every stage is actor-hosted:
//!
//! - one [`LoaderActor`] per source partition,
//! - one [`PlannerActor`] hosting the shared
//!   [`PipelineCore`] (plan synthesis
//!   plus Replay Mode adoption),
//! - one [`ConstructorActor`] per consumer bucket, receiving broadcast
//!   plans and serving batches to pulling trainer clients,
//! - one [`ControllerActor`] (see [`crate::system::controller`]) watching
//!   mixing-weight telemetry and loader health, scaling and rebalancing
//!   the loader fleet live through the shared registry.
//!
//! Failures surface as `ask` timeouts/dead errors; supervised restarts
//! rebuild each actor from its latest GCS checkpoint. Restarted loaders
//! additionally replay the GCS plan log (differential checkpointing) so a
//! sample consumed before a crash is never delivered twice.
//!
//! [`ThreadedPipeline::step`] drives one synchronous step for a single
//! caller; [`ThreadedPipeline::serve`] is the concurrent front door — a
//! driver thread pumps plans/pops/broadcasts with pipelined refill-ahead
//! while N trainer clients pull batches from their constructor actors,
//! throttled by a bounded-queue backpressure knob.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use msd_actor::actor::ReplyTo;
use msd_actor::{Actor, ActorRef, ActorSystem, Ctx, Gcs, PendingReply, RestartPolicy};
use msd_data::{Sample, SourceId, SourceSpec};
use msd_mesh::{Axis, ClientPlaceTree, DistributeAxis};
use parking_lot::RwLock;

use crate::buffer::{BufferInfo, BufferSummary};
use crate::constructor::{ConstructedBatch, DataConstructor};
use crate::dgraph::DGraphError;
use crate::loader::{LoaderCheckpoint, LoaderConfig, LoaderHealth, SourceLoader};
use crate::plan::{BucketPlan, LoadingPlan};
use crate::planner::{PhaseBreakdown, Planner};
use crate::system::controller::{
    ControllerActor, ControllerConfig, ControllerMsg, ControllerStatus,
};
use crate::system::core::{PipelineCore, PlanOutcome};
use crate::system::frontier::{FrontierCheckpoint, FrontierHub, Holder};
use crate::system::net::{SharedBatch, Transport};
use crate::system::server::{
    DataServer, DataServerHandle, RemotePlacement, ServerConfig, ServerMsg,
};

/// GCS key holding the planner actor's restart checkpoint.
const PLANNER_STATE_KEY: &str = "planner";
/// GCS key holding the serialized Replay Mode plan store.
const REPLAY_STORE_KEY: &str = "planner/replay";
/// GCS key holding the planner's current trainer topology (elastic
/// resharding must survive planner restarts).
const PLANNER_TREE_KEY: &str = "planner/tree";
/// GCS key holding the serve driver's frontier checkpoint: the proof of
/// which plan-log prefix has retired. Plan-log entries are pruned only
/// below the retirement floor this record carries — never by a fixed
/// window — so replay after any restart is complete by construction.
pub(crate) const FRONTIER_STATE_KEY: &str = "frontier";

fn plan_log_key(step: u64) -> String {
    format!("plan/{step}")
}

/// One bucket's broadcast payload: (constructor index, bucket plan,
/// the samples the bucket consumes). Samples are `Arc`-shared between the
/// in-flight message and the driver's re-broadcast window, so a broadcast
/// is a refcount bump, not a payload copy.
type BroadcastItem = (usize, BucketPlan, Arc<HashMap<u64, Sample>>);
/// Serve-step window retained for post-restart re-broadcast.
type BroadcastWindow = VecDeque<(u64, Vec<BroadcastItem>)>;

/// Messages understood by a loader actor.
pub enum LoaderMsg {
    /// Refill the buffer toward `target` samples.
    Refill {
        /// Target buffered sample count.
        target: usize,
    },
    /// Report the buffer summary.
    Summary(ReplyTo<BufferSummary>),
    /// Pop the given sample ids and reply with the samples.
    Pop {
        /// Sample ids to pop.
        ids: Vec<u64>,
        /// Reply channel.
        reply: ReplyTo<Vec<Sample>>,
    },
    /// Snapshot the loader state into the GCS at `version`.
    Checkpoint {
        /// Snapshot version.
        version: u64,
    },
    /// Report a control-plane health snapshot (buffer occupancy, fetch
    /// stall time, lifetime production).
    Health(ReplyTo<LoaderHealth>),
    /// Retirement hand-off, step 1: flush the whole read buffer and reply
    /// with the drained samples plus a final checkpoint. Processed
    /// sequentially with pops, so a sample is either popped (delivered)
    /// or drained (handed off) — never both.
    Drain(ReplyTo<(Vec<Sample>, LoaderCheckpoint)>),
    /// Retirement hand-off, step 2: a surviving loader of the same source
    /// adopts a retiring peer's unconsumed samples, keeping them
    /// plannable under its own id.
    Adopt {
        /// The handed-off samples.
        samples: Vec<Sample>,
    },
}

/// A Source Loader hosted in an actor.
pub struct LoaderActor {
    inner: SourceLoader,
    gcs: Gcs,
}

impl LoaderActor {
    /// Creates the actor, restoring from the GCS checkpoint if one exists
    /// (this is how supervised restarts recover durable state). A corrupt
    /// checkpoint is surfaced on the GCS fault log and the loader falls
    /// back to a fresh synthetic stream instead of killing the restart
    /// path. After a restore, post-checkpoint pop directives from the GCS
    /// plan log are replayed so already-delivered samples never resurface.
    pub fn new(spec: SourceSpec, config: LoaderConfig, seed: u64, gcs: Gcs) -> Self {
        let key = format!("loader/{}", config.loader_id);
        let loader_id = config.loader_id;
        let inner = match gcs.get_state(&key) {
            Some(cp) => match crate::codec::decode_loader_checkpoint(&cp.data) {
                Ok(parsed) => {
                    let mut loader = SourceLoader::restore(spec, config, &parsed);
                    surface_replay_gap(
                        replay_plan_log(&mut loader, &gcs, parsed.version, loader_id),
                        &gcs,
                    );
                    loader
                }
                Err(e) => {
                    gcs.log_fault(
                        &key,
                        format!(
                            "corrupt GCS checkpoint (v{}): {e}; \
                                 falling back to a fresh synthetic loader",
                            cp.version
                        ),
                    );
                    // The fresh loader restarts the same deterministic
                    // stream from ordinal 0, so the plan log must be
                    // replayed from the beginning to drop every sample
                    // already delivered before the crash.
                    let mut loader = SourceLoader::synthetic(spec, config, seed);
                    surface_replay_gap(replay_plan_log(&mut loader, &gcs, 0, loader_id), &gcs);
                    loader
                }
            },
            None => {
                // No checkpoint can also mean "crashed before the first
                // checkpoint landed": the fresh loader restarts the same
                // deterministic stream from ordinal 0, so any logged
                // deliveries must still be replayed away.
                let mut loader = SourceLoader::synthetic(spec, config, seed);
                surface_replay_gap(replay_plan_log(&mut loader, &gcs, 0, loader_id), &gcs);
                loader
            }
        };
        LoaderActor { inner, gcs }
    }
}

/// The retirement floor proven by the persisted frontier checkpoint:
/// plan-log entries below this step may legitimately be absent (pruned
/// after every live capability holder moved past them); entries at or
/// above it must still exist. With no frontier record nothing has ever
/// been pruned, so the floor is 0 and every step must be present.
fn persisted_retirement_floor(gcs: &Gcs) -> u64 {
    gcs.get_state(FRONTIER_STATE_KEY)
        .and_then(|cp| crate::codec::decode_frontier_checkpoint(&cp.data).ok())
        .map(|cp| cp.pruned_below)
        .unwrap_or(0)
}

/// Replays pop directives of plans issued after `from_version` out of the
/// GCS plan log into a restored loader (differential checkpointing: the
/// checkpoint is small, the delta is replayed).
///
/// A missing entry below the persisted retirement floor is provably
/// consumed (the frontier protocol prunes nothing newer); a missing entry
/// at or above it is a replay gap — samples delivered before the crash
/// could silently resurface — so it is surfaced as
/// [`RuntimeError::PlanLogGap`] instead of being skipped.
fn replay_plan_log(
    loader: &mut SourceLoader,
    gcs: &Gcs,
    from_version: u64,
    loader_id: u32,
) -> Result<(), RuntimeError> {
    let Some(cp) = gcs.get_state(PLANNER_STATE_KEY) else {
        return Ok(());
    };
    let Ok(core_cp) = crate::codec::decode_planner_checkpoint(&cp.data) else {
        return Ok(()); // Planner checkpoint unreadable — its own restart logs it.
    };
    let latest = core_cp.planner.step; // Plans 0..latest have been issued.
    let floor = persisted_retirement_floor(gcs);
    for step in from_version..latest {
        let Some(entry) = gcs.get_state(&plan_log_key(step)) else {
            if step >= floor {
                gcs.log_fault(
                    format!("loader/{loader_id}"),
                    format!(
                        "plan log replay gap: step {step} is missing but the frontier \
                         checkpoint only retires steps below {floor} \
                         (replaying {from_version}..{latest}); \
                         samples delivered at that step may resurface"
                    ),
                );
                return Err(RuntimeError::PlanLogGap {
                    loader_id,
                    missing_step: step,
                    frontier: floor,
                });
            }
            continue; // Below the retirement floor: provably consumed.
        };
        match crate::codec::decode_plan_log(&entry.data) {
            Ok(directives) => {
                // Replay EVERY directive id and let the loader's own
                // source/shard prefix filter pick the ones it produced.
                // Keying by this loader's directive entry alone is wrong
                // under elastic hand-off: a sample this loader produced
                // can be adopted by a peer and delivered under the
                // *peer's* loader id, and skipping it here would let a
                // post-checkpoint restart re-produce and re-deliver it.
                let all: Vec<u64> = directives.values().flatten().copied().collect();
                loader.replay_directives(&all);
            }
            Err(e) => {
                gcs.log_fault(
                    format!("loader/{loader_id}"),
                    format!("corrupt plan log entry for step {step}: {e}; skipped"),
                );
            }
        }
    }
    Ok(())
}

/// Surfaces a replay gap from an actor factory (which cannot itself
/// fail): the [`RuntimeError`] lands on the GCS fault log under the
/// runtime component, where supervisors and operators read it. The
/// loader still starts — it serves fresh data — but the gap is now loud
/// instead of silent sample loss.
fn surface_replay_gap(result: Result<(), RuntimeError>, gcs: &Gcs) {
    if let Err(e) = result {
        gcs.log_fault("runtime", format!("{e}"));
    }
}

impl Actor for LoaderActor {
    type Msg = LoaderMsg;

    fn handle(&mut self, msg: LoaderMsg, _ctx: &mut Ctx) {
        match msg {
            LoaderMsg::Refill { target } => {
                let _ = self.inner.refill(target);
            }
            LoaderMsg::Summary(reply) => {
                reply.send(self.inner.summary());
            }
            LoaderMsg::Pop { ids, reply } => {
                reply.send(self.inner.pop(&ids));
            }
            LoaderMsg::Checkpoint { version } => {
                let cp = self.inner.checkpoint(version);
                let key = format!("loader/{}", cp.loader_id);
                self.gcs
                    .put_state(&key, version, crate::codec::encode_loader_checkpoint(&cp));
            }
            LoaderMsg::Health(reply) => {
                reply.send(self.inner.health());
            }
            LoaderMsg::Drain(reply) => {
                let version = self
                    .gcs
                    .state_version(&format!("loader/{}", self.inner.id()))
                    + 1;
                let cp = self.inner.checkpoint(version);
                reply.send((self.inner.drain(), cp));
            }
            LoaderMsg::Adopt { samples } => {
                self.inner.adopt(samples);
            }
        }
    }
}

/// Messages understood by the planner actor.
pub enum PlannerMsg {
    /// Synthesize the next plan from gathered buffer metadata.
    Plan {
        /// Gathered loader summaries.
        info: BufferInfo,
        /// Reply channel.
        reply: ReplyTo<Result<PlanOutcome, DGraphError>>,
    },
    /// Install a Replay Mode plan store (persisted to the GCS so it
    /// survives supervised restarts).
    SetReplay(crate::replay::PlanStore),
    /// Replace the trainer topology (elastic resharding).
    SetTree(ClientPlaceTree),
    /// Report mixing-weight telemetry (the elastic controller's input).
    Telemetry(ReplyTo<PlannerTelemetry>),
}

/// Mixing-weight telemetry reported by the planner actor: the schedule's
/// weights at the *current* step, in the planner's catalog source order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerTelemetry {
    /// The planner's current step counter.
    pub step: u64,
    /// Schedule source order; `weights[i]` belongs to `sources[i]`.
    pub sources: Vec<SourceId>,
    /// Normalized mixing weights at `step`.
    pub weights: Vec<f64>,
}

/// The Planner (and its Replay Mode store) hosted in a supervised actor.
///
/// State management follows the paper's Sec 6.1: the restart-critical
/// planner state (step counter, sampling RNG, replay progress) is
/// checkpointed to the GCS *before* a plan is released, so a restarted
/// planner continues the exact pre-crash plan sequence and can never
/// re-issue a step that was already delivered.
pub struct PlannerActor {
    core: PipelineCore,
    gcs: Gcs,
}

impl PlannerActor {
    /// Creates the actor from a planner template, overlaying any GCS
    /// checkpoint and persisted replay store.
    pub fn new(template: Planner, gcs: Gcs) -> Self {
        let mut core = PipelineCore::new(template);
        if let Some(cp) = gcs.get_state(PLANNER_STATE_KEY) {
            match crate::codec::decode_planner_checkpoint(&cp.data) {
                Ok(parsed) => core.restore(&parsed),
                Err(e) => gcs.log_fault(
                    "planner",
                    format!(
                        "corrupt planner checkpoint (v{}): {e}; starting fresh",
                        cp.version
                    ),
                ),
            }
        }
        if let Some(cp) = gcs.get_state(REPLAY_STORE_KEY) {
            let parsed = std::str::from_utf8(&cp.data)
                .ok()
                .and_then(|s| crate::replay::PlanStore::from_json(s).ok());
            match parsed {
                Some(store) => core.set_replay_store(store),
                None => gcs.log_fault("planner", "corrupt replay store in GCS; ignored"),
            }
        }
        if let Some(cp) = gcs.get_state(PLANNER_TREE_KEY) {
            match serde_json::from_slice::<ClientPlaceTree>(&cp.data) {
                Ok(tree) => core.planner().set_tree(tree),
                Err(e) => gcs.log_fault(
                    "planner",
                    format!("corrupt persisted topology: {e}; keeping template tree"),
                ),
            }
        }
        PlannerActor { core, gcs }
    }
}

impl Actor for PlannerActor {
    type Msg = PlannerMsg;

    fn handle(&mut self, msg: PlannerMsg, _ctx: &mut Ctx) {
        match msg {
            PlannerMsg::Plan { info, reply } => {
                let result = self.core.synthesize(&info);
                if let Ok(outcome) = &result {
                    let step = outcome.plan.step;
                    // Log this plan's pop directives for loader directive
                    // replay, then checkpoint the planner itself — both
                    // *before* the plan is released, so anything a client
                    // may have observed is covered by durable state. Both
                    // blobs use the compact binary codec (this runs once
                    // per plan step; JSON remains readable on restore).
                    let directives = crate::codec::encode_plan_log(&outcome.plan.directives);
                    self.gcs
                        .put_state(&plan_log_key(step), step + 1, directives);
                    // No pruning here: plan-log retirement belongs to the
                    // serve driver, which prunes only below the proven
                    // step frontier (see `retire_plan_log`). A fixed
                    // window at the producer cannot know how far behind
                    // the slowest consumer or loader checkpoint is.
                    let cp = crate::codec::encode_planner_checkpoint(&self.core.checkpoint());
                    self.gcs
                        .put_state(PLANNER_STATE_KEY, self.core.planner_ref().step(), cp);
                }
                reply.send(result);
            }
            PlannerMsg::SetReplay(store) => {
                let json = store.to_json();
                let version = self.gcs.state_version(REPLAY_STORE_KEY) + 1;
                self.gcs
                    .put_state(REPLAY_STORE_KEY, version, json.into_bytes());
                self.core.set_replay_store(store);
            }
            PlannerMsg::SetTree(tree) => {
                // Persist first: a restarted planner must keep planning
                // for the resharded topology, not the spawn-time template.
                let json = serde_json::to_vec(&tree).expect("topology serializes");
                let version = self.gcs.state_version(PLANNER_TREE_KEY) + 1;
                self.gcs.put_state(PLANNER_TREE_KEY, version, json);
                self.core.planner().set_tree(tree);
            }
            PlannerMsg::Telemetry(reply) => {
                let planner = self.core.planner_ref();
                let step = planner.step();
                reply.send(PlannerTelemetry {
                    step,
                    sources: planner.sources().to_vec(),
                    weights: planner.config.schedule.weights(step),
                });
            }
        }
    }
}

/// Watermark report from a constructor actor (the ack/backpressure
/// signal the serve driver polls).
#[derive(Debug, Clone, Default)]
pub struct ConstructorWatermark {
    /// Serve steps currently queued for pulling clients (bounded by the
    /// backpressure depth). The driver diffs this against its retained
    /// window to re-broadcast exactly the steps a restarted incarnation
    /// lost — a max-step watermark would miss mid-window losses.
    pub ready: Vec<u64>,
    /// Lowest serve step a rostered client still needs (`None` until a
    /// roster is installed).
    pub needed: Option<u64>,
    /// Per-client cursors (the driver caches these so a re-sent roster
    /// after a restart restores real positions instead of resetting
    /// everyone to step 0).
    pub cursors: Vec<(u32, u64)>,
}

/// Delta watermark for the serve driver's per-step poll
/// ([`ConstructorMsg::Pulse`]). Where [`ConstructorWatermark`] carries
/// *every* client cursor — O(clients) to build and merge, paid by
/// `stats()` and the controller at their leisurely cadence — a pulse
/// carries only the cursors that moved since the previous pulse, so
/// the driver's high-frequency ack/backpressure loop costs O(active)
/// per poll no matter how many clients are rostered.
#[derive(Debug, Clone, Default)]
pub struct ConstructorPulse {
    /// Serve steps currently queued for pulling clients (bounded by
    /// the backpressure depth; same as the full watermark's).
    pub ready: Vec<u64>,
    /// Lowest serve step a rostered client still needs — maintained as
    /// a count-multiset over cursor values, so reading it is O(1).
    pub needed: Option<u64>,
    /// Cursors that moved since the last pulse (drained on read).
    pub cursors: Vec<(u32, u64)>,
}

/// Messages understood by a constructor actor.
pub enum ConstructorMsg {
    /// A broadcast plan slice: construct this bucket's batch.
    Construct {
        /// Serve-step ordinal (contiguous; not necessarily `plan.step`).
        step: u64,
        /// This bucket's slice of the loading plan.
        bucket_plan: BucketPlan,
        /// Popped samples the bucket consumes (shared, not copied).
        samples: Arc<HashMap<u64, Sample>>,
        /// Trainer-side broadcast axes (fetch elision).
        broadcast_axes: Vec<Axis>,
        /// When present, reply with the batch directly instead of queueing
        /// it for pulling clients (the synchronous [`ThreadedPipeline::step`]
        /// path).
        reply: Option<ReplyTo<ConstructedBatch>>,
    },
    /// A trainer client requests the batch for exactly `step`. The reply
    /// is parked until that step is constructed. The client carries its
    /// own cursor, so a restarted constructor cannot double-serve it.
    /// The reply shares the queued batch ([`SharedBatch`]): N pulling
    /// clients and every re-broadcast replay read the *same* constructed
    /// buffers — and, on serializing transports, the same memoized wire
    /// encoding — a pull is a refcount bump, never a payload copy.
    Pull {
        /// Pulling client id.
        client: u32,
        /// The serve step the client needs next.
        step: u64,
        /// Reply channel.
        reply: ReplyTo<(u64, SharedBatch)>,
    },
    /// Install the clients this constructor serves, each with the lowest
    /// serve step it could still need (0 at session start; the driver's
    /// cached cursor when re-rostering a restarted constructor).
    Roster(Vec<(u32, u64)>),
    /// A client finished its stream (advances the prune floor).
    Complete {
        /// The finished client.
        client: u32,
        /// One past the last step it consumed.
        next_step: u64,
    },
    /// Report ack/backpressure watermarks.
    Watermark(ReplyTo<ConstructorWatermark>),
    /// Report the delta watermark (moved cursors only) — the serve
    /// driver's per-step poll; see [`ConstructorPulse`].
    Pulse(ReplyTo<ConstructorPulse>),
    /// The serve driver's folded global frontier: every step below `at`
    /// is proven consumed by all live capability holders, so queued
    /// batches below it retire eagerly — even when this constructor's
    /// own cursor floor lags (e.g. a `Complete` still in flight).
    Frontier {
        /// The global step frontier (exclusive retirement bound).
        at: u64,
    },
    /// Start a fresh serve session: drop queued batches, cursors, parked
    /// pulls, and the roster left over from a previous session (serve
    /// step numbering restarts at 0 each session).
    Reset {
        /// When true (serializing transports), each constructed batch is
        /// wire-encoded eagerly on the construct thread — overlapping the
        /// serialization with loader fetches — instead of lazily on the
        /// serve loop's first send of that batch.
        pre_encode: bool,
    },
}

/// The shared-batch reply a [`ConstructorMsg::Pull`] resolves to.
type PullReply = ReplyTo<(u64, SharedBatch)>;

/// A Data Constructor hosted in a supervised actor, serving one bucket's
/// batches to its rostered trainer clients.
///
/// Recovery story: the actor keeps no durable state. Clients carry their
/// own cursors in `Pull`, and the serve driver re-broadcasts any window
/// step a restarted constructor is missing (detected via `Watermark`), so
/// a crash mid-serve costs latency, never correctness.
pub struct ConstructorActor {
    inner: DataConstructor,
    /// Constructed batches queued for pulling clients, each wrapped with
    /// its memoized wire form. Every client of a step is handed the same
    /// wrapper — fan-out is refcounting, and on serializing transports
    /// bucket-mates share one encoding.
    ready: BTreeMap<u64, SharedBatch>,
    cursors: HashMap<u32, u64>,
    /// Count-multiset over `cursors` values: cursor step → how many
    /// clients sit at it. Keeps the prune floor (`min` over thousands
    /// of cursors) an O(1) read instead of an O(clients) scan on every
    /// pull, completion, and watermark.
    floor_counts: BTreeMap<u64, u32>,
    /// Clients whose cursor moved since the last [`ConstructorMsg::Pulse`]
    /// (the delta the serve driver polls).
    dirty: std::collections::HashSet<u32>,
    waiting: HashMap<u32, (u64, PullReply)>,
    roster_known: bool,
    /// Eagerly wire-encode each batch at construct time (set per session
    /// by [`ConstructorMsg::Reset`] when the transport serializes).
    pre_encode: bool,
    /// The serve driver's folded global frontier (monotone within a
    /// session). Ready-queue retirement follows the frontier rule:
    /// `step < frontier ⇒ retire eagerly; step ≥ frontier ⇒ retain
    /// until this bucket's own cursor floor passes it`.
    frontier: u64,
}

impl ConstructorActor {
    /// Wraps a constructor component.
    pub fn new(inner: DataConstructor) -> Self {
        ConstructorActor {
            inner,
            ready: BTreeMap::new(),
            cursors: HashMap::new(),
            floor_counts: BTreeMap::new(),
            dirty: std::collections::HashSet::new(),
            waiting: HashMap::new(),
            roster_known: false,
            pre_encode: false,
            frontier: 0,
        }
    }

    /// Moves one client's cursor, keeping the floor multiset and the
    /// pulse delta in step. Handles rewinds (a re-`Subscribe` below the
    /// old position) as well as advances.
    fn set_cursor(&mut self, client: u32, cursor: u64) {
        let prev = self.cursors.insert(client, cursor);
        if prev == Some(cursor) {
            return;
        }
        if let Some(prev) = prev {
            if let Some(count) = self.floor_counts.get_mut(&prev) {
                *count -= 1;
                if *count == 0 {
                    self.floor_counts.remove(&prev);
                }
            }
        }
        *self.floor_counts.entry(cursor).or_insert(0) += 1;
        self.dirty.insert(client);
    }

    fn needed(&self) -> Option<u64> {
        self.floor_counts.keys().next().copied()
    }

    fn prune(&mut self) {
        // Retire below the bucket's own cursor floor *or* the global
        // frontier, whichever proves more: the frontier can run ahead of
        // the floor when a departed client's `Complete` is still in
        // flight, and the floor can run ahead of the frontier for steps
        // only this bucket's clients have consumed.
        let floor = self.needed().unwrap_or(0).max(self.frontier);
        if floor > 0 {
            self.ready.retain(|step, _| *step >= floor);
        }
    }
}

impl Actor for ConstructorActor {
    type Msg = ConstructorMsg;

    fn handle(&mut self, msg: ConstructorMsg, _ctx: &mut Ctx) {
        match msg {
            ConstructorMsg::Construct {
                step,
                bucket_plan,
                samples,
                broadcast_axes,
                reply,
            } => {
                if let Some(reply) = reply {
                    // Synchronous step path: construct and return, no queue.
                    reply.send(
                        self.inner
                            .construct(&bucket_plan, &samples, &broadcast_axes),
                    );
                    return;
                }
                if self.roster_known && self.cursors.is_empty() {
                    return; // Nobody will ever pull from this bucket.
                }
                let duplicate = self.ready.contains_key(&step)
                    || step < self.frontier
                    || self.needed().is_some_and(|floor| step < floor);
                if duplicate {
                    return; // Idempotent re-broadcast.
                }
                let construct_start = std::time::Instant::now();
                let shared = SharedBatch::new(Arc::new(self.inner.construct(
                    &bucket_plan,
                    &samples,
                    &broadcast_axes,
                )));
                crate::metrics::record_stage(
                    crate::metrics::Stage::Construct,
                    construct_start.elapsed(),
                );
                if self.pre_encode {
                    // Serialize here, on the construct thread, so the serve
                    // loop sends memoized bytes instead of encoding inline.
                    shared.warm();
                }
                self.ready.insert(step, shared);
                // Wake clients parked on this step (each gets a shared
                // handle to the one constructed batch).
                let served: Vec<u32> = self
                    .waiting
                    .iter()
                    .filter(|(_, (want, _))| self.ready.contains_key(want))
                    .map(|(c, _)| *c)
                    .collect();
                for client in served {
                    let (want, reply) = self.waiting.remove(&client).expect("just selected");
                    let shared = self.ready[&want].clone();
                    reply.send((want, shared));
                }
                self.prune();
            }
            ConstructorMsg::Pull {
                client,
                step,
                reply,
            } => {
                self.set_cursor(client, step);
                match self.ready.get(&step) {
                    Some(shared) => {
                        reply.send((step, shared.clone()));
                    }
                    None => {
                        // Park; a retry from the same client replaces the
                        // stale parked reply.
                        self.waiting.insert(client, (step, reply));
                    }
                }
                self.prune();
            }
            ConstructorMsg::Roster(clients) => {
                for (c, cursor) in clients {
                    // Client cursors are monotone, so max() never rewinds a
                    // position a concurrent Pull already reported.
                    let merged = self.cursors.get(&c).map_or(cursor, |at| cursor.max(*at));
                    self.set_cursor(c, merged);
                }
                self.roster_known = true;
            }
            ConstructorMsg::Complete { client, next_step } => {
                self.set_cursor(client, next_step);
                self.prune();
            }
            ConstructorMsg::Watermark(reply) => {
                reply.send(ConstructorWatermark {
                    ready: self.ready.keys().copied().collect(),
                    needed: self.needed(),
                    cursors: self.cursors.iter().map(|(c, s)| (*c, *s)).collect(),
                });
            }
            ConstructorMsg::Pulse(reply) => {
                let moved: Vec<(u32, u64)> = {
                    let cursors = &self.cursors;
                    self.dirty
                        .drain()
                        .filter_map(|c| cursors.get(&c).map(|s| (c, *s)))
                        .collect()
                };
                reply.send(ConstructorPulse {
                    ready: self.ready.keys().copied().collect(),
                    needed: self.needed(),
                    cursors: moved,
                });
            }
            ConstructorMsg::Frontier { at } => {
                if at > self.frontier {
                    self.frontier = at;
                    self.prune();
                }
            }
            ConstructorMsg::Reset { pre_encode } => {
                self.ready.clear();
                self.cursors.clear();
                self.floor_counts.clear();
                self.dirty.clear();
                self.waiting.clear();
                self.roster_known = false;
                self.pre_encode = pre_encode;
                self.frontier = 0; // Serve steps renumber each session.
            }
        }
    }
}

/// Errors from a threaded step.
#[derive(Debug)]
pub enum RuntimeError {
    /// A loader failed its RPC (timeout or death) — the failure signal.
    LoaderFailure {
        /// Index of the failing loader in spawn order.
        loader: usize,
        /// The loader's deployment-wide id.
        loader_id: u32,
        /// Name of the source the loader serves.
        source: String,
    },
    /// The planner actor failed its RPC (it is restarting).
    PlannerFailure,
    /// A constructor actor failed its RPC (it is restarting).
    ConstructorFailure {
        /// The bucket whose constructor failed.
        bucket: u32,
    },
    /// Plan generation failed.
    Plan(DGraphError),
    /// Plan-log replay found a missing step the frontier protocol never
    /// retired: the entry was lost (not pruned), so deliveries from that
    /// step cannot be replayed away and may resurface as duplicates.
    PlanLogGap {
        /// The loader whose replay hit the gap.
        loader_id: u32,
        /// The plan step whose log entry is absent.
        missing_step: u64,
        /// The persisted retirement floor (steps below it are the only
        /// ones provably-safe to be absent).
        frontier: u64,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::LoaderFailure {
                loader,
                loader_id,
                source,
            } => write!(
                f,
                "loader {loader} (id {loader_id}, source {source:?}) failed RPC"
            ),
            RuntimeError::PlannerFailure => write!(f, "planner actor failed RPC"),
            RuntimeError::ConstructorFailure { bucket } => {
                write!(f, "constructor for bucket {bucket} failed RPC")
            }
            RuntimeError::Plan(e) => write!(f, "plan generation failed: {e}"),
            RuntimeError::PlanLogGap {
                loader_id,
                missing_step,
                frontier,
            } => write!(
                f,
                "plan log gap: loader {loader_id} needs step {missing_step} but the \
                 entry is missing and the frontier checkpoint only retires steps \
                 below {frontier}"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Identity of one loader actor, for failure attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoaderIdentity {
    /// Deployment-wide loader id.
    pub loader_id: u32,
    /// Name of the source the loader serves.
    pub source: String,
    /// Id of the source the loader serves (the control plane groups
    /// loaders by source when scaling and rebalancing).
    pub source_id: SourceId,
}

/// One registered loader actor: its handle, identity, and spawn config.
#[derive(Clone)]
pub struct LoaderSlot {
    /// The loader's actor handle.
    pub actor: ActorRef<LoaderMsg>,
    /// Failure-attribution identity.
    pub identity: LoaderIdentity,
    /// The configuration the actor was spawned with.
    pub config: LoaderConfig,
}

/// The live loader topology, shared between the pipeline handle, the
/// serve driver, and the elastic controller. The controller mutates it
/// (spawn/retire); everyone else snapshots it per operation, so a
/// topology change lands between operations, never inside one.
pub(crate) type LoaderRegistry = Arc<RwLock<Vec<LoaderSlot>>>;

/// Spawns one supervised loader actor and registers it in the shared
/// registry and the GCS name registry. Used at pipeline construction and
/// by the elastic controller for live scale-ups.
pub(crate) fn spawn_loader(
    system: &ActorSystem,
    gcs: &Gcs,
    registry: &LoaderRegistry,
    spec: SourceSpec,
    config: LoaderConfig,
    seed: u64,
) -> ActorRef<LoaderMsg> {
    let name = format!("loader/{}", config.loader_id);
    gcs.register(&name, &spec.name);
    let identity = LoaderIdentity {
        loader_id: config.loader_id,
        source: spec.name.clone(),
        source_id: spec.id,
    };
    let factory_gcs = gcs.clone();
    let factory_cfg = config.clone();
    let actor = system.spawn_supervised(
        &name,
        RestartPolicy::Restart { max_restarts: 3 },
        move || LoaderActor::new(spec.clone(), factory_cfg.clone(), seed, factory_gcs.clone()),
    );
    registry.write().push(LoaderSlot {
        actor: actor.clone(),
        identity,
        config,
    });
    actor
}

/// One loader's row in a [`RuntimeStats`] snapshot.
#[derive(Debug, Clone)]
pub struct LoaderStat {
    /// Who the loader is.
    pub identity: LoaderIdentity,
    /// Health reported by the loader itself (buffer occupancy, fetch
    /// stall time, lifetime production).
    pub health: LoaderHealth,
    /// Envelopes waiting in the actor's mailbox (backlog signal).
    pub mailbox_depth: usize,
}

/// One constructor's row in a [`RuntimeStats`] snapshot.
#[derive(Debug, Clone)]
pub struct ConstructorStat {
    /// Constructor index (clients pull from `client % constructors`).
    pub index: usize,
    /// Envelopes waiting in the actor's mailbox.
    pub mailbox_depth: usize,
    /// Serve steps currently queued for pulling clients.
    pub ready_steps: Vec<u64>,
    /// Per-client consumed counts: `(client id, next step it needs)`.
    pub client_cursors: Vec<(u32, u64)>,
}

/// Point-in-time health of the whole threaded deployment — the elastic
/// controller's decision input, exposed via [`ThreadedPipeline::stats`].
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    /// Per-loader stats, in registry order (unreachable loaders skipped).
    pub loaders: Vec<LoaderStat>,
    /// Envelopes waiting in the planner's mailbox.
    pub planner_mailbox_depth: usize,
    /// Per-constructor stats (unreachable constructors skipped).
    pub constructors: Vec<ConstructorStat>,
    /// The metrics plane at snapshot time: buffer-pool counters,
    /// per-stage latency percentiles, queue-depth gauges.
    pub metrics: crate::metrics::MetricsSnapshot,
}

impl RuntimeStats {
    /// Loader count per source, sorted by source id (the topology view
    /// scaling tests assert on).
    pub fn loaders_per_source(&self) -> Vec<(SourceId, usize)> {
        let mut counts: BTreeMap<SourceId, usize> = BTreeMap::new();
        for l in &self.loaders {
            *counts.entry(l.identity.source_id).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Total buffered samples across all loaders.
    pub fn total_buffered(&self) -> usize {
        self.loaders.iter().map(|l| l.health.buffered).sum()
    }
}

/// Gathers per-loader health from a registry snapshot with pipelined
/// asks; loaders that fail the RPC (mid-restart) are skipped. Shared by
/// [`ThreadedPipeline::stats`] and the elastic controller so the
/// operator view and the control plane's decision input cannot diverge.
pub(crate) fn gather_fleet_health(
    snapshot: Vec<LoaderSlot>,
    timeout: Duration,
) -> Vec<(LoaderSlot, LoaderHealth)> {
    let pending: Vec<(LoaderSlot, PendingReply<LoaderHealth>)> = snapshot
        .into_iter()
        .filter_map(|slot| {
            slot.actor
                .ask_pipelined(LoaderMsg::Health)
                .ok()
                .map(|p| (slot, p))
        })
        .collect();
    pending
        .into_iter()
        .filter_map(|(slot, p)| p.wait(timeout).ok().map(|h| (slot, h)))
        .collect()
}

/// The clonable actor handles a serve driver needs (shared between the
/// synchronous step path and the background driver thread).
#[derive(Clone)]
struct Fleet {
    loaders: LoaderRegistry,
    planner: ActorRef<PlannerMsg>,
    constructors: Vec<ActorRef<ConstructorMsg>>,
    controller: ActorRef<ControllerMsg>,
    broadcast_axes: Vec<Axis>,
    rpc_timeout: Duration,
    /// Steps served from the replay store, shared with the pipeline
    /// handle so both `step` and `serve` paths account them.
    replayed: Arc<AtomicU64>,
    /// Shared control store (fault reporting from the serve driver).
    gcs: Gcs,
}

fn slot_failure(idx: usize, identity: &LoaderIdentity) -> RuntimeError {
    RuntimeError::LoaderFailure {
        loader: idx,
        loader_id: identity.loader_id,
        source: identity.source.clone(),
    }
}

impl Fleet {
    /// A point-in-time copy of the loader topology. Handles are cheap
    /// clones; the controller may grow or shrink the registry while this
    /// snapshot is in use — directives for retired loaders then simply
    /// miss (the same degradation as a loader crash mid-step).
    fn snapshot(&self) -> Vec<LoaderSlot> {
        self.loaders.read().clone()
    }

    fn refill(&self, target: usize) {
        for slot in self.snapshot() {
            slot.actor.tell(LoaderMsg::Refill { target });
        }
    }

    /// Gathers buffer summaries with pipelined asks (one fleet-wide
    /// round-trip instead of one per loader).
    fn gather(&self) -> Result<BufferInfo, RuntimeError> {
        let snapshot = self.snapshot();
        let pending: Vec<(usize, PendingReply<BufferSummary>)> = snapshot
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.actor
                    .ask_pipelined(LoaderMsg::Summary)
                    .map(|p| (i, p))
                    .map_err(|_| slot_failure(i, &slot.identity))
            })
            .collect::<Result<_, _>>()?;
        let mut summaries = Vec::with_capacity(pending.len());
        for (i, p) in pending {
            summaries.push(
                p.wait(self.rpc_timeout)
                    .map_err(|_| slot_failure(i, &snapshot[i].identity))?,
            );
        }
        Ok(BufferInfo::new(summaries))
    }

    fn plan(&self, info: BufferInfo) -> Result<PlanOutcome, RuntimeError> {
        let outcome = self
            .planner
            .ask(|reply| PlannerMsg::Plan { info, reply }, self.rpc_timeout)
            .map_err(|_| RuntimeError::PlannerFailure)?
            .map_err(RuntimeError::Plan)?;
        if outcome.replayed {
            self.replayed.fetch_add(1, Ordering::SeqCst);
        }
        Ok(outcome)
    }

    /// Pops every plan directive with pipelined asks, addressing loaders
    /// by deployment-wide id (the topology may have changed since the
    /// plan was made); returns the popped samples plus the identities of
    /// loaders whose pop RPC failed. Directives naming a loader that has
    /// since been retired are skipped — the retiring drain handed its
    /// unconsumed samples to a surviving peer, so they stay plannable.
    fn pop(&self, plan: &LoadingPlan) -> (HashMap<u64, Sample>, Vec<(usize, LoaderIdentity)>) {
        let snapshot = self.snapshot();
        let mut pending = Vec::new();
        let mut failed = Vec::new();
        for (i, slot) in snapshot.iter().enumerate() {
            if let Some(ids) = plan.directives.get(&slot.identity.loader_id) {
                let ids = ids.clone();
                match slot
                    .actor
                    .ask_pipelined(move |reply| LoaderMsg::Pop { ids, reply })
                {
                    Ok(p) => pending.push((i, p)),
                    Err(_) => failed.push((i, slot.identity.clone())),
                }
            }
        }
        let mut popped = HashMap::new();
        for (i, p) in pending {
            match p.wait(self.rpc_timeout) {
                Ok(samples) => {
                    for s in samples {
                        popped.insert(s.meta.sample_id, s);
                    }
                }
                Err(_) => failed.push((i, snapshot[i].identity.clone())),
            }
        }
        (popped, failed)
    }

    fn checkpoint(&self, version: u64) {
        for slot in self.snapshot() {
            slot.actor.tell(LoaderMsg::Checkpoint { version });
        }
    }

    /// Splits the popped samples into per-bucket broadcast payloads, in
    /// plan bucket order: `(constructor index, bucket plan, samples)`.
    fn partition(
        &self,
        plan: &LoadingPlan,
        mut popped: HashMap<u64, Sample>,
    ) -> Vec<BroadcastItem> {
        plan.buckets
            .iter()
            .map(|bp| {
                let idx = PipelineCore::constructor_index(bp.bucket, self.constructors.len());
                let samples: HashMap<u64, Sample> = bp
                    .bins
                    .iter()
                    .flat_map(|bin| bin.samples.iter())
                    .filter_map(|id| popped.remove(id).map(|s| (*id, s)))
                    .collect();
                (idx, bp.clone(), Arc::new(samples))
            })
            .collect()
    }
}

/// The construction-time trainer topology, kept for the distributed
/// serving plane's rank → constructor-bucket placement. (A later
/// [`ThreadedPipeline::set_tree`] reshard applies to *plans*; serve
/// sessions opened after it should be placed against the new topology
/// by the caller.)
struct PlacementView {
    tree: ClientPlaceTree,
    axis: DistributeAxis,
    group_size: Option<u32>,
}

/// The fully actorized threaded pipeline.
pub struct ThreadedPipeline {
    system: ActorSystem,
    fleet: Fleet,
    placement: PlacementView,
    /// Data-server actors opened by [`ThreadedPipeline::serve_distributed`]
    /// (stopped at shutdown), paired with their pump threads' stop flags.
    servers: Vec<(ActorRef<ServerMsg>, Arc<AtomicBool>)>,
    /// Shared control store (checkpoints, registry, fault log).
    pub gcs: Gcs,
}

impl ThreadedPipeline {
    /// Spawns the supervised actor topology: one loader per `(spec,
    /// config)` pair, the planner, one constructor actor per entry of
    /// `constructors`, and the elastic controller.
    pub fn new(
        sources: Vec<(SourceSpec, LoaderConfig)>,
        planner: Planner,
        constructors: Vec<DataConstructor>,
        seed: u64,
    ) -> Self {
        Self::new_with(
            sources,
            planner,
            constructors,
            seed,
            Gcs::new(),
            ControllerConfig::default(),
        )
    }

    /// Like [`ThreadedPipeline::new`], but against an existing control
    /// store and with explicit controller knobs. When `gcs` holds a
    /// controller checkpoint from a previous incarnation, the recorded
    /// loader topology is respawned *instead of* the provided one — a
    /// restarted deployment resumes the exact post-scaling shape
    /// (`sources` then only supplies the spec + config templates).
    pub fn new_with(
        sources: Vec<(SourceSpec, LoaderConfig)>,
        planner: Planner,
        mut constructors: Vec<DataConstructor>,
        seed: u64,
        gcs: Gcs,
        controller_config: ControllerConfig,
    ) -> Self {
        let system = ActorSystem::new("msd");
        // The serve path delivers per-bucket batches through per-bucket
        // constructor actors; with fewer actors than plan buckets a
        // bucket's broadcast would collide with its step-mate. Pad to the
        // planner's bucket count so the mapping is one-to-one.
        let buckets = planner
            .tree()
            .bucket_count(planner.config.axis, planner.config.group_size)
            as usize;
        if let Some(template) = constructors.first().cloned() {
            while constructors.len() < buckets {
                constructors.push(template.clone());
            }
        }
        let placement = PlacementView {
            tree: planner.tree().clone(),
            axis: planner.config.axis,
            group_size: planner.config.group_size,
        };
        let topology =
            crate::system::controller::restore_topology(&gcs, &sources).unwrap_or(sources.clone());
        let registry: LoaderRegistry = Arc::new(RwLock::new(Vec::new()));
        for (spec, config) in topology {
            spawn_loader(&system, &gcs, &registry, spec, config, seed);
        }

        let broadcast_axes = planner.config.broadcast_axes.clone();
        gcs.register("planner", "central");
        let planner_gcs = gcs.clone();
        let planner_ref = system.spawn_supervised(
            "planner",
            RestartPolicy::Restart { max_restarts: 8 },
            move || PlannerActor::new(planner.clone(), planner_gcs.clone()),
        );

        let constructor_refs: Vec<ActorRef<ConstructorMsg>> = constructors
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                let name = format!("constructor/{i}");
                gcs.register(&name, "bucket constructor");
                system.spawn_supervised(
                    &name,
                    RestartPolicy::Restart { max_restarts: 8 },
                    move || ConstructorActor::new(c.clone()),
                )
            })
            .collect();

        gcs.register("controller", "elastic control plane");
        let controller_ref = {
            let ctl_system = system.clone();
            let ctl_gcs = gcs.clone();
            let ctl_registry = registry.clone();
            let ctl_planner = planner_ref.clone();
            let config = controller_config;
            system.spawn_supervised(
                "controller",
                RestartPolicy::Restart { max_restarts: 8 },
                move || {
                    ControllerActor::new(
                        config,
                        ctl_system.clone(),
                        ctl_gcs.clone(),
                        ctl_registry.clone(),
                        ctl_planner.clone(),
                        sources.clone(),
                        seed,
                    )
                },
            )
        };

        ThreadedPipeline {
            system,
            fleet: Fleet {
                loaders: registry,
                planner: planner_ref,
                constructors: constructor_refs,
                controller: controller_ref,
                broadcast_axes,
                rpc_timeout: Duration::from_secs(10),
                replayed: Arc::new(AtomicU64::new(0)),
                gcs: gcs.clone(),
            },
            placement,
            servers: Vec::new(),
            gcs,
        }
    }

    /// Steps served from the replay store (when one is installed),
    /// across both the synchronous `step` path and `serve` sessions.
    pub fn replayed_steps(&self) -> u64 {
        self.fleet.replayed.load(Ordering::SeqCst)
    }

    /// Installs a Replay Mode plan store (paper §9) on the planner actor.
    pub fn set_replay_store(&mut self, store: crate::replay::PlanStore) {
        self.fleet.planner.tell(PlannerMsg::SetReplay(store));
    }

    /// RPC timeout used as the failure detector.
    pub fn rpc_timeout(&self) -> Duration {
        self.fleet.rpc_timeout
    }

    /// Adjusts the RPC-timeout failure detector.
    pub fn set_rpc_timeout(&mut self, timeout: Duration) {
        self.fleet.rpc_timeout = timeout;
    }

    /// Loader handles in registry order (fault injection in tests). The
    /// topology is live — the elastic controller may grow or shrink it —
    /// so this returns a snapshot of cloned handles, not a borrow.
    pub fn loaders(&self) -> Vec<ActorRef<LoaderMsg>> {
        self.fleet
            .snapshot()
            .into_iter()
            .map(|slot| slot.actor)
            .collect()
    }

    /// Loader identities, parallel to [`ThreadedPipeline::loaders`].
    pub fn loader_identities(&self) -> Vec<LoaderIdentity> {
        self.fleet
            .snapshot()
            .into_iter()
            .map(|slot| slot.identity)
            .collect()
    }

    /// The planner actor handle (fault injection in tests).
    pub fn planner_actor(&self) -> &ActorRef<PlannerMsg> {
        &self.fleet.planner
    }

    /// The elastic controller's actor handle.
    pub fn controller_actor(&self) -> &ActorRef<ControllerMsg> {
        &self.fleet.controller
    }

    /// Drives one control-plane interval by hand: the controller pulls
    /// planner telemetry + loader health and executes any scaling or
    /// rebalancing decision. [`ThreadedPipeline::serve`] does this
    /// automatically every [`ServeOptions::control_interval`] steps.
    pub fn control_tick(&self) {
        self.fleet.controller.tell(ControllerMsg::Tick);
    }

    /// The controller's decision counters and current topology view.
    pub fn controller_status(&self) -> Option<ControllerStatus> {
        self.fleet
            .controller
            .ask(ControllerMsg::Status, self.fleet.rpc_timeout)
            .ok()
    }

    /// Chaos hook: stalls constructor `index`'s mailbox by `stall`,
    /// modeling a storage fetch gone slow. No-op for an out-of-range
    /// index.
    pub fn inject_constructor_stall(&self, index: usize, stall: Duration) {
        if let Some(c) = self.fleet.constructors.get(index) {
            c.inject_delay(stall);
        }
    }

    /// Snapshots runtime health across the whole deployment: per-loader
    /// buffer occupancy / fetch stalls / mailbox depth, the planner's
    /// backlog, and per-constructor queue + client-cursor state. This is
    /// the elastic controller's raw input, exposed for operators and
    /// tests; unreachable actors (mid-restart) are skipped.
    pub fn stats(&self) -> RuntimeStats {
        let loaders = gather_fleet_health(self.fleet.snapshot(), self.fleet.rpc_timeout)
            .into_iter()
            .map(|(slot, health)| LoaderStat {
                identity: slot.identity,
                mailbox_depth: slot.actor.mailbox_depth(),
                health,
            })
            .collect();
        let constructors = self
            .fleet
            .constructors
            .iter()
            .enumerate()
            .filter_map(|(index, c)| {
                c.ask(ConstructorMsg::Watermark, self.fleet.rpc_timeout)
                    .ok()
                    .map(|w| ConstructorStat {
                        index,
                        mailbox_depth: c.mailbox_depth(),
                        ready_steps: w.ready,
                        client_cursors: w.cursors,
                    })
            })
            .collect();
        let stats = RuntimeStats {
            loaders,
            planner_mailbox_depth: self.fleet.planner.mailbox_depth(),
            constructors,
            metrics: crate::metrics::MetricsSnapshot::default(),
        };
        // Publish queue depths as gauges, then take the metrics snapshot
        // so it reflects exactly this sampling instant.
        crate::metrics::set_queue_depths(
            stats.planner_mailbox_depth as u64,
            stats
                .constructors
                .iter()
                .map(|c| c.mailbox_depth as u64)
                .max()
                .unwrap_or(0),
            stats.total_buffered() as u64,
        );
        RuntimeStats {
            metrics: crate::metrics::snapshot(),
            ..stats
        }
    }

    /// Constructor actor handles (fault injection in tests).
    pub fn constructor_actors(&self) -> &[ActorRef<ConstructorMsg>] {
        &self.fleet.constructors
    }

    /// Replaces the trainer topology on the planner actor (elastic
    /// resharding): subsequent plans use the new mesh.
    pub fn set_tree(&mut self, tree: ClientPlaceTree) {
        self.fleet.planner.tell(PlannerMsg::SetTree(tree));
    }

    /// Runs one pull-model step across the actor fleet for a single
    /// synchronous caller.
    pub fn step(
        &mut self,
        refill_target: usize,
    ) -> Result<(LoadingPlan, PhaseBreakdown, Vec<ConstructedBatch>), RuntimeError> {
        // 1–2. Refill (tell) then gather summaries (pipelined ask with
        // timeout: the failure detector).
        self.fleet.refill(refill_target);
        let info = self.fleet.gather()?;

        // 3–4. Plan on the planner actor (replay-store adoption or live
        // strategy execution, via the shared PipelineCore).
        let outcome = self.fleet.plan(info)?;
        let (plan, phases) = (outcome.plan, outcome.phases);

        // 5. Pop and checkpoint.
        let (popped, failed) = self.fleet.pop(&plan);
        if let Some((i, identity)) = failed.first() {
            return Err(slot_failure(*i, identity));
        }
        self.fleet.checkpoint(plan.step);

        // 6. Broadcast each bucket's slice to its constructor actor and
        // collect the constructed batches (pipelined).
        let mut pending = Vec::new();
        for (idx, bucket_plan, samples) in self.fleet.partition(&plan, popped) {
            let bucket = bucket_plan.bucket;
            let axes = self.fleet.broadcast_axes.clone();
            let ask = self.fleet.constructors[idx].ask_pipelined(move |reply| {
                ConstructorMsg::Construct {
                    step: plan.step,
                    bucket_plan,
                    samples,
                    broadcast_axes: axes,
                    reply: Some(reply),
                }
            });
            match ask {
                Ok(p) => pending.push((bucket, p)),
                Err(_) => return Err(RuntimeError::ConstructorFailure { bucket }),
            }
        }
        let mut batches = Vec::with_capacity(pending.len());
        for (bucket, p) in pending {
            batches.push(
                p.wait(self.fleet.rpc_timeout)
                    .map_err(|_| RuntimeError::ConstructorFailure { bucket })?,
            );
        }
        Ok((plan, phases, batches))
    }

    /// Starts concurrent serving: a driver thread pumps the pipeline for
    /// `opts.steps` steps while the returned session's clients pull
    /// batches from their constructor actors. See [`ServeOptions`].
    pub fn serve(&mut self, opts: ServeOptions) -> ServeSession {
        let ctor_count = self.fleet.constructors.len().max(1);
        let roster: Vec<(u32, usize)> = (0..opts.clients)
            .map(|id| (id, id as usize % ctor_count))
            .collect();
        let hub = Arc::new(FrontierHub::new());
        let clients: Vec<ServeClient> = roster
            .iter()
            .map(|(id, ctor_idx)| {
                // Each local client holds a frontier capability from step
                // 0 and self-reports progress as it pulls.
                hub.acquire(Holder::Client(*id), 0);
                ServeClient {
                    id: *id,
                    constructor: self.fleet.constructors[*ctor_idx].clone(),
                    next_step: 0,
                    steps: opts.steps,
                    pull_timeout: opts.pull_timeout,
                    hub: hub.clone(),
                }
            })
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        // Local clients consume batches by `Arc`; nothing to pre-encode.
        self.spawn_driver(opts, roster, clients, stop, false, hub)
    }

    /// Starts a *distributed* serve session: the driver pumps exactly as
    /// in [`ThreadedPipeline::serve`], but the consumers are remote
    /// trainer clients reaching the pipeline over `transport` through a
    /// [`DataServer`] actor. Each placement's rank is mapped onto the
    /// trainer mesh ([`ClientPlaceTree`]: DP-rank → constructor bucket);
    /// `opts.clients` is ignored — `placements` defines the client set.
    ///
    /// Returns the serve session (no local clients; join it as usual)
    /// plus the server handle used to [`DataServerHandle::connect`]
    /// remote clients. The credit window of each client is
    /// `opts.queue_depth` steps, so remote flow control and the driver's
    /// bounded-queue backpressure agree on how far ahead the pipeline
    /// may run.
    ///
    /// # Panics
    ///
    /// Panics if a placement's rank lies outside the trainer mesh.
    pub fn serve_distributed(
        &mut self,
        opts: ServeOptions,
        transport: Arc<dyn Transport>,
        placements: &[RemotePlacement],
    ) -> (ServeSession, DataServerHandle) {
        let ctor_count = self.fleet.constructors.len().max(1);
        let placed: Vec<(u32, msd_mesh::Rank, usize)> = placements
            .iter()
            .map(|p| {
                let bucket = self
                    .placement
                    .tree
                    .bucket_of(p.rank, self.placement.axis, self.placement.group_size)
                    .unwrap_or_else(|| {
                        panic!("placement rank {} lies outside the trainer mesh", p.rank)
                    });
                (
                    p.client,
                    p.rank,
                    PipelineCore::constructor_index(bucket, ctor_count),
                )
            })
            .collect();
        let roster: Vec<(u32, usize)> = placed.iter().map(|(c, _, i)| (*c, *i)).collect();

        // Parked pulls are re-issued on this cadence after constructor
        // restarts; bounded so loss recovery stays well inside the
        // driver's per-step retry budget.
        let pull_retry = self.fleet.rpc_timeout.min(Duration::from_secs(2));
        let hub = Arc::new(FrontierHub::new());
        let factory_ctors = self.fleet.constructors.clone();
        let factory_placed = placed.clone();
        let factory_steps = opts.steps;
        let factory_config = opts.server;
        let factory_gcs = self.gcs.clone();
        let factory_hub = hub.clone();
        let name = format!("data-server/{}", self.servers.len());
        self.gcs.register(&name, "distributed serving plane");
        // Supervised: a crashed (or chaos-killed) server actor restarts
        // with fresh, empty session state. Clients quiet-timeout on
        // their orphaned sessions, redial under backoff, and resume
        // from their cursors — the constructors (and their prune
        // floors) live outside the server and survive the crash.
        let actor = self.system.spawn_supervised(
            &name,
            RestartPolicy::Restart { max_restarts: 4 },
            move || {
                DataServer::new(
                    factory_ctors.clone(),
                    factory_placed.clone(),
                    factory_steps,
                    pull_retry,
                    factory_config,
                    factory_gcs.clone(),
                    factory_hub.clone(),
                )
            },
        );

        // The pump thread resolves the server's pipelined constructor
        // pulls. Its lifetime is the *session's*: the driver's drain
        // (and so `ServeSession::join`) depends on the pump advancing
        // client cursors, and once the session is joined or dropped its
        // stop flag ends the pump — sequential serve sessions do not
        // accumulate 1 ms pollers. (The server actor itself stays
        // alive, idle, for `DataServerHandle::status` until pipeline
        // shutdown.)
        let session_stop = Arc::new(AtomicBool::new(false));
        let pipeline_stop = Arc::new(AtomicBool::new(false));
        let pump_actor = actor.clone();
        let pump_session_stop = session_stop.clone();
        let pump_pipeline_stop = pipeline_stop.clone();
        std::thread::Builder::new()
            .name("msd/server-pump".to_string())
            .spawn(move || {
                while !pump_session_stop.load(Ordering::SeqCst)
                    && !pump_pipeline_stop.load(Ordering::SeqCst)
                {
                    if pump_actor.mailbox_depth() < 8 && !pump_actor.tell(ServerMsg::Pump) {
                        break; // Server stopped.
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect("failed to spawn server pump thread");
        self.servers.push((actor.clone(), pipeline_stop));

        let pre_encode = transport.serializes();
        let handle = DataServerHandle::new(
            actor,
            transport,
            Arc::new(placed.iter().map(|(c, r, _)| (*c, *r)).collect()),
            opts.steps,
            opts.pull_timeout,
            opts.queue_depth.min(u64::from(u32::MAX)) as u32,
        );
        let session = self.spawn_driver(opts, roster, Vec::new(), session_stop, pre_encode, hub);
        (session, handle)
    }

    /// Spawns the serve driver over an explicit `(client, constructor)`
    /// roster; shared by local and distributed serving. `stop` becomes
    /// the session's stop flag (distributed serving also hangs its pump
    /// thread's lifetime off it).
    fn spawn_driver(
        &mut self,
        opts: ServeOptions,
        roster: Vec<(u32, usize)>,
        clients: Vec<ServeClient>,
        stop: Arc<AtomicBool>,
        pre_encode: bool,
        hub: Arc<FrontierHub>,
    ) -> ServeSession {
        let fleet = self.fleet.clone();
        let driver_stop = stop.clone();
        let driver_opts = opts;
        let driver_hub = hub.clone();
        let driver = std::thread::Builder::new()
            .name("msd/serve-driver".to_string())
            .spawn(move || {
                run_serve_driver(
                    fleet,
                    driver_opts,
                    driver_stop,
                    roster,
                    pre_encode,
                    driver_hub,
                )
            })
            .expect("failed to spawn serve driver");
        ServeSession {
            driver: Some(driver),
            clients,
            stop,
            hub,
        }
    }

    /// Stops all actors and joins their threads.
    pub fn shutdown(self) {
        // Data servers (and their pump threads) first: they hold
        // constructor handles and would otherwise keep issuing pulls
        // into a fleet that is tearing down.
        for (server, pump_stop) in &self.servers {
            pump_stop.store(true, Ordering::SeqCst);
            server.stop();
        }
        // The controller must be fully out of the way before the loader
        // snapshot is taken: a Tick still queued behind its Stop could
        // spawn a loader *after* the snapshot, and that unstopped actor
        // would wedge the join below forever. The Status ask is a drain
        // barrier for already-queued Ticks; the bounded spin then waits
        // for the Stop to land so no further spawns are possible.
        let _ = self
            .fleet
            .controller
            .ask(ControllerMsg::Status, self.fleet.rpc_timeout);
        self.fleet.controller.stop();
        // Generous: a backlog of Ticks each doing timeout-bounded RPCs can
        // outlast one rpc_timeout; every tick terminates, so this only
        // wedges past the deadline if the controller thread itself hung.
        let deadline = Instant::now() + self.fleet.rpc_timeout.max(Duration::from_secs(30));
        while self.fleet.controller.is_alive() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Stop loaders until the registry stops changing: even if the
        // controller outlived the deadline above, a loader spawned behind
        // our back is caught on the next pass instead of wedging the join.
        let mut stopped: std::collections::HashSet<u32> = std::collections::HashSet::new();
        loop {
            let mut new_any = false;
            for slot in self.fleet.snapshot() {
                if stopped.insert(slot.identity.loader_id) {
                    slot.actor.stop();
                    new_any = true;
                }
            }
            if !new_any {
                break;
            }
        }
        self.fleet.planner.stop();
        for c in &self.fleet.constructors {
            c.stop();
        }
        self.system.shutdown();
    }
}

/// Configuration of one [`ThreadedPipeline::serve`] session.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Number of concurrent trainer clients (client `i` pulls from
    /// constructor `i % constructors`).
    pub clients: u32,
    /// Serve steps to pump.
    pub steps: u64,
    /// Per-loader refill target per step.
    pub refill_target: usize,
    /// Bounded-queue backpressure knob: the driver stalls once it is this
    /// many steps ahead of the slowest client, so prefetch cannot blow the
    /// memory budget.
    pub queue_depth: u64,
    /// Pipelined refill-ahead: loaders prefetch toward the next plan
    /// while the current step is constructed and delivered.
    pub prefetch: bool,
    /// Per-pull ask timeout on the client side (pulls retry until their
    /// step arrives).
    pub pull_timeout: Duration,
    /// Elastic control-plane cadence: every this-many serve steps the
    /// driver ticks the controller, which pulls mixing-weight telemetry
    /// and loader health and may scale or rebalance the loader fleet
    /// live. `0` (the default) disables autoscaling during the session.
    pub control_interval: u64,
    /// Distributed-plane hardening knobs: session admission caps and
    /// the lease that reaps silently-dead clients. Ignored by local
    /// (in-process) serving.
    pub server: ServerConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            clients: 1,
            steps: 16,
            refill_target: 64,
            queue_depth: 4,
            prefetch: true,
            pull_timeout: Duration::from_millis(500),
            control_interval: 0,
            server: ServerConfig::default(),
        }
    }
}

/// A live serving session: the driver thread plus client handles.
pub struct ServeSession {
    driver: Option<JoinHandle<u64>>,
    clients: Vec<ServeClient>,
    stop: Arc<AtomicBool>,
    /// The session's frontier fold (shared with every consumer).
    hub: Arc<FrontierHub>,
}

impl ServeSession {
    /// Takes the client handles (each is `Send`; move them into client
    /// threads).
    pub fn take_clients(&mut self) -> Vec<ServeClient> {
        std::mem::take(&mut self.clients)
    }

    /// The session's folded global step frontier: every serve step below
    /// it is proven consumed by all live capability holders.
    pub fn frontier(&self) -> u64 {
        self.hub.frontier()
    }

    /// Requests the driver to stop after the current step.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the driver to finish; returns how many steps it
    /// broadcast.
    pub fn join(mut self) -> u64 {
        self.driver
            .take()
            .expect("driver joined once")
            .join()
            .unwrap_or(0)
    }
}

impl Drop for ServeSession {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(driver) = self.driver.take() {
            let _ = driver.join();
        }
    }
}

/// One trainer client of a serve session. Pulls are strictly ordered:
/// the client asks for serve step 0, 1, 2, … and carries its own cursor,
/// so constructor restarts can neither skip nor double-serve it.
pub struct ServeClient {
    /// Client id (also its roster entry).
    pub id: u32,
    constructor: ActorRef<ConstructorMsg>,
    next_step: u64,
    steps: u64,
    pull_timeout: Duration,
    /// The session's frontier fold: this client self-reports its
    /// consumed cursor after every pull and releases its capability when
    /// the stream ends (normally or by drop).
    hub: Arc<FrontierHub>,
}

impl ServeClient {
    /// Pulls the next batch, blocking (with retries while the pipeline
    /// recovers from faults) until it is available. Returns `None` once
    /// the session's steps are exhausted or the pipeline stays
    /// unreachable past the retry budget. The batch is a shared handle:
    /// every client of a serve step reads the same constructed buffers.
    pub fn next(&mut self) -> Option<(u64, Arc<ConstructedBatch>)> {
        if self.next_step >= self.steps {
            return None;
        }
        let want = self.next_step;
        // Generous budget: supervised restarts take tens of milliseconds;
        // backpressure stalls take as long as the slowest client.
        for _ in 0..600 {
            let id = self.id;
            match self.constructor.ask(
                |reply| ConstructorMsg::Pull {
                    client: id,
                    step: want,
                    reply,
                },
                self.pull_timeout,
            ) {
                Ok((step, shared)) => {
                    debug_assert_eq!(step, want);
                    self.next_step = want + 1;
                    self.hub.advance(Holder::Client(self.id), self.next_step);
                    if self.next_step == self.steps {
                        // Declare completion so the prune floor advances,
                        // and release the frontier capability — this
                        // client can never need a retained step again.
                        self.constructor.tell(ConstructorMsg::Complete {
                            client: self.id,
                            next_step: self.steps,
                        });
                        self.hub.release(Holder::Client(self.id));
                    }
                    return Some((step, shared.batch()));
                }
                Err(_) => continue, // Not constructed yet, or restarting.
            }
        }
        None
    }

    /// Serve steps already consumed.
    pub fn consumed(&self) -> u64 {
        self.next_step
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        if self.next_step < self.steps {
            // Abandoned mid-stream: declare the stream finished so the
            // constructor's prune floor (and with it the serve driver's
            // backpressure and drain) stop waiting for pulls that will
            // never come. Queued batches for this client are pruned —
            // a dropped client cannot leak its ready queue. The frontier
            // capability is *released*, not advanced: a departed client
            // must neither hold back nor falsely advance retirement.
            self.constructor.tell(ConstructorMsg::Complete {
                client: self.id,
                next_step: self.steps,
            });
            self.hub.release(Holder::Client(self.id));
        }
    }
}

/// How long the driver keeps retrying one serve step through failures
/// before concluding the fleet is unrecoverable (e.g. a loader exhausted
/// its restart budget) and ending the session early. Keeps
/// [`ServeSession::join`] from blocking forever on a dead fleet.
const STEP_RETRY_BUDGET: Duration = Duration::from_secs(60);

/// The serve driver loop: pump `opts.steps` steps through the actor
/// fleet, riding out supervised restarts, then drain until every
/// rostered client has consumed its stream. `roster` maps each client
/// to its constructor — `i % C` for local sessions, the mesh placement
/// for distributed ones.
fn run_serve_driver(
    fleet: Fleet,
    opts: ServeOptions,
    stop: Arc<AtomicBool>,
    roster: Vec<(u32, usize)>,
    pre_encode: bool,
    hub: Arc<FrontierHub>,
) -> u64 {
    // The driver caches every client's cursor (refreshed from watermark
    // polls) so a roster re-sent to a restarted constructor restores
    // real positions.
    let mut cursors: Vec<HashMap<u32, u64>> = vec![HashMap::new(); fleet.constructors.len()];
    for (client, ctor_idx) in &roster {
        cursors[*ctor_idx].insert(*client, 0);
    }
    for (idx, ctor) in fleet.constructors.iter().enumerate() {
        // A previous serve session may have left queued batches and
        // cursors behind; serve-step numbering restarts at 0.
        ctor.tell(ConstructorMsg::Reset { pre_encode });
        ctor.tell(ConstructorMsg::Roster(roster_of(&cursors[idx])));
    }
    let rostered: Vec<usize> = (0..fleet.constructors.len())
        .filter(|idx| !cursors[*idx].is_empty())
        .collect();
    // Each rostered constructor holds a frontier capability for its
    // delivered floor (advanced from watermark pulses): the retained
    // window must outlive not just the slowest client but also any
    // in-flight `Complete` the constructor has not yet folded in.
    for &idx in &rostered {
        hub.acquire(Holder::Constructor(idx as u32), 0);
    }

    // Retained broadcast window for re-broadcast after constructor
    // restarts; bounded by the backpressure depth.
    let mut window: BroadcastWindow = VecDeque::new();

    // Plan-log retirement state: the planner's global step of this
    // session's serve step 0 (captured at the first plan) and the
    // pruning cursor, resumed from the persisted frontier checkpoint so
    // retirement stays monotone across sessions.
    let mut plan_base: Option<u64> = None;
    let mut pruned_below = persisted_retirement_floor(&fleet.gcs);
    let mut last_frontier = 0u64;

    let mut served = 0u64;
    let mut bucket_overflow_reported = false;
    'steps: for s in 0..opts.steps {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let step_deadline = Instant::now() + STEP_RETRY_BUDGET;
        // (1) Refill. With prefetch the refill for this step was issued
        // right after the previous pop, overlapping with construction.
        if !opts.prefetch || s == 0 {
            fleet.refill(opts.refill_target);
        }

        // (2) Gather + (3) plan, riding out restarts.
        let outcome = loop {
            if stop.load(Ordering::SeqCst) || Instant::now() > step_deadline {
                break 'steps;
            }
            let info = match fleet.gather() {
                Ok(info) => info,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            match fleet.plan(info) {
                Ok(outcome) => break outcome,
                Err(RuntimeError::Plan(_)) => {
                    // A genuine planning error (not a crash): nudge the
                    // loaders and retry — buffers may simply be lean.
                    fleet.refill(opts.refill_target);
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        };
        let plan = outcome.plan;
        let base = *plan_base.get_or_insert(plan.step);
        if plan.buckets.len() > fleet.constructors.len() && !bucket_overflow_reported {
            bucket_overflow_reported = true;
            // Reshard grew the bucket count past the spawned constructor
            // fleet: buckets sharing a constructor collide per serve step
            // and the extras are dropped. Surface the degradation.
            fleet.gcs.log_fault(
                "serve-driver",
                format!(
                    "plan has {} buckets but only {} constructor actors; \
                     colliding buckets are dropped in serve mode",
                    plan.buckets.len(),
                    fleet.constructors.len()
                ),
            );
        }

        // (4) Pop, retrying loaders that were mid-restart once; a
        // restarted loader's lost samples are skipped by construction.
        let (mut popped, failed) = fleet.pop(&plan);
        if !failed.is_empty() {
            std::thread::sleep(Duration::from_millis(20));
            let (retried, _) = fleet.pop(&plan);
            popped.extend(retried);
        }

        // (5) Checkpoint; (6) prefetch the next step's refill so loaders
        // work while constructors assemble and clients drain.
        fleet.checkpoint(plan.step);
        if opts.prefetch {
            fleet.refill(opts.refill_target);
        }

        // (7) Broadcast this serve step to the constructors.
        let items = fleet.partition(&plan, popped);
        broadcast(&fleet, s, &items);
        window.push_back((s, items));
        served = s + 1;

        // (7a) Frontier retirement: fold the consumed-frontier reports,
        // persist the proof to the GCS, and prune the plan log below it.
        retire_frontier(
            &fleet,
            &hub,
            base,
            served,
            &mut pruned_below,
            &mut last_frontier,
        );

        // (7b) Elastic control plane: tick the controller on its cadence.
        // The tick is a tell — scaling decisions execute on the
        // controller's thread while the driver keeps pumping steps.
        if opts.control_interval > 0 && served % opts.control_interval == 0 {
            fleet.controller.tell(ControllerMsg::Tick);
        }

        // (8) Ack + backpressure: wait until every rostered constructor
        // has enqueued step `s` (re-broadcasting on restarts) and the
        // slowest client is within `queue_depth` steps. Deadline-bounded
        // so a dead constructor or vanished client cannot wedge the
        // driver forever.
        let mut stalls = 0u32;
        loop {
            if stop.load(Ordering::SeqCst) || Instant::now() > step_deadline {
                break 'steps;
            }
            let (all_acked, min_needed) =
                poll_watermarks(&fleet, &rostered, &mut cursors, s, &window, &hub);
            {
                // Trim the retained window by the *frontier*, not the
                // constructor floor: the frontier is the min over every
                // live capability (clients and constructors), so a step
                // below it can never be pulled or re-broadcast again —
                // retirement is proven, and retained size is bounded by
                // actual lag. `queue_depth` steps of slack stay below
                // it: a client resuming after a server crash-restart
                // (or a lease eviction) re-subscribes from its
                // *consumed* step, up to one credit window below its
                // server-side cursor — those steps must stay
                // re-sendable or the slowest client wedges below the
                // retained window.
                let keep_from = hub.frontier().saturating_sub(opts.queue_depth);
                while window.front().is_some_and(|(step, _)| *step < keep_from) {
                    window.pop_front();
                }
            }
            let backlogged = min_needed.is_some_and(|floor| s + 1 > floor + opts.queue_depth);
            if all_acked && !backlogged {
                break;
            }
            stalls += 1;
            std::thread::sleep(Duration::from_millis(if stalls > 50 { 10 } else { 2 }));
        }
    }

    // Drain: keep the re-broadcast duty alive until every rostered client
    // consumed its stream (or a generous deadline passes).
    let deadline = Instant::now() + Duration::from_secs(60);
    while !stop.load(Ordering::SeqCst) && Instant::now() < deadline {
        if rostered.is_empty() || served == 0 {
            break;
        }
        let (_, min_needed) =
            poll_watermarks(&fleet, &rostered, &mut cursors, served - 1, &window, &hub);
        // Done when the constructor floors prove every stream consumed,
        // or when the hub holds no live client capability below `served`
        // (completion and drop both *release*; a released client must
        // not wedge the drain).
        if min_needed.is_some_and(|floor| floor >= served)
            || hub.min_client_cursor().is_none_or(|c| c >= served)
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for &idx in &rostered {
        hub.release(Holder::Constructor(idx as u32));
    }
    served
}

/// A roster message payload from the driver's cached cursor map.
fn roster_of(cursors: &HashMap<u32, u64>) -> Vec<(u32, u64)> {
    cursors.iter().map(|(c, s)| (*c, *s)).collect()
}

/// Folds the hub's global frontier into durable retirement, once per
/// served step:
///
/// 1. announce a frontier advance to every constructor (eager
///    ready-queue retirement below it),
/// 2. compute the plan-log retirement floor — the min of what every
///    live consumer capability permits (`plan_base + frontier`) and
///    what every loader's durable checkpoint permits (its replay
///    cursor, `state_version("loader/{id}")`) — so neither a lagging
///    client nor a restarting loader can ever need a pruned entry,
/// 3. prune plan-log entries below the floor and persist the frontier
///    checkpoint (the proof readers like [`replay_plan_log`] consult).
///
/// Retained plan-log size is therefore bounded by actual lag (slowest
/// capability behind the head), never by run length.
fn retire_frontier(
    fleet: &Fleet,
    hub: &FrontierHub,
    plan_base: u64,
    served: u64,
    pruned_below: &mut u64,
    last_frontier: &mut u64,
) {
    let snap = hub.snapshot();
    if snap.frontier > *last_frontier {
        *last_frontier = snap.frontier;
        for ctor in &fleet.constructors {
            ctor.tell(ConstructorMsg::Frontier { at: snap.frontier });
        }
    }
    let mut floor = plan_base.saturating_add(snap.frontier);
    for slot in fleet.snapshot() {
        let key = format!("loader/{}", slot.identity.loader_id);
        floor = floor.min(fleet.gcs.state_version(&key));
    }
    if floor > *pruned_below {
        for step in *pruned_below..floor {
            fleet.gcs.remove_state(&plan_log_key(step));
        }
        *pruned_below = floor;
    }
    let cp = FrontierCheckpoint {
        frontier: snap.frontier,
        served,
        plan_base,
        pruned_below: *pruned_below,
        holders: snap.holders,
    };
    let version = fleet.gcs.state_version(FRONTIER_STATE_KEY) + 1;
    fleet.gcs.put_state(
        FRONTIER_STATE_KEY,
        version,
        crate::codec::encode_frontier_checkpoint(&cp),
    );
}

fn broadcast(fleet: &Fleet, step: u64, items: &[BroadcastItem]) {
    for (idx, bucket_plan, samples) in items {
        fleet.constructors[*idx].tell(ConstructorMsg::Construct {
            step,
            bucket_plan: bucket_plan.clone(),
            samples: samples.clone(),
            broadcast_axes: fleet.broadcast_axes.clone(),
            reply: None,
        });
    }
}

/// Polls every rostered constructor's delta watermark
/// ([`ConstructorMsg::Pulse`]). Returns whether all of them hold every
/// window step their clients still need (through `step`), plus the
/// fleet-wide minimum needed step. A constructor missing steps with an
/// empty mailbox has restarted and lost its queue: its roster (at
/// cached cursor positions) and the missing window slices are re-sent —
/// both idempotent on the receiving side.
///
/// This poll runs every few milliseconds while the driver waits out
/// backpressure, which is why it asks for the *pulse* (moved cursors
/// only) rather than the full watermark: with thousands of mostly-idle
/// clients rostered, the full report would cost O(clients) per poll on
/// both sides. `stats()` and the elastic controller still take the
/// full [`ConstructorWatermark`] at their much lower cadence.
fn poll_watermarks(
    fleet: &Fleet,
    rostered: &[usize],
    cursors: &mut [HashMap<u32, u64>],
    step: u64,
    window: &BroadcastWindow,
    hub: &FrontierHub,
) -> (bool, Option<u64>) {
    let mut all_acked = true;
    let mut min_needed: Option<u64> = None;
    for &idx in rostered {
        let ctor = &fleet.constructors[idx];
        match ctor.ask(ConstructorMsg::Pulse, Duration::from_millis(200)) {
            Ok(w) => {
                // Refresh the driver's cursor cache from the delta. A
                // freshly restarted constructor reports fewer clients
                // than the cache knows — keep those cached entries — but
                // a *reported* cursor is authoritative even when it moves
                // backwards: a lease-evicted client's cursor parks at
                // `steps`, and its late re-`Subscribe` rewinds it so the
                // missing-step diff below re-sends what it still needs.
                for (c, cur) in &w.cursors {
                    if let Some(known) = cursors[idx].get_mut(c) {
                        *known = *cur;
                    }
                }
                if let Some(n) = w.needed {
                    min_needed = Some(min_needed.map_or(n, |m| m.min(n)));
                }
                // A step is outstanding if some client may still pull it
                // (>= the constructor's own floor) and the constructor
                // does not hold it. Diffing the full window catches
                // mid-window losses a high-watermark check would miss.
                // The floor comes from the actor's O(1) multiset — a
                // restarted constructor reports `None` (no cursors yet),
                // floor 0, which makes its whole owned window "missing"
                // and triggers the roster + resend below.
                let floor = w.needed.unwrap_or(0);
                // Report the constructor's delivered floor into the
                // frontier fold (monotone: a restarted constructor's
                // empty multiset — floor 0 — cannot rewind it).
                hub.advance(Holder::Constructor(idx as u32), floor);
                let held: std::collections::HashSet<u64> = w.ready.iter().copied().collect();
                let missing: Vec<u64> = window
                    .iter()
                    .filter(|(ws, items)| {
                        *ws >= floor
                            && *ws <= step
                            && !held.contains(ws)
                            && items.iter().any(|(i, _, _)| *i == idx)
                    })
                    .map(|(ws, _)| *ws)
                    .collect();
                if !missing.is_empty() {
                    all_acked = false;
                    // An empty mailbox with steps still missing means the
                    // broadcasts were consumed by a pre-restart incarnation
                    // and lost with its queue (or already handed to every
                    // client — covered by the floor bound above).
                    if ctor.mailbox_depth() == 0 {
                        ctor.tell(ConstructorMsg::Roster(roster_of(&cursors[idx])));
                        resend(fleet, idx, &missing, window);
                    }
                }
            }
            Err(_) => {
                all_acked = false; // Restart in progress; poll again.
            }
        }
    }
    (all_acked, min_needed)
}

/// Re-sends the named retained window steps to one constructor.
fn resend(fleet: &Fleet, ctor_idx: usize, steps: &[u64], window: &BroadcastWindow) {
    for (step, items) in window {
        if !steps.contains(step) {
            continue;
        }
        for (idx, bucket_plan, samples) in items {
            if *idx != ctor_idx {
                continue;
            }
            fleet.constructors[*idx].tell(ConstructorMsg::Construct {
                step: *step,
                bucket_plan: bucket_plan.clone(),
                samples: samples.clone(),
                broadcast_axes: fleet.broadcast_axes.clone(),
                reply: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_balance::BalanceMethod;
    use msd_data::catalog::coyo700m_like;
    use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
    use msd_sim::SimRng;

    use crate::planner::{PlannerConfig, Strategy};
    use crate::schedule::MixSchedule;

    fn pipeline() -> ThreadedPipeline {
        let mut rng = SimRng::seed(1);
        let catalog = coyo700m_like(&mut rng);
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let planner = Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 16,
                schedule: MixSchedule::uniform(catalog.len()),
            },
            Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: msd_balance::BackboneShape {
                    layers: 2,
                    hidden: 128,
                    mlp_ratio: 4.0,
                    heads: 2,
                    vocab: 1000,
                    experts_per_token: 1,
                },
            },
            tree,
            catalog.sources().iter().map(|s| s.id).collect(),
            7,
        );
        let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
            .sources()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), LoaderConfig::solo(i as u32)))
            .collect();
        let constructors = (0..2)
            .map(|_| DataConstructor::new(mesh.clone(), 4096))
            .collect();
        ThreadedPipeline::new(sources, planner, constructors, 99)
    }

    fn step_until_ok(
        p: &mut ThreadedPipeline,
        refill: usize,
        attempts: u32,
    ) -> (LoadingPlan, PhaseBreakdown, Vec<ConstructedBatch>) {
        for _ in 0..attempts {
            match p.step(refill) {
                Ok(out) => return out,
                Err(RuntimeError::Plan(e)) => panic!("unexpected plan error: {e}"),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        panic!("pipeline never recovered");
    }

    #[test]
    fn threaded_step_delivers_batches() {
        let mut p = pipeline();
        let (plan, phases, batches) = p.step(32).unwrap();
        assert_eq!(plan.all_samples().len(), 16);
        assert_eq!(batches.len(), 2);
        assert!(phases.compute_ns > 0);
        p.shutdown();
    }

    #[test]
    fn threaded_replay_serves_recorded_plans() {
        // Record three steps on fleet A, then replay them on an
        // identically seeded fleet B: plans match and no strategy runs.
        let mut recorder = pipeline();
        let mut store = crate::replay::PlanStore::new();
        let mut recorded = Vec::new();
        for _ in 0..3 {
            let (plan, _, _) = recorder.step(32).unwrap();
            recorded.push(plan.clone());
            store.insert(plan);
        }
        recorder.shutdown();

        let mut replayer = pipeline();
        replayer.set_replay_store(store);
        for expect in &recorded {
            let (plan, phases, batches) = replayer.step(32).unwrap();
            assert_eq!(&plan, expect);
            assert_eq!(phases.gather_ns, 0, "replay skips gather accounting");
            assert_eq!(phases.compute_ns, 0);
            assert!(!batches.is_empty());
        }
        assert_eq!(replayer.replayed_steps(), 3);
        // Past the store: live planning resumes seamlessly.
        let (plan, phases, _) = replayer.step(32).unwrap();
        assert_eq!(plan.step, 3);
        assert!(phases.compute_ns > 0);
        assert_eq!(replayer.replayed_steps(), 3);
        replayer.shutdown();
    }

    #[test]
    fn reshard_survives_planner_restart() {
        let mut p = pipeline();
        let (plan, _, _) = p.step(32).unwrap();
        assert_eq!(plan.buckets.len(), 2); // DP=2.
                                           // Elastic reshard to DP=1, then kill the planner: the restarted
                                           // planner must keep the resharded topology (persisted in the
                                           // GCS), not the spawn-time template.
        let new_mesh = DeviceMesh::pp_dp_cp_tp(1, 1, 1, 2).unwrap();
        p.set_tree(ClientPlaceTree::from_device_mesh(&new_mesh));
        let (plan, _, _) = p.step(32).unwrap();
        assert_eq!(plan.buckets.len(), 1);
        p.planner_actor().inject_crash("injected");
        std::thread::sleep(Duration::from_millis(50));
        let (plan, _, _) = step_until_ok(&mut p, 32, 50);
        assert_eq!(
            plan.buckets.len(),
            1,
            "planner restart reverted the reshard"
        );
        p.shutdown();
    }

    #[test]
    fn crashed_loader_recovers_via_supervision_and_gcs() {
        let mut p = pipeline();
        let (_, _, _) = p.step(32).unwrap();
        // Kill loader 0; the supervisor restarts it and it restores from
        // its GCS checkpoint.
        p.loaders()[0].inject_crash("injected");
        // Give the supervisor a moment to restart.
        std::thread::sleep(Duration::from_millis(50));
        let (plan, _, _) = step_until_ok(&mut p, 32, 50);
        assert_eq!(plan.all_samples().len(), 16);
        p.shutdown();
    }

    #[test]
    fn stalled_loader_trips_the_failure_detector() {
        let mut p = pipeline();
        // Pre-warm buffers so an ordinary refill is fast, then stall one
        // loader well past the RPC timeout. The timeout must stay generous
        // enough that *healthy* loaders never trip it under parallel test
        // load — only the injected stall may exceed it.
        p.step(32).unwrap();
        p.set_rpc_timeout(Duration::from_secs(2));
        p.loaders()[1].inject_delay(Duration::from_secs(6));
        let r = p.step(32);
        match r {
            Err(RuntimeError::LoaderFailure {
                loader,
                loader_id,
                ref source,
            }) => {
                assert_eq!(loader, 1);
                assert_eq!(loader_id, p.loader_identities()[1].loader_id);
                assert_eq!(source, &p.loader_identities()[1].source);
            }
            other => panic!("expected attributable loader failure, got {other:?}"),
        }
        p.shutdown();
    }

    #[test]
    fn crashed_planner_resumes_the_plan_sequence() {
        // Reference: an unfailed pipeline's plan stream.
        let mut reference = pipeline();
        let expected: Vec<Vec<u64>> = (0..4)
            .map(|_| reference.step(32).unwrap().0.all_samples())
            .collect();
        reference.shutdown();

        // Faulty: kill the planner actor after step 1; the supervised
        // restart restores step counter + RNG from the GCS checkpoint.
        let mut faulty = pipeline();
        let mut got: Vec<Vec<u64>> = Vec::new();
        got.push(faulty.step(32).unwrap().0.all_samples());
        faulty.planner_actor().inject_crash("injected");
        std::thread::sleep(Duration::from_millis(50));
        while got.len() < 4 {
            match faulty.step(32) {
                Ok((plan, _, _)) => got.push(plan.all_samples()),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
        assert_eq!(expected, got, "planner restart perturbed the plan stream");
        faulty.shutdown();
    }

    #[test]
    fn crashed_constructor_restarts_and_serves_again() {
        let mut p = pipeline();
        p.step(32).unwrap();
        p.constructor_actors()[0].inject_crash("injected");
        std::thread::sleep(Duration::from_millis(50));
        let (_, _, batches) = step_until_ok(&mut p, 32, 50);
        assert_eq!(batches.len(), 2);
        p.shutdown();
    }

    #[test]
    fn corrupt_loader_checkpoint_falls_back_and_logs() {
        let mut p = pipeline();
        p.step(32).unwrap();
        // Sabotage loader 0's checkpoint, then crash it: the restart must
        // fall back to a fresh loader and log the corruption instead of
        // dying permanently.
        let key = "loader/0";
        let v = p.gcs.state_version(key);
        p.gcs.put_state(key, v + 1, b"{not json".to_vec());
        p.loaders()[0].inject_crash("injected");
        std::thread::sleep(Duration::from_millis(50));
        let (plan, _, _) = step_until_ok(&mut p, 32, 50);
        assert_eq!(plan.all_samples().len(), 16);
        assert!(p.loaders()[0].is_alive());
        let faults = p.gcs.fault_log("loader/0");
        assert!(
            faults.iter().any(|f| f.detail.contains("corrupt")),
            "corruption not surfaced: {faults:?}"
        );
        p.shutdown();
    }

    #[test]
    fn second_serve_session_starts_fresh() {
        let mut p = pipeline();
        for round in 0..2u32 {
            let mut session = p.serve(ServeOptions {
                clients: 2,
                steps: 3,
                refill_target: 32,
                queue_depth: 2,
                prefetch: true,
                pull_timeout: Duration::from_millis(500),
                control_interval: 0,
                server: ServerConfig::default(),
            });
            let handles: Vec<_> = session
                .take_clients()
                .into_iter()
                .map(|mut c| {
                    std::thread::spawn(move || {
                        let mut steps = Vec::new();
                        while let Some((step, _)) = c.next() {
                            steps.push(step);
                        }
                        steps
                    })
                })
                .collect();
            for h in handles {
                let steps = h.join().unwrap();
                assert_eq!(steps, vec![0, 1, 2], "round {round} stream broken");
            }
            assert_eq!(session.join(), 3, "round {round} driver fell short");
        }
        p.shutdown();
    }

    #[test]
    fn serve_delivers_ordered_streams_to_concurrent_clients() {
        let mut p = pipeline();
        let mut session = p.serve(ServeOptions {
            clients: 4,
            steps: 6,
            refill_target: 32,
            queue_depth: 3,
            prefetch: true,
            pull_timeout: Duration::from_millis(500),
            control_interval: 0,
            server: ServerConfig::default(),
        });
        let clients = session.take_clients();
        let handles: Vec<_> = clients
            .into_iter()
            .map(|mut c| {
                std::thread::spawn(move || {
                    let mut steps = Vec::new();
                    while let Some((step, batch)) = c.next() {
                        steps.push((step, batch.bucket, batch.microbatches.len()));
                    }
                    (c.id, steps)
                })
            })
            .collect();
        for h in handles {
            let (id, steps) = h.join().unwrap();
            assert_eq!(steps.len(), 6, "client {id} missed steps: {steps:?}");
            for (i, (step, _, microbatches)) in steps.iter().enumerate() {
                assert_eq!(*step, i as u64, "client {id} saw out-of-order step");
                assert_eq!(*microbatches, 2);
            }
        }
        assert_eq!(session.join(), 6);
        p.shutdown();
    }
}
