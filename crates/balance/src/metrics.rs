//! Imbalance metrics.

use crate::binpack::Assignment;

/// Per-bin cost sums for an assignment.
pub fn bin_sums(assignment: &Assignment, costs: &[f64]) -> Vec<f64> {
    assignment.sums(costs)
}

/// Max/min ratio of per-bin sums (1.0 = perfectly balanced). Empty or
/// zero-minimum inputs yield `f64::INFINITY` (an empty bin is the worst
/// imbalance: its consumer idles a full microbatch).
pub fn imbalance_factor(sums: &[f64]) -> f64 {
    let max = sums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = sums.iter().cloned().fold(f64::INFINITY, f64::min);
    if sums.is_empty() || min <= 0.0 {
        return f64::INFINITY;
    }
    max / min
}

/// Coefficient of variation (std/mean) of per-bin sums.
pub fn coefficient_of_variation(sums: &[f64]) -> f64 {
    if sums.is_empty() {
        return 0.0;
    }
    let n = sums.len() as f64;
    let mean = sums.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = sums.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Straggler penalty: the fraction of total compute wasted if every bin
/// waits for the slowest (`n·max / sum − 1`). This is the quantity
/// load-time balancing recovers.
pub fn straggler_waste(sums: &[f64]) -> f64 {
    if sums.is_empty() {
        return 0.0;
    }
    let max = sums.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let total: f64 = sums.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    (sums.len() as f64 * max / total) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_cv() {
        let sums = [10.0, 10.0, 10.0];
        assert_eq!(imbalance_factor(&sums), 1.0);
        assert_eq!(coefficient_of_variation(&sums), 0.0);
        let sums = [5.0, 10.0];
        assert_eq!(imbalance_factor(&sums), 2.0);
        assert!(coefficient_of_variation(&sums) > 0.3);
    }

    #[test]
    fn empty_bin_is_infinite_imbalance() {
        assert_eq!(imbalance_factor(&[0.0, 5.0]), f64::INFINITY);
        assert_eq!(imbalance_factor(&[]), f64::INFINITY);
    }

    #[test]
    fn straggler_waste_bounds() {
        assert_eq!(straggler_waste(&[4.0, 4.0]), 0.0);
        // One idle bin of two: half the cluster waits.
        let w = straggler_waste(&[8.0, 0.0]);
        assert!((w - 1.0).abs() < 1e-12);
        assert_eq!(straggler_waste(&[]), 0.0);
    }
}
