//! The assembled MegaScale-Data pipeline and its cluster memory model.
//!
//! [`MegaScaleData`] wires the synchronous components together — Source
//! Loaders (one actor per source partition from auto-partitioning), the
//! Planner, and per-bucket Data Constructors — and drives the paper's pull
//! workflow (Fig 7):
//!
//! 1. trainer clients request data from their Data Constructor,
//! 2. the constructor triggers fetches from Source Loaders,
//! 3. loaders consult the Planner,
//! 4. the Planner gathers buffer metadata and synthesizes a plan,
//! 5. loaders pop planned samples, constructors assemble and deliver.
//!
//! The struct exposes per-step instrumentation (plan, phase breakdown,
//! modeled fetch latency, memory report) that the evaluation benches
//! consume. A threaded actor deployment of the same components lives in
//! [`crate::system::runtime`].

use std::collections::HashMap;

use msd_data::Catalog;
use msd_mesh::{ClientPlaceTree, DeviceMesh};
use msd_sim::{MemoryMeter, SimRng};

use crate::autoscale::{
    expand_configs, partition_sources, AutoScaler, ClusterResources, PartitionOpts,
};
use crate::buffer::BufferInfo;
use crate::constructor::{ConstructedBatch, DataConstructor};
use crate::dgraph::DGraphError;
use crate::fault::ShadowedLoader;
use crate::plan::LoadingPlan;
use crate::planner::{PhaseBreakdown, Planner, PlannerConfig, Strategy};
use crate::system::core::PipelineCore;

pub mod chaos;
pub mod controller;
pub mod core;
pub mod frontier;
pub mod net;
pub mod reader;
pub mod runtime;
pub mod server;
pub mod tcp;

/// Feature toggles for the component ablation (Fig 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Features {
    /// Disaggregated loaders/constructors (off = per-rank clones).
    pub disaggregation: bool,
    /// Load-time orchestration (off = Vanilla strategy).
    pub orchestration: bool,
    /// Source auto-partitioning + mixture-driven scaling.
    pub autoscaler: bool,
    /// Shadow loaders + differential checkpointing.
    pub fault_tolerance: bool,
}

impl Features {
    /// Everything on (the shipped configuration).
    pub fn all() -> Self {
        Features {
            disaggregation: true,
            orchestration: true,
            autoscaler: true,
            fault_tolerance: true,
        }
    }
}

/// Top-level configuration for a [`MegaScaleData`] deployment.
#[derive(Debug, Clone)]
pub struct MsdConfig {
    /// The data sources.
    pub catalog: Catalog,
    /// Trainer device mesh.
    pub mesh: DeviceMesh,
    /// Orchestration strategy.
    pub strategy: Strategy,
    /// Planner configuration.
    pub planner: PlannerConfig,
    /// Trainer context length (packing bound).
    pub max_seq_len: u64,
    /// CPU/memory budget for preprocessing.
    pub resources: ClusterResources,
    /// Auto-partitioning knobs.
    pub partition: PartitionOpts,
    /// Shadow loaders per source (0 disables fault tolerance).
    pub shadow_loaders: u32,
    /// Loader buffer capacity in samples.
    pub buffer_capacity: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// Output of one pipeline step.
#[derive(Debug, Clone)]
pub struct StepOutput {
    /// The plan executed.
    pub plan: LoadingPlan,
    /// Planner phase breakdown.
    pub phases: PhaseBreakdown,
    /// Constructed batches, one per bucket.
    pub batches: Vec<ConstructedBatch>,
    /// Metadata of every sample the plan consumed (keyed by sample id).
    pub metas: HashMap<u64, msd_data::SampleMeta>,
    /// Slowest loader's refill time this step (virtual ns).
    pub loader_ns: u64,
    /// Constructor assembly + delivery time model (virtual ns).
    pub constructor_ns: u64,
    /// End-to-end unoverlapped data fetch latency (virtual ns).
    pub fetch_ns: u64,
    /// Payload bytes shipped loader → constructor this step (what
    /// transformation reordering shrinks).
    pub ship_bytes: u64,
}

/// The assembled synchronous pipeline.
pub struct MegaScaleData {
    /// Static configuration.
    pub config: MsdConfig,
    loaders: Vec<ShadowedLoader>,
    core: PipelineCore,
    constructors: Vec<DataConstructor>,
    /// Mixture-driven scaler (present when the feature is on).
    pub autoscaler: Option<AutoScaler>,
    transform_reorder: bool,
}

impl MegaScaleData {
    /// Builds the deployment: runs auto-partitioning, instantiates loaders
    /// (with shadows), the planner, and one constructor per bucket.
    pub fn new(config: MsdConfig) -> Self {
        let mut rng = SimRng::seed(config.seed);
        let setups = partition_sources(
            &config.catalog,
            config.resources,
            &config.partition,
            &mut rng,
        );
        let configs = expand_configs(&setups, config.buffer_capacity);
        let loaders: Vec<ShadowedLoader> = configs
            .into_iter()
            .map(|(src, cfg)| {
                let spec = config
                    .catalog
                    .get(src)
                    .expect("setup sources come from the catalog")
                    .clone();
                let seed = config.seed ^ (u64::from(cfg.loader_id) << 16);
                ShadowedLoader::new(spec, cfg, seed, 4)
            })
            .collect();
        let tree = ClientPlaceTree::from_device_mesh(&config.mesh);
        let sources = config.catalog.sources().iter().map(|s| s.id).collect();
        let planner = Planner::new(
            config.planner.clone(),
            config.strategy.clone(),
            tree.clone(),
            sources,
            config.seed ^ 0xBEEF,
        );
        let buckets = tree.bucket_count(config.planner.axis, config.planner.group_size);
        let constructors = (0..buckets)
            .map(|_| DataConstructor::new(config.mesh.clone(), config.max_seq_len))
            .collect();
        let autoscaler = Some(AutoScaler::new(setups));
        MegaScaleData {
            config,
            loaders,
            core: PipelineCore::new(planner),
            constructors,
            autoscaler,
            transform_reorder: false,
        }
    }

    /// Builds a deployment from explicit loader sources and a pre-built
    /// planner, bypassing auto-partitioning (no autoscaler). Loader RNG
    /// seeding matches [`crate::system::runtime::ThreadedPipeline::new`]
    /// — every `SourceLoader` mixes its own id into the shared
    /// `config.seed` — so a threaded pipeline spawned from the same parts
    /// produces the *identical* plan and batch stream. That
    /// deployment-equivalence contract is what
    /// `tests/zero_copy_dataplane.rs` pins down.
    pub fn from_parts(
        config: MsdConfig,
        planner: Planner,
        sources: Vec<(msd_data::SourceSpec, crate::loader::LoaderConfig)>,
    ) -> Self {
        let loaders = sources
            .into_iter()
            .map(|(spec, cfg)| ShadowedLoader::new(spec, cfg, config.seed, 4))
            .collect();
        let buckets = planner
            .tree()
            .bucket_count(planner.config.axis, planner.config.group_size);
        let constructors = (0..buckets)
            .map(|_| DataConstructor::new(config.mesh.clone(), config.max_seq_len))
            .collect();
        MegaScaleData {
            config,
            loaders,
            core: PipelineCore::new(planner),
            constructors,
            autoscaler: None,
            transform_reorder: false,
        }
    }

    /// Installs a Replay Mode plan store: recorded steps that validate
    /// against live buffers are adopted without running the strategy.
    pub fn set_replay_store(&mut self, store: crate::replay::PlanStore) {
        self.core.set_replay_store(store);
    }

    /// Steps served from the replay store (when one is installed).
    pub fn replayed_steps(&self) -> u64 {
        self.core.replayed_steps
    }

    /// Enables Sec 6.2's transformation reordering: each loader applies
    /// only the transfer-optimal prefix of its pipeline (raw JPEG stays
    /// encoded, video keeps only keyframes) and the Data Constructor runs
    /// the deferred tail after the pop — shrinking loader → constructor
    /// traffic at the cost of constructor-side CPU.
    pub fn enable_transform_reordering(&mut self) {
        self.transform_reorder = true;
        for l in &mut self.loaders {
            let idx = {
                let loader = l.primary();
                let spec = self
                    .config
                    .catalog
                    .get(loader.source())
                    .expect("loader sources come from the catalog");
                spec.pipeline().min_transfer_index()
            };
            l.primary().set_transform_split(Some(idx));
        }
    }

    /// Whether transformation reordering is active.
    pub fn transform_reordering(&self) -> bool {
        self.transform_reorder
    }

    /// Number of loader actors.
    pub fn loader_count(&self) -> usize {
        self.loaders.len()
    }

    /// Access to the planner (strategy inspection, resharding, history).
    pub fn planner(&mut self) -> &mut Planner {
        self.core.planner()
    }

    /// Access to a loader (fault-injection hooks in tests).
    pub fn loader(&mut self, idx: usize) -> &mut ShadowedLoader {
        &mut self.loaders[idx]
    }

    /// Executes one full pipeline step.
    pub fn step(&mut self) -> Result<StepOutput, DGraphError> {
        // Loaders refill their buffers (prefetch).
        let per_loader_target =
            (self.config.planner.samples_per_step / self.loaders.len().max(1)).max(4) * 2;
        let mut loader_ns = 0u64;
        for l in &mut self.loaders {
            let spent = l
                .primary()
                .refill(per_loader_target)
                .expect("synthetic/stored refill");
            loader_ns = loader_ns.max(spent);
        }

        // Planner gathers summaries and synthesizes the plan (via the
        // shared core, so replay adoption works identically to the
        // threaded deployment).
        let info = BufferInfo::new(
            self.loaders
                .iter_mut()
                .map(|l| l.primary().summary())
                .collect(),
        );
        let outcome = self.core.synthesize(&info)?;
        let (plan, phases) = (outcome.plan, outcome.phases);

        // Loaders pop planned samples. Shipped bytes are measured here —
        // post-pop, pre-deferred-tail — because this is the payload that
        // actually crosses the loader → constructor link.
        let mut popped = HashMap::new();
        let mut ship_bytes = 0u64;
        let mut tails: HashMap<msd_data::SourceId, msd_data::TransformPipeline> = HashMap::new();
        for l in &mut self.loaders {
            let id = l.primary().id();
            if let Some(ids) = plan.directives.get(&id) {
                for s in l.primary().pop(ids) {
                    ship_bytes += s.payload.len() as u64;
                    popped.insert(s.meta.sample_id, s);
                }
            }
            if let Some(tail) = l.primary().deferred_pipeline() {
                tails.entry(l.primary().source()).or_insert(tail);
            }
            l.after_plan(plan.step);
        }

        // Deferred transforms run at the constructor (transformation
        // reordering, Sec 6.2): per-bucket tail cost adds to the slowest
        // constructor's assembly time.
        let mut constructor_ns = 0u64;
        if self.transform_reorder && !tails.is_empty() {
            let mut per_bucket_tail = vec![0u64; plan.buckets.len()];
            for (b, bp) in plan.buckets.iter().enumerate() {
                for bin in &bp.bins {
                    for id in &bin.samples {
                        if let Some(s) = popped.get_mut(id) {
                            if let Some(tail) = tails.get(&s.meta.source) {
                                per_bucket_tail[b] += tail.cost_ns(&s.meta);
                                tail.apply(s);
                            }
                        }
                    }
                }
            }
            constructor_ns = per_bucket_tail.into_iter().max().unwrap_or(0);
        }
        let batches: Vec<ConstructedBatch> = plan
            .buckets
            .iter()
            .map(|bp| {
                let c = &self.constructors
                    [PipelineCore::constructor_index(bp.bucket, self.constructors.len())];
                let batch = c.construct(bp, &popped, &plan.broadcast_axes);
                // Assembly cost model: linear in padded tokens (memcpy-ish,
                // ~1 ns per 16 tokens per core) plus delivery transfers.
                let tokens: u64 = batch.microbatches.iter().map(|m| m.padded_tokens()).sum();
                let delivery_bytes: u64 = batch.deliveries.iter().map(|d| d.bytes).sum();
                constructor_ns = constructor_ns.max(
                    tokens / 16
                        + msd_sim::NetModel::default()
                            .transfer(delivery_bytes)
                            .as_nanos(),
                );
                batch
            })
            .collect();

        // Autoscaler observes the realized mixture.
        if let Some(scaler) = &mut self.autoscaler {
            let weights = self.config.planner.schedule.weights(plan.step);
            scaler.observe(&weights);
        }

        let fetch_ns = loader_ns + phases.total_ns() + constructor_ns;
        let metas = popped.iter().map(|(id, s)| (*id, s.meta)).collect();
        Ok(StepOutput {
            plan,
            phases,
            batches,
            metas,
            loader_ns,
            constructor_ns,
            fetch_ns,
            ship_bytes,
        })
    }

    /// Current memory accounting across components, by category.
    pub fn memory_report(&mut self) -> MemoryMeter {
        let mut meter = MemoryMeter::new();
        let mut source_state = 0u64;
        let mut buffers_and_ctx = 0u64;
        let mut shadow = 0u64;
        for l in &mut self.loaders {
            let access = l.shadow_memory_bytes(); // Same as primary's state.
            let total = l.primary().memory_bytes();
            source_state += access;
            buffers_and_ctx += total - access;
            if self.config.shadow_loaders > 0 {
                shadow += u64::from(self.config.shadow_loaders) * access;
            }
        }
        meter.alloc("source_state", source_state);
        meter.alloc("worker_and_buffer", buffers_and_ctx);
        if shadow > 0 {
            meter.alloc("shadow", shadow);
        }
        // Constructor resident batches: bounded by one in-flight batch per
        // bucket; approximate with samples_per_step × mean payload.
        meter.alloc(
            "constructor",
            (self.config.planner.samples_per_step as u64) * 4096,
        );
        meter.alloc("planner_metadata", 64 << 20);
        meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_balance::{BackboneShape, BalanceMethod};
    use msd_data::catalog::coyo700m_like;
    use msd_mesh::{Axis, DistributeAxis};

    use crate::schedule::MixSchedule;

    fn config() -> MsdConfig {
        let mut rng = SimRng::seed(3);
        let catalog = coyo700m_like(&mut rng);
        let n = catalog.len();
        MsdConfig {
            catalog,
            mesh: DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).unwrap(),
            strategy: Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: BackboneShape {
                    layers: 4,
                    hidden: 256,
                    mlp_ratio: 4.0,
                    heads: 4,
                    vocab: 1000,
                    experts_per_token: 1,
                },
            },
            planner: PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 64,
                schedule: MixSchedule::uniform(n),
            },
            max_seq_len: 8192,
            resources: ClusterResources {
                total_cores: 64,
                total_mem_bytes: 1 << 40,
            },
            partition: PartitionOpts::default(),
            shadow_loaders: 1,
            buffer_capacity: 256,
            seed: 42,
        }
    }

    #[test]
    fn pipeline_delivers_batches_end_to_end() {
        let mut msd = MegaScaleData::new(config());
        assert!(msd.loader_count() >= 5); // At least one per source.
        let out = msd.step().unwrap();
        assert_eq!(out.plan.all_samples().len(), 64);
        assert_eq!(out.batches.len(), 4); // DP=4 buckets.
                                          // Every scheduled sample landed in a constructed microbatch.
        let constructed: usize = out
            .batches
            .iter()
            .flat_map(|b| &b.microbatches)
            .flat_map(|m| &m.sequences)
            .map(|s| s.segments.len())
            .sum();
        assert_eq!(constructed, 64);
        assert!(out.fetch_ns > 0);
    }

    #[test]
    fn steps_are_reproducible_across_instances() {
        let mut a = MegaScaleData::new(config());
        let mut b = MegaScaleData::new(config());
        for _ in 0..3 {
            let oa = a.step().unwrap();
            let ob = b.step().unwrap();
            assert_eq!(oa.plan.all_samples(), ob.plan.all_samples());
        }
    }

    #[test]
    fn successive_steps_consume_fresh_samples() {
        let mut msd = MegaScaleData::new(config());
        let s1: std::collections::HashSet<u64> =
            msd.step().unwrap().plan.all_samples().into_iter().collect();
        let s2: std::collections::HashSet<u64> =
            msd.step().unwrap().plan.all_samples().into_iter().collect();
        assert!(s1.is_disjoint(&s2));
    }

    #[test]
    fn memory_report_is_dominated_by_source_state() {
        // The Fig 4 observation: with moderate batch sizes, per-source
        // access states dominate loader memory.
        let mut msd = MegaScaleData::new(config());
        msd.step().unwrap();
        let report = msd.memory_report();
        assert!(report.category_share("source_state") > 0.3);
        assert!(report.total() > 0);
    }

    #[test]
    fn transform_reordering_shrinks_shipped_bytes() {
        // Image-heavy catalog: deferring decode past the pop keeps payloads
        // JPEG-sized on the loader → constructor link.
        let mut baseline = MegaScaleData::new(config());
        let mut reordered = MegaScaleData::new(config());
        reordered.enable_transform_reordering();
        assert!(reordered.transform_reordering());

        let b = baseline.step().unwrap();
        let r = reordered.step().unwrap();
        assert_eq!(b.plan.all_samples().len(), r.plan.all_samples().len());
        assert!(
            r.ship_bytes * 2 < b.ship_bytes,
            "reordered {} vs baseline {}",
            r.ship_bytes,
            b.ship_bytes
        );
        // The deferred tail shows up as constructor-side work.
        assert!(r.constructor_ns > b.constructor_ns);
        // Deliveries still carry decoded payloads: the constructed batches'
        // payload bytes match between the two pipelines.
        let payload = |out: &StepOutput| -> u64 {
            out.batches
                .iter()
                .flat_map(|b| &b.microbatches)
                .map(|m| m.payload_bytes)
                .sum()
        };
        // Same plan → same samples; decoded sizes are deterministic.
        assert_eq!(b.plan.all_samples(), r.plan.all_samples());
        assert_eq!(payload(&b), payload(&r));
    }

    #[test]
    fn failover_mid_run_preserves_stream() {
        let mut msd = MegaScaleData::new(config());
        for _ in 0..3 {
            msd.step().unwrap();
        }
        // Kill loader 0 and promote its shadow using planner history.
        let history: Vec<LoadingPlan> = msd.planner().history().to_vec();
        let refs: Vec<&LoadingPlan> = history.iter().collect();
        msd.loader(0).kill_primary();
        let report = msd
            .loader(0)
            .promote_shadow(crate::fault::FailureSignal::RpcTimeout, &refs);
        assert!(report.replayed_plans > 0);
        // Pipeline continues.
        let out = msd.step().unwrap();
        assert_eq!(out.plan.all_samples().len(), 64);
    }
}
