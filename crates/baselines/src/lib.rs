//! Architectural models of baseline dataloader systems.
//!
//! Fig 12 compares MegaScale-Data against five baselines spanning local
//! (PyTorch DataLoader, tf.data), remote (Cachew, Ray Data), and hybrid
//! (Pecan) processing. What determines their measured iteration time,
//! fetch latency, and memory per node is *architecture*, not
//! implementation polish:
//!
//! - **where loader instances live** (colocated per-rank clones vs. remote
//!   workers) and therefore how many copies of per-source file access
//!   states exist;
//! - **parallelism awareness** (none of them share loads across CP/PP
//!   ranks — each rank's loader independently fetches full batches);
//! - **worker sizing** (all must provision for the slowest source's
//!   transformation cost to avoid stalls).
//!
//! [`LoaderSystem`] captures those levers; each baseline fills them in
//! with its published design. [`DirectTransfer`] is the Fig 20 ablation
//! (MegaScale-Data without Data Constructors).

pub mod model;
pub mod systems;

pub use model::{ClusterShape, LoaderSystem, SystemReport, WorkloadShape};
pub use systems::{
    fig12_systems, Cachew, DirectTransfer, MsdArchitecture, Pecan, RayData, TfDataService,
    TorchDataLoader,
};
