//! Cross-transport conformance suite plus TCP adversarial cases.
//!
//! Conformance: the gap-free / duplicate-free / byte-identical serving
//! assertions (shared with `distributed_serve.rs` through `harness/`)
//! run over *every* transport — Loopback, lossy Sim, and real TCP
//! sockets — against the same local-serve reference. A transport is
//! correct exactly when it is invisible.
//!
//! Adversarial TCP: the byte-stream edge cases a datagram-shaped
//! protocol meets on a real socket — frames split at every byte
//! boundary, a connection killed mid-stream (reconnect + resume from
//! the client's cursor), in-frame garbage (skipped like a lost
//! datagram), and desynchronizing garbage (oversized length prefix →
//! `NetError::Corrupt`, connection torn down).

mod harness;

use std::collections::HashSet;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use harness::{
    assert_byte_identical, assert_ordered_full, local_streams, opts, pipeline, placements,
    remote_streams, sample_ids, Stream,
};
use megascale_data::core::codec::encode_wire_frame;
use megascale_data::core::system::net::{
    BatchPayload, LoopbackTransport, NetError, SimTransport, Transport, WireConn, WireFrame,
};
use megascale_data::core::system::tcp::{wire_conn, TcpTransport};
use megascale_data::sim::NetModel;

const RECV: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------
// Conformance: one reference, every transport, the same assertions.

#[test]
fn every_transport_serves_byte_identical_to_local() {
    let (clients, steps, seed) = (4u32, 5u64, 21u64);
    let reference = local_streams(seed, clients, steps);
    assert_ordered_full(&reference, steps);
    let transports: Vec<Arc<dyn Transport>> = vec![
        Arc::new(LoopbackTransport),
        Arc::new(SimTransport::new(NetModel::default(), 0.2, 7)),
        Arc::new(TcpTransport::new().expect("bind tcp transport")),
    ];
    for transport in transports {
        let label = transport.name();
        let streams = remote_streams(transport, seed, clients, steps);
        assert_ordered_full(&streams, steps);
        assert_byte_identical(&reference, &streams, label);
    }
}

#[test]
fn tcp_client_killed_mid_stream_resumes_from_cursor() {
    let (clients, steps) = (2u32, 8u64);
    let mut p = pipeline(63);
    let transport = Arc::new(TcpTransport::new().expect("bind tcp transport"));
    let (session, handle) =
        p.serve_distributed(opts(clients, steps), transport, &placements(clients));

    // Client 1 consumes its whole stream normally, in parallel.
    let mut peer = handle.connect(1);
    let peer_thread = std::thread::spawn(move || {
        let mut stream = Stream::new();
        while let Some(item) = peer.next() {
            stream.push(item);
        }
        stream
    });

    // Client 0 consumes three steps over a real socket, then its
    // connection is killed (socket shut down, no Close — a crash, not a
    // goodbye) and it must redial and resume from its cursor.
    let mut victim = handle.connect(0);
    let mut stream = Stream::new();
    for _ in 0..3 {
        stream.push(victim.next().expect("pre-kill pull"));
    }
    victim.disconnect();
    while let Some(item) = victim.next() {
        stream.push(item);
    }
    assert!(victim.reconnects() >= 1, "the kill was never observed");

    let peer_stream = peer_thread.join().expect("peer thread");
    assert_eq!(session.join(), steps, "driver fell short");

    // Same assertions as loopback: gap-free, in order, duplicate-free
    // down to individual samples.
    for (streams, who) in [(&stream, "victim"), (&peer_stream, "peer")] {
        assert_eq!(streams.len(), steps as usize, "{who} missed steps");
        let mut seen: HashSet<u64> = HashSet::new();
        for (i, (step, batch)) in streams.iter().enumerate() {
            assert_eq!(*step, i as u64, "{who} stream has a gap");
            for sid in sample_ids(batch) {
                assert!(seen.insert(sid), "{who} got sample {sid} twice");
            }
        }
    }

    let status = handle.status().expect("server status");
    let victim_stat = status.clients.iter().find(|c| c.client == 0).unwrap();
    assert!(victim_stat.resumes >= 1, "server never saw a re-subscribe");
    assert!(victim_stat.done, "victim's stream not finished");
    p.shutdown();
}

// ---------------------------------------------------------------------
// Adversarial byte streams against a raw socket.

/// One frame as it travels on a TCP connection: length prefix + body.
fn framed(frame: &WireFrame) -> Vec<u8> {
    let body = encode_wire_frame(frame);
    let mut out = (body.len() as u32).to_le_bytes().to_vec();
    out.extend(body);
    out
}

/// A raw writable socket on one end, a frame-level endpoint on the
/// other — the adversary writes bytes, the transport must make frames.
fn raw_pair() -> (TcpStream, WireConn) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let raw = TcpStream::connect(addr).expect("connect");
    raw.set_nodelay(true).expect("nodelay");
    let (accepted, _) = listener.accept().expect("accept");
    (raw, wire_conn(accepted).expect("wire conn"))
}

#[test]
fn frames_reassemble_from_single_byte_writes() {
    let (mut raw, conn) = raw_pair();
    // A large batch frame among small control frames: thousands of
    // one-byte writes, every frame boundary and every intra-frame
    // boundary exercised.
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
    let frames = vec![
        WireFrame::Hello { client: 1, rank: 2 },
        WireFrame::Batch {
            client: 1,
            step: 0,
            payload: BatchPayload::Encoded(bytes::Bytes::from(payload)),
        },
        WireFrame::Ack { client: 1, step: 0 },
        WireFrame::Frontier {
            client: 1,
            consumed: 1,
        },
        WireFrame::Close { client: 1 },
    ];
    let wire: Vec<u8> = frames.iter().flat_map(framed).collect();
    let writer = std::thread::spawn(move || {
        for byte in wire {
            raw.write_all(&[byte]).expect("byte write");
            raw.flush().expect("byte flush");
        }
        raw
    });
    let mut rx = conn.rx;
    for want in &frames {
        assert_eq!(&rx.recv(RECV).expect("reassembled frame"), want);
    }
    drop(writer.join().expect("writer"));
    assert_eq!(rx.recv(Duration::from_millis(200)), Err(NetError::Closed));
}

#[test]
fn every_two_chunk_split_reassembles() {
    let (mut raw, conn) = raw_pair();
    let frame = WireFrame::Subscribe {
        client: 9,
        from_step: 1234,
        credits: 8,
    };
    let one = framed(&frame);
    // Send the frame once per possible split point, pausing at the
    // split so the reader observes a genuine partial read there.
    for cut in 0..=one.len() {
        raw.write_all(&one[..cut]).expect("first chunk");
        raw.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
        raw.write_all(&one[cut..]).expect("second chunk");
        raw.flush().expect("flush");
    }
    let mut rx = conn.rx;
    for cut in 0..=one.len() {
        assert_eq!(
            rx.recv(RECV).expect("split frame"),
            frame,
            "frame split at byte {cut} did not reassemble"
        );
    }
}

#[test]
fn in_frame_garbage_is_skipped_like_a_lost_datagram() {
    let (mut raw, conn) = raw_pair();
    let first = WireFrame::Hello { client: 4, rank: 0 };
    let second = WireFrame::Ack { client: 4, step: 9 };
    raw.write_all(&framed(&first)).expect("first frame");
    // A correctly *delimited* frame whose body is garbage: the length
    // prefix keeps the stream in sync, so the transport must drop just
    // this frame and carry on.
    let garbage = [0xABu8; 37];
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .expect("garbage prefix");
    raw.write_all(&garbage).expect("garbage body");
    raw.write_all(&framed(&second)).expect("second frame");
    raw.flush().expect("flush");
    let mut rx = conn.rx;
    assert_eq!(rx.recv(RECV).expect("first"), first);
    assert_eq!(rx.recv(RECV).expect("second"), second, "garbage desynced");
}

#[test]
fn oversized_length_prefix_kills_the_connection() {
    let (mut raw, conn) = raw_pair();
    let first = WireFrame::Hello { client: 2, rank: 1 };
    raw.write_all(&framed(&first)).expect("first frame");
    // Trailing garbage that cannot be a frame boundary: 0xFF... reads
    // as a ~4GiB length prefix, far past MAX_FRAME_LEN. The stream is
    // unrecoverable — the transport must refuse to allocate, surface
    // Corrupt once, and die.
    raw.write_all(&[0xFFu8; 64]).expect("trailing garbage");
    raw.flush().expect("flush");
    let mut rx = conn.rx;
    assert_eq!(rx.recv(RECV).expect("pre-garbage frame"), first);
    assert_eq!(rx.recv(RECV), Err(NetError::Corrupt));
    assert_eq!(rx.recv(RECV), Err(NetError::Closed));
}
