//! Fig 19 — Cost-model fidelity and clustering-size impact.
//!
//! Left: the analytic encoder/backbone cost models against "measured"
//! per-step latencies (the trainer model plus realistic execution noise)
//! over 200 steps. Right: the source-clustering size G ∈ {3,4,5} trade-off
//! between provisioned CPU and AutoScaler rescale frequency under a
//! drifting mixture — the paper picks G = 4.

use msd_bench::{banner, table_header, table_row};
use msd_core::autoscale::{partition_sources, AutoScaler, ClusterResources, PartitionOpts};
use msd_data::catalog::navit_sized;
use msd_sim::SimRng;
use msd_train::models::{vit_2b, vlm_preset};
use msd_train::GpuSpec;

fn main() {
    banner(
        "Figure 19",
        "Cost-model fidelity and clustering-size impact",
    );
    let mut rng = SimRng::seed(19);
    let gpu = GpuSpec::l20();
    let model = vlm_preset("ViT-2B", "Llama-12B");
    let encoder = vit_2b();

    // Left panel: predicted vs measured per step.
    println!("\ncost-model fidelity over steps:");
    table_header(&[
        "step",
        "enc_real_ms",
        "enc_cost_ms",
        "bb_real_s",
        "bb_cost_s",
    ]);
    let mut enc_err = 0.0f64;
    let mut bb_err = 0.0f64;
    let steps = 200u32;
    let catalog = navit_sized(&mut rng, 64);
    for step in 1..=steps {
        // Sample a batch of images/sequences for this step.
        let mut patches = 0u64;
        let mut tokens = 0u64;
        for i in 0..64u64 {
            let spec = &catalog.sources()[(step as usize * 13 + i as usize) % catalog.len()];
            let m = spec.sample_meta(&mut rng, u64::from(step) * 64 + i);
            patches += u64::from(m.image_patches);
            tokens += m.total_tokens();
        }
        let enc_cost_ms = encoder.flops(patches / 64) * 64.0 / gpu.sustained_flops() * 1e3;
        // One-layer backbone fidelity probe, like the paper's validation.
        let one_layer = msd_balance::BackboneShape {
            layers: 1,
            ..model.backbone
        };
        let bb_cost_s = one_layer.flops(tokens) / gpu.sustained_flops();
        // "Measured": the same quantity with execution noise (kernel
        // launches, caching effects) of ~±6%.
        let enc_real_ms = enc_cost_ms * (1.0 + rng.normal() * 0.06);
        let bb_real_s = bb_cost_s * (1.0 + rng.normal() * 0.06);
        enc_err += ((enc_real_ms - enc_cost_ms) / enc_real_ms).abs();
        bb_err += ((bb_real_s - bb_cost_s) / bb_real_s).abs();
        if step % 50 == 0 {
            table_row(&[
                step.to_string(),
                format!("{enc_real_ms:.0}"),
                format!("{enc_cost_ms:.0}"),
                format!("{bb_real_s:.2}"),
                format!("{bb_cost_s:.2}"),
            ]);
        }
    }
    println!(
        "mean relative error: encoder {:.1}%, backbone {:.1}%   [paper: predictions closely track]",
        enc_err / f64::from(steps) * 100.0,
        bb_err / f64::from(steps) * 100.0
    );

    // Right panel: clustering size vs CPU usage and rescale frequency.
    println!("\nclustering-size trade-off (drifting mixture, 200 steps):");
    table_header(&["G", "cpu_cores", "rescales", "rescale_ratio"]);
    let resources = ClusterResources {
        total_cores: 2048,
        total_mem_bytes: 16 << 40,
    };
    let mut base_rescales = 0u64;
    for g in [3usize, 4, 5] {
        let mut rng = SimRng::seed(1900 + g as u64);
        let catalog = navit_sized(&mut rng, 128);
        let setups = partition_sources(
            &catalog,
            resources,
            &PartitionOpts {
                clusters: g,
                ..PartitionOpts::default()
            },
            &mut rng,
        );
        let cores: u64 = setups.iter().map(|s| u64::from(s.total_workers())).sum();
        let mut scaler = AutoScaler::new(setups);
        // Drifting mixture: weight mass slowly rotates across sources.
        let n = catalog.len();
        for step in 0..200u64 {
            let hot = (step / 20) as usize % n;
            let mut w = vec![0.5 / n as f64; n];
            w[hot] += 0.5;
            scaler.observe(&w);
        }
        if g == 3 {
            base_rescales = scaler.rescale_events.max(1);
        }
        table_row(&[
            g.to_string(),
            cores.to_string(),
            scaler.rescale_events.to_string(),
            format!(
                "{:.1}x",
                scaler.rescale_events as f64 / base_rescales as f64
            ),
        ]);
    }
    println!("[paper: G=4 balances CPU usage against rescale frequency]");
}
