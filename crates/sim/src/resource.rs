//! Counted resources and hierarchical memory accounting.
//!
//! [`ResourcePool`] models fungible resources such as CPU cores on a pod:
//! the AutoScaler experiments (Fig 19) allocate and release worker cores
//! against pools. [`MemoryMeter`] is the measurement backbone for every
//! memory figure (Fig 4, 12, 16, 17): components register labeled,
//! categorized allocations and the meter tracks per-category totals and the
//! global peak.

use std::collections::HashMap;

/// Error returned when a pool cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhausted {
    /// Units requested.
    pub requested: u64,
    /// Units currently available.
    pub available: u64,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "resource exhausted: requested {} but only {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for Exhausted {}

/// A counted pool of identical resource units (e.g. CPU cores).
#[derive(Debug, Clone)]
pub struct ResourcePool {
    name: String,
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl ResourcePool {
    /// Creates a pool with the given capacity.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        ResourcePool {
            name: name.into(),
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Pool name, used in reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in units.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Units currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Units still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// High-water mark of allocation.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Fraction of the pool currently allocated, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.in_use as f64 / self.capacity as f64
    }

    /// Attempts to allocate `units`, failing without side effects if the
    /// pool lacks capacity.
    pub fn try_alloc(&mut self, units: u64) -> Result<(), Exhausted> {
        if units > self.available() {
            return Err(Exhausted {
                requested: units,
                available: self.available(),
            });
        }
        self.in_use += units;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `units` back to the pool, saturating at zero.
    pub fn release(&mut self, units: u64) {
        self.in_use = self.in_use.saturating_sub(units);
    }

    /// Grows the pool capacity (elastic scale-out).
    pub fn grow(&mut self, units: u64) {
        self.capacity += units;
    }

    /// Shrinks capacity; in-use units are never revoked, so the effective
    /// capacity cannot drop below the current allocation.
    pub fn shrink(&mut self, units: u64) {
        self.capacity = self.capacity.saturating_sub(units).max(self.in_use);
    }
}

/// Identifies a live allocation inside a [`MemoryMeter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// Hierarchical memory accounting.
///
/// Allocations carry a `category` (e.g. `"source_state"`, `"batch_buffer"`,
/// `"worker_ctx"`) so reports can break memory down the way Fig 4 does
/// (source-related vs. everything else).
///
/// # Examples
///
/// ```
/// use msd_sim::MemoryMeter;
///
/// let mut m = MemoryMeter::new();
/// let a = m.alloc("source_state", 512 << 20);
/// let b = m.alloc("batch_buffer", 128 << 20);
/// assert_eq!(m.total(), 640 << 20);
/// assert_eq!(m.category_total("source_state"), 512 << 20);
/// m.free(a);
/// assert_eq!(m.total(), 128 << 20);
/// let _ = b;
/// ```
#[derive(Debug, Default, Clone)]
pub struct MemoryMeter {
    next_id: u64,
    live: HashMap<u64, (String, u64)>,
    by_category: HashMap<String, u64>,
    total: u64,
    peak: u64,
}

impl MemoryMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an allocation of `bytes` under `category`.
    pub fn alloc(&mut self, category: &str, bytes: u64) -> AllocId {
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (category.to_string(), bytes));
        *self.by_category.entry(category.to_string()).or_insert(0) += bytes;
        self.total += bytes;
        self.peak = self.peak.max(self.total);
        AllocId(id)
    }

    /// Releases a previously registered allocation. Double-frees are no-ops.
    pub fn free(&mut self, id: AllocId) {
        if let Some((cat, bytes)) = self.live.remove(&id.0) {
            if let Some(c) = self.by_category.get_mut(&cat) {
                *c = c.saturating_sub(bytes);
            }
            self.total = self.total.saturating_sub(bytes);
        }
    }

    /// Adjusts an existing allocation to a new size (e.g. a growing buffer).
    pub fn resize(&mut self, id: AllocId, new_bytes: u64) {
        let Some((cat, bytes)) = self.live.get_mut(&id.0) else {
            return;
        };
        let old = *bytes;
        *bytes = new_bytes;
        let cat = cat.clone();
        let c = self.by_category.entry(cat).or_insert(0);
        *c = c.saturating_sub(old) + new_bytes;
        self.total = self.total.saturating_sub(old) + new_bytes;
        self.peak = self.peak.max(self.total);
    }

    /// Current total live bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Peak total live bytes observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Current live bytes in a category.
    pub fn category_total(&self, category: &str) -> u64 {
        self.by_category.get(category).copied().unwrap_or(0)
    }

    /// Iterates `(category, live_bytes)` pairs in unspecified order.
    pub fn categories(&self) -> impl Iterator<Item = (&str, u64)> {
        self.by_category.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fraction of current memory attributable to `category`, in `[0, 1]`.
    pub fn category_share(&self, category: &str) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.category_total(category) as f64 / self.total as f64
    }

    /// Merges another meter's *current* totals into this one (used to roll
    /// per-node meters up to a cluster view). Live allocation ids are not
    /// transferred; the merge is additive and categorical.
    pub fn absorb(&mut self, other: &MemoryMeter) {
        for (cat, bytes) in other.categories() {
            *self.by_category.entry(cat.to_string()).or_insert(0) += bytes;
            self.total += bytes;
        }
        self.peak = self.peak.max(self.total);
    }
}

/// Pretty-prints bytes with binary units.
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 6] = ["B", "KiB", "MiB", "GiB", "TiB", "PiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.2}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_alloc_release_cycle() {
        let mut p = ResourcePool::new("cpu", 10);
        assert!(p.try_alloc(4).is_ok());
        assert!(p.try_alloc(6).is_ok());
        assert_eq!(p.available(), 0);
        assert_eq!(
            p.try_alloc(1),
            Err(Exhausted {
                requested: 1,
                available: 0
            })
        );
        p.release(5);
        assert_eq!(p.available(), 5);
        assert_eq!(p.peak(), 10);
        assert!((p.utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pool_grow_shrink() {
        let mut p = ResourcePool::new("cpu", 4);
        p.try_alloc(3).unwrap();
        p.grow(4);
        assert_eq!(p.capacity(), 8);
        p.shrink(10);
        // Cannot shrink below current allocation.
        assert_eq!(p.capacity(), 3);
    }

    #[test]
    fn pool_release_saturates() {
        let mut p = ResourcePool::new("cpu", 4);
        p.try_alloc(2).unwrap();
        p.release(100);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn meter_tracks_categories_and_peak() {
        let mut m = MemoryMeter::new();
        let a = m.alloc("source_state", 100);
        let _b = m.alloc("source_state", 50);
        let c = m.alloc("batch_buffer", 30);
        assert_eq!(m.total(), 180);
        assert_eq!(m.category_total("source_state"), 150);
        assert!((m.category_share("source_state") - 150.0 / 180.0).abs() < 1e-12);
        m.free(a);
        m.free(c);
        assert_eq!(m.total(), 50);
        assert_eq!(m.peak(), 180);
        // Double free is a no-op.
        m.free(a);
        assert_eq!(m.total(), 50);
    }

    #[test]
    fn meter_resize() {
        let mut m = MemoryMeter::new();
        let a = m.alloc("buf", 10);
        m.resize(a, 100);
        assert_eq!(m.total(), 100);
        m.resize(a, 5);
        assert_eq!(m.total(), 5);
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn meter_absorb_rolls_up() {
        let mut node0 = MemoryMeter::new();
        node0.alloc("source_state", 100);
        let mut node1 = MemoryMeter::new();
        node1.alloc("source_state", 40);
        node1.alloc("batch_buffer", 60);
        let mut cluster = MemoryMeter::new();
        cluster.absorb(&node0);
        cluster.absorb(&node1);
        assert_eq!(cluster.total(), 200);
        assert_eq!(cluster.category_total("source_state"), 140);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.00KiB");
        assert_eq!(fmt_bytes(3 << 30), "3.00GiB");
    }
}
