//! Fig 3 — Computational imbalance across microbatches.
//!
//! Reproduces the 8-GPU VLM trial: encoder data parallel (EDP = 8) for
//! images, hybrid DP=4 × TP=2 for the backbone, 4 microbatches. Prints the
//! image-FLOPs heatmap over EDP ranks and the token-FLOPs heatmap over DP
//! ranks, with the max/min imbalance factors the paper annotates
//! (3.2× image, 6.9× token).

use std::collections::HashMap;

use msd_bench::{banner, table_header, table_row};
use msd_core::planner::Strategy;
use msd_data::catalog::navit_like;
use msd_mesh::DeviceMesh;
use msd_sim::SimRng;
use msd_train::models::{vit_1b, vlm_preset};

fn main() {
    banner(
        "Figure 3",
        "Computational imbalance across microbatches (8-GPU VLM trial)",
    );
    let mut rng = SimRng::seed(42);
    let catalog = navit_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 4, 1, 2).unwrap(); // 8 GPUs
    let model = vlm_preset("ViT-1B", "Llama-12B");

    let scenario = msd_bench::Scenario {
        mesh: mesh.clone(),
        model: model.clone(),
        ctx: 8192,
        microbatches: 4,
        samples_per_step: 128,
        catalog,
    };
    let mut msd = scenario.pipeline(Strategy::Vanilla, 7);
    let out = msd.step().expect("step");
    let metas: &HashMap<u64, msd_data::SampleMeta> = &out.metas;

    // (a) Image FLOPs heatmap: images round-robin over 8 EDP ranks in
    // arrival order (no balancing), 4 "microbatch" slots each.
    let encoder = vit_1b();
    let mut edp = vec![vec![0.0f64; 4]; 8];
    let mut r = 0usize;
    let mut mbslot = 0usize;
    for id in out.plan.all_samples() {
        if let Some(m) = metas.get(&id) {
            if m.image_patches > 0 {
                edp[r % 8][mbslot % 4] += encoder.flops_sample(u64::from(m.image_patches));
                r += 1;
                if r % 8 == 0 {
                    mbslot += 1;
                }
            }
        }
    }
    println!("\n(a) Image FLOPs heatmap (rows = EDP ranks, cols = microbatches), 1e12 FLOPs:");
    table_header(&["rank", "MB#0", "MB#1", "MB#2", "MB#3"]);
    let mut img_max: f64 = 0.0;
    let mut img_min = f64::INFINITY;
    for (rank, row) in edp.iter().enumerate() {
        for v in row {
            if *v > 0.0 {
                img_max = img_max.max(*v);
                img_min = img_min.min(*v);
            }
        }
        table_row(&[
            format!("EDP{rank}"),
            format!("{:.2}", row[0] / 1e12),
            format!("{:.2}", row[1] / 1e12),
            format!("{:.2}", row[2] / 1e12),
            format!("{:.2}", row[3] / 1e12),
        ]);
    }
    println!(
        "image imbalance (max/min): {:.1}x   [paper: 3.2x]",
        img_max / img_min
    );

    // (b) Token FLOPs heatmap over DP ranks × microbatches from the plan.
    println!("\n(b) Token FLOPs heatmap (rows = DP ranks, cols = microbatches), 1e13 FLOPs:");
    table_header(&["rank", "MB#0", "MB#1", "MB#2", "MB#3"]);
    let mut tok_max: f64 = 0.0;
    let mut tok_min = f64::INFINITY;
    for bucket in &out.plan.buckets {
        let mut cells = vec![format!("DP{}", bucket.bucket)];
        for bin in &bucket.bins {
            let flops: f64 = bin
                .samples
                .iter()
                .filter_map(|id| metas.get(id))
                .map(|m| model.backbone.flops(m.total_tokens()))
                .sum();
            tok_max = tok_max.max(flops);
            tok_min = tok_min.min(flops);
            cells.push(format!("{:.2}", flops / 1e13));
        }
        table_row(&cells);
    }
    println!(
        "token imbalance (max/min): {:.1}x   [paper: 6.9x]",
        tok_max / tok_min
    );
}
