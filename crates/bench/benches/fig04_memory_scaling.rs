//! Fig 4 — Orthogonal memory scaling by source and worker counts.
//!
//! A parallelism-unaware loader worker holds one file access state per
//! source; memory therefore grows along two orthogonal axes — sources per
//! worker and worker count — and with a moderate per-DP batch, the
//! source-related share exceeds 70% of loader memory.

use msd_bench::{banner, gib, table_header, table_row};
use msd_data::catalog::navit_sized;
use msd_sim::SimRng;

/// Per-worker execution context + prefetch slots.
const WORKER_CTX: u64 = 200 << 20;
/// Batch buffer per worker at a moderate per-DP batch size.
const BATCH_BUFFER: u64 = 2 << 30;

fn main() {
    banner(
        "Figure 4",
        "Orthogonal memory scaling by source and worker counts",
    );
    let mut rng = SimRng::seed(11);

    println!("\nWorker memory = sources x access_state + ctx + batch buffer:");
    table_header(&["workers", "sources", "total_GiB", "src_share_%"]);
    for workers in [1u64, 2, 4, 8] {
        for n_sources in [8u32, 64, 306] {
            let cat = navit_sized(&mut rng, n_sources);
            let src_bytes: u64 = cat.total_access_state_bytes();
            let per_worker = src_bytes + WORKER_CTX + BATCH_BUFFER;
            let total = workers * per_worker;
            let src_share = (workers * src_bytes) as f64 / total as f64 * 100.0;
            table_row(&[
                workers.to_string(),
                n_sources.to_string(),
                gib(total),
                format!("{src_share:.1}"),
            ]);
        }
    }

    // The paper's observation: source state > 70% of memory at production
    // source counts.
    let cat = navit_sized(&mut rng, 306);
    let src = cat.total_access_state_bytes();
    let share = src as f64 / (src + WORKER_CTX + BATCH_BUFFER) as f64;
    println!(
        "\nsource-related share at 306 sources: {:.1}%   [paper: >70%]",
        share * 100.0
    );
    assert!(share > 0.7, "source share should dominate");
}
