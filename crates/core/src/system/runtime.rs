//! Threaded actor deployment of the pipeline.
//!
//! The synchronous components in [`crate::system`] are deterministic and
//! drive the simulations; this module deploys the *same* Source Loader
//! component inside [`msd_actor`] actors, with the Planner on the caller
//! thread — the shape the paper runs on Ray. Loader failures surface as
//! `ask` timeouts/dead errors, and supervised restarts rebuild loaders
//! from their latest GCS checkpoint.

use std::collections::HashMap;
use std::time::Duration;

use msd_actor::actor::ReplyTo;
use msd_actor::{Actor, ActorRef, ActorSystem, Ctx, Gcs, RestartPolicy};
use msd_data::{Sample, SourceSpec};

use crate::buffer::{BufferInfo, BufferSummary};
use crate::constructor::{ConstructedBatch, DataConstructor};
use crate::dgraph::DGraphError;
use crate::loader::{LoaderConfig, SourceLoader};
use crate::plan::LoadingPlan;
use crate::planner::{PhaseBreakdown, Planner};

/// Messages understood by a loader actor.
pub enum LoaderMsg {
    /// Refill the buffer toward `target` samples.
    Refill {
        /// Target buffered sample count.
        target: usize,
    },
    /// Report the buffer summary.
    Summary(ReplyTo<BufferSummary>),
    /// Pop the given sample ids and reply with the samples.
    Pop {
        /// Sample ids to pop.
        ids: Vec<u64>,
        /// Reply channel.
        reply: ReplyTo<Vec<Sample>>,
    },
    /// Snapshot the loader state into the GCS at `version`.
    Checkpoint {
        /// Snapshot version.
        version: u64,
    },
}

/// A Source Loader hosted in an actor.
pub struct LoaderActor {
    inner: SourceLoader,
    gcs: Gcs,
}

impl LoaderActor {
    /// Creates the actor, restoring from the GCS checkpoint if one exists
    /// (this is how supervised restarts recover durable state).
    pub fn new(spec: SourceSpec, config: LoaderConfig, seed: u64, gcs: Gcs) -> Self {
        let key = format!("loader/{}", config.loader_id);
        let inner = match gcs.get_state(&key) {
            Some(cp) => {
                let parsed: crate::loader::LoaderCheckpoint =
                    serde_json::from_slice(&cp.data).expect("GCS holds valid checkpoints");
                SourceLoader::restore(spec, config, &parsed)
            }
            None => SourceLoader::synthetic(spec, config, seed),
        };
        LoaderActor { inner, gcs }
    }
}

impl Actor for LoaderActor {
    type Msg = LoaderMsg;

    fn handle(&mut self, msg: LoaderMsg, _ctx: &mut Ctx) {
        match msg {
            LoaderMsg::Refill { target } => {
                let _ = self.inner.refill(target);
            }
            LoaderMsg::Summary(reply) => {
                reply.send(self.inner.summary());
            }
            LoaderMsg::Pop { ids, reply } => {
                reply.send(self.inner.pop(&ids));
            }
            LoaderMsg::Checkpoint { version } => {
                let cp = self.inner.checkpoint(version);
                let key = format!("loader/{}", cp.loader_id);
                let data = serde_json::to_vec(&cp).expect("checkpoint serializes");
                self.gcs.put_state(&key, version, data);
            }
        }
    }
}

/// The threaded pipeline: loader actors + caller-side planner/constructors.
pub struct ThreadedPipeline {
    system: ActorSystem,
    loaders: Vec<ActorRef<LoaderMsg>>,
    planner: Planner,
    constructors: Vec<DataConstructor>,
    /// RPC timeout used as the failure detector.
    pub rpc_timeout: Duration,
    /// Shared control store (checkpoints, registry).
    pub gcs: Gcs,
    replay: Option<crate::replay::PlanStore>,
    /// Steps served from the replay store (when one is installed).
    pub replayed_steps: u64,
}

/// Errors from a threaded step.
#[derive(Debug)]
pub enum RuntimeError {
    /// A loader failed its RPC (timeout or death) — the failure signal.
    LoaderFailure {
        /// Index of the failing loader.
        loader: usize,
    },
    /// Plan generation failed.
    Plan(DGraphError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::LoaderFailure { loader } => write!(f, "loader {loader} failed RPC"),
            RuntimeError::Plan(e) => write!(f, "plan generation failed: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl ThreadedPipeline {
    /// Spawns supervised loader actors for the given `(spec, config)` pairs.
    pub fn new(
        sources: Vec<(SourceSpec, LoaderConfig)>,
        planner: Planner,
        constructors: Vec<DataConstructor>,
        seed: u64,
    ) -> Self {
        let system = ActorSystem::new("msd");
        let gcs = Gcs::new();
        let loaders = sources
            .into_iter()
            .map(|(spec, config)| {
                let name = format!("loader/{}", config.loader_id);
                gcs.register(&name, &spec.name);
                let gcs = gcs.clone();
                system.spawn_supervised(
                    &name,
                    RestartPolicy::Restart { max_restarts: 3 },
                    move || LoaderActor::new(spec.clone(), config.clone(), seed, gcs.clone()),
                )
            })
            .collect();
        ThreadedPipeline {
            system,
            loaders,
            planner,
            constructors,
            rpc_timeout: Duration::from_secs(10),
            gcs,
            replay: None,
            replayed_steps: 0,
        }
    }

    /// Installs a Replay Mode plan store (paper §9): steps whose stored
    /// plan validates against the live fleet's buffers are adopted without
    /// running the strategy; the rest plan live.
    pub fn set_replay_store(&mut self, store: crate::replay::PlanStore) {
        self.replay = Some(store);
    }

    /// Loader handles (fault injection in tests).
    pub fn loaders(&self) -> &[ActorRef<LoaderMsg>] {
        &self.loaders
    }

    /// Access to the planner.
    pub fn planner(&mut self) -> &mut Planner {
        &mut self.planner
    }

    /// Runs one pull-model step across the actor fleet.
    pub fn step(
        &mut self,
        refill_target: usize,
    ) -> Result<(LoadingPlan, PhaseBreakdown, Vec<ConstructedBatch>), RuntimeError> {
        // 1–2. Refill (tell) then gather summaries (ask with timeout: the
        // failure detector).
        for l in &self.loaders {
            l.tell(LoaderMsg::Refill {
                target: refill_target,
            });
        }
        let mut summaries = Vec::with_capacity(self.loaders.len());
        for (i, l) in self.loaders.iter().enumerate() {
            let s = l
                .ask(LoaderMsg::Summary, self.rpc_timeout)
                .map_err(|_| RuntimeError::LoaderFailure { loader: i })?;
            summaries.push(s);
        }
        let info = BufferInfo::new(summaries);

        // 3–4. Plan — from the replay store when one is installed and the
        // stored plan validates, otherwise live.
        let replayed: Option<LoadingPlan> = self.replay.as_ref().and_then(|store| {
            let step = self.planner.step();
            let stored = store.get(step)?;
            let buckets = self
                .planner
                .tree()
                .bucket_count(self.planner.config.axis, self.planner.config.group_size);
            crate::replay::validate_stored(stored, &info, buckets)
                .ok()
                .map(|()| stored.clone())
        });
        let (plan, phases) = match replayed {
            Some(stored) => {
                let plan = self.planner.adopt_plan(stored);
                let phases = PhaseBreakdown {
                    broadcast_ns: self.planner.broadcast_cost_ns(&plan),
                    ..PhaseBreakdown::default()
                };
                self.replayed_steps += 1;
                (plan, phases)
            }
            None => self.planner.generate(&info).map_err(RuntimeError::Plan)?,
        };

        // 5. Pop and construct.
        let mut popped: HashMap<u64, Sample> = HashMap::new();
        for (i, l) in self.loaders.iter().enumerate() {
            let summary_id = i as u32; // loader_id == spawn order by construction
            if let Some(ids) = plan.directives.get(&summary_id) {
                let samples = l
                    .ask(
                        |reply| LoaderMsg::Pop {
                            ids: ids.clone(),
                            reply,
                        },
                        self.rpc_timeout,
                    )
                    .map_err(|_| RuntimeError::LoaderFailure { loader: i })?;
                for s in samples {
                    popped.insert(s.meta.sample_id, s);
                }
            }
            l.tell(LoaderMsg::Checkpoint { version: plan.step });
        }
        let batches = plan
            .buckets
            .iter()
            .map(|bp| {
                let c = &self.constructors[bp.bucket as usize % self.constructors.len().max(1)];
                c.construct(bp, &popped, &plan.broadcast_axes)
            })
            .collect();
        Ok((plan, phases, batches))
    }

    /// Stops all actors and joins their threads.
    pub fn shutdown(self) {
        for l in &self.loaders {
            l.stop();
        }
        self.system.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_balance::BalanceMethod;
    use msd_data::catalog::coyo700m_like;
    use msd_mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
    use msd_sim::SimRng;

    use crate::planner::{PlannerConfig, Strategy};
    use crate::schedule::MixSchedule;

    fn pipeline() -> ThreadedPipeline {
        let mut rng = SimRng::seed(1);
        let catalog = coyo700m_like(&mut rng);
        let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
        let tree = ClientPlaceTree::from_device_mesh(&mesh);
        let planner = Planner::new(
            PlannerConfig {
                axis: DistributeAxis::DP,
                group_size: None,
                microbatches: 2,
                broadcast_axes: vec![Axis::TP],
                samples_per_step: 16,
                schedule: MixSchedule::uniform(catalog.len()),
            },
            Strategy::BackboneBalance {
                method: BalanceMethod::Greedy,
                backbone: msd_balance::BackboneShape {
                    layers: 2,
                    hidden: 128,
                    mlp_ratio: 4.0,
                    heads: 2,
                    vocab: 1000,
                    experts_per_token: 1,
                },
            },
            tree.clone(),
            catalog.sources().iter().map(|s| s.id).collect(),
            7,
        );
        let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
            .sources()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), LoaderConfig::solo(i as u32)))
            .collect();
        let constructors = (0..2)
            .map(|_| DataConstructor::new(mesh.clone(), 4096))
            .collect();
        ThreadedPipeline::new(sources, planner, constructors, 99)
    }

    #[test]
    fn threaded_step_delivers_batches() {
        let mut p = pipeline();
        let (plan, phases, batches) = p.step(32).unwrap();
        assert_eq!(plan.all_samples().len(), 16);
        assert_eq!(batches.len(), 2);
        assert!(phases.compute_ns > 0);
        p.shutdown();
    }

    #[test]
    fn threaded_replay_serves_recorded_plans() {
        // Record three steps on fleet A, then replay them on an
        // identically seeded fleet B: plans match and no strategy runs.
        let mut recorder = pipeline();
        let mut store = crate::replay::PlanStore::new();
        let mut recorded = Vec::new();
        for _ in 0..3 {
            let (plan, _, _) = recorder.step(32).unwrap();
            recorded.push(plan.clone());
            store.insert(plan);
        }
        recorder.shutdown();

        let mut replayer = pipeline();
        replayer.set_replay_store(store);
        for expect in &recorded {
            let (plan, phases, batches) = replayer.step(32).unwrap();
            assert_eq!(&plan, expect);
            assert_eq!(phases.gather_ns, 0, "replay skips gather accounting");
            assert_eq!(phases.compute_ns, 0);
            assert!(!batches.is_empty());
        }
        assert_eq!(replayer.replayed_steps, 3);
        // Past the store: live planning resumes seamlessly.
        let (plan, phases, _) = replayer.step(32).unwrap();
        assert_eq!(plan.step, 3);
        assert!(phases.compute_ns > 0);
        assert_eq!(replayer.replayed_steps, 3);
        replayer.shutdown();
    }

    #[test]
    fn crashed_loader_recovers_via_supervision_and_gcs() {
        let mut p = pipeline();
        let (_, _, _) = p.step(32).unwrap();
        // Kill loader 0; the supervisor restarts it and it restores from
        // its GCS checkpoint.
        p.loaders()[0].inject_crash("injected");
        // Give the supervisor a moment to restart.
        std::thread::sleep(Duration::from_millis(50));
        let mut ok = false;
        for _ in 0..50 {
            match p.step(32) {
                Ok((plan, _, _)) => {
                    assert_eq!(plan.all_samples().len(), 16);
                    ok = true;
                    break;
                }
                Err(RuntimeError::LoaderFailure { .. }) => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(ok, "pipeline never recovered");
        p.shutdown();
    }

    #[test]
    fn stalled_loader_trips_the_failure_detector() {
        let mut p = pipeline();
        // Pre-warm buffers so an ordinary refill is fast, then stall one
        // loader well past the RPC timeout. The timeout must stay generous
        // enough that *healthy* loaders never trip it under parallel test
        // load — only the injected stall may exceed it.
        p.step(32).unwrap();
        p.rpc_timeout = Duration::from_secs(2);
        p.loaders()[1].inject_delay(Duration::from_secs(6));
        let r = p.step(32);
        assert!(
            matches!(r, Err(RuntimeError::LoaderFailure { loader: 1 })),
            "{r:?}"
        );
        p.shutdown();
    }
}
