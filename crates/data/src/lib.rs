//! Synthetic multisource datasets, distributions, and sample transformations.
//!
//! The paper's workloads are `coyo700m` (5 sources, open) and `navit_data`
//! (306 sources, ByteDance production). Neither raw corpus is usable here,
//! but every result in the evaluation depends only on per-sample *metadata*
//! (text-token and image-patch counts, raw byte sizes) and per-source *cost
//! profiles* (transformation latency, access-state memory). Fig 2 and Fig 5
//! publish those distributions; this crate regenerates them:
//!
//! - [`sample`]: sample metadata and payloads.
//! - [`dist`]: length distributions (log-normal, Zipf, Pareto, mixtures).
//! - [`catalog`]: source catalogs — [`catalog::coyo700m_like`] and
//!   [`catalog::navit_like`] are calibrated against the published
//!   histograms.
//! - [`transform`]: sample-level transformations with the paper's cost
//!   heterogeneity (audio ≈ 4× image ≈ 300× text per output token).
//! - [`gen`]: materializes synthetic sources as real `MSDCOL01` files.

// The zero-copy data plane starts at sample synthesis: payloads are
// refcounted `Bytes`, and dead clones on this path silently regrow
// copies. ci.sh runs clippy with -D warnings, so this is enforced.
#![warn(clippy::redundant_clone)]

pub mod catalog;
pub mod dist;
pub mod gen;
pub mod sample;
pub mod transform;

pub use catalog::{coyo700m_like, navit_like, Catalog, SourceSpec};
pub use dist::LengthDist;
pub use sample::{zeroed_payload, Modality, Sample, SampleMeta, SourceId};
pub use transform::{Transform, TransformPipeline};

// Re-exported so downstream crates sample with the same deterministic RNG.
pub use msd_sim::SimRng;
