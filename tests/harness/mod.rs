//! Shared harness for the distributed-serving integration suites.
//!
//! `tests/distributed_serve.rs` and `tests/tcp_transport.rs` exercise
//! the same contract — serving trainer clients over the MSDB wire
//! protocol is *invisible* to them, whatever the transport — so they
//! share one pipeline recipe, one placement scheme, and one set of
//! stream-collection/assertion helpers. Keeping these in one place is
//! what makes the conformance suite *conformance*: every transport runs
//! through literally the same assertions.

#![allow(dead_code)] // Each test crate uses a subset of the harness.

use std::sync::Arc;
use std::time::Duration;

use megascale_data::balance::BalanceMethod;
use megascale_data::core::constructor::{ConstructedBatch, DataConstructor};
use megascale_data::core::loader::LoaderConfig;
use megascale_data::core::planner::{Planner, PlannerConfig, Strategy};
use megascale_data::core::schedule::MixSchedule;
use megascale_data::core::system::net::Transport;
use megascale_data::core::system::runtime::{ServeOptions, ThreadedPipeline};
use megascale_data::core::system::server::RemotePlacement;
use megascale_data::data::catalog::coyo700m_like;
use megascale_data::data::SourceSpec;
use megascale_data::mesh::{Axis, ClientPlaceTree, DeviceMesh, DistributeAxis};
use megascale_data::sim::SimRng;

/// Per-sample modeled fetch latency: keeps steps slow enough that the
/// serving plane's pipelining actually overlaps with loader work.
pub const FETCH_LATENCY_NS: u64 = 200_000;

pub fn small_backbone() -> megascale_data::balance::BackboneShape {
    megascale_data::balance::BackboneShape {
        layers: 2,
        hidden: 128,
        mlp_ratio: 4.0,
        heads: 2,
        vocab: 1000,
        experts_per_token: 1,
    }
}

/// A 5-source, DP=2 pipeline (2 constructor buckets); identical seeds
/// produce identical plan and batch streams, which is what lets these
/// tests compare local and distributed serving byte for byte.
pub fn pipeline(seed: u64) -> ThreadedPipeline {
    let mut rng = SimRng::seed(2);
    let catalog = coyo700m_like(&mut rng);
    let mesh = DeviceMesh::pp_dp_cp_tp(1, 2, 1, 2).unwrap();
    let tree = ClientPlaceTree::from_device_mesh(&mesh);
    let planner = Planner::new(
        PlannerConfig {
            axis: DistributeAxis::DP,
            group_size: None,
            microbatches: 2,
            broadcast_axes: vec![Axis::TP],
            samples_per_step: 16,
            schedule: MixSchedule::uniform(catalog.len()),
        },
        Strategy::BackboneBalance {
            method: BalanceMethod::Greedy,
            backbone: small_backbone(),
        },
        tree,
        catalog.sources().iter().map(|s| s.id).collect(),
        3,
    );
    let sources: Vec<(SourceSpec, LoaderConfig)> = catalog
        .sources()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                s.clone(),
                LoaderConfig::solo_with_fetch_latency(i as u32, FETCH_LATENCY_NS),
            )
        })
        .collect();
    let constructors = (0..2)
        .map(|_| DataConstructor::new(mesh.clone(), 4096))
        .collect();
    ThreadedPipeline::new(sources, planner, constructors, seed)
}

pub fn opts(clients: u32, steps: u64) -> ServeOptions {
    ServeOptions {
        clients,
        steps,
        refill_target: 32,
        queue_depth: 3,
        prefetch: true,
        pull_timeout: Duration::from_millis(300),
        control_interval: 0,
        ..ServeOptions::default()
    }
}

/// Placements whose constructor mapping matches local client ids: in the
/// 1×2×1×2 mesh, DP bucket 0 holds ranks {0, 1} and bucket 1 holds
/// {2, 3}, so client `c` lands on bucket `c % 2` — exactly where a local
/// `ServeClient` with the same id pulls from.
pub fn placements(n: u32) -> Vec<RemotePlacement> {
    (0..n)
        .map(|c| RemotePlacement {
            client: c,
            rank: (c % 2) * 2 + (c / 2) % 2,
        })
        .collect()
}

pub type Stream = Vec<(u64, Arc<ConstructedBatch>)>;

/// Serves locally and collects every client's full stream.
pub fn local_streams(seed: u64, clients: u32, steps: u64) -> Vec<(u32, Stream)> {
    let mut p = pipeline(seed);
    let mut session = p.serve(opts(clients, steps));
    let handles: Vec<_> = session
        .take_clients()
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                let mut stream = Stream::new();
                while let Some(item) = c.next() {
                    stream.push(item);
                }
                (c.id, stream)
            })
        })
        .collect();
    let mut streams: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    assert_eq!(session.join(), steps, "local driver fell short");
    p.shutdown();
    streams.sort_by_key(|(id, _)| *id);
    streams
}

/// Serves over `transport` and collects every remote client's stream.
pub fn remote_streams(
    transport: Arc<dyn Transport>,
    seed: u64,
    clients: u32,
    steps: u64,
) -> Vec<(u32, Stream)> {
    let mut p = pipeline(seed);
    let (session, handle) =
        p.serve_distributed(opts(clients, steps), transport, &placements(clients));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let mut rc = handle.connect(c);
            std::thread::spawn(move || {
                let mut stream = Stream::new();
                while let Some(item) = rc.next() {
                    stream.push(item);
                }
                (rc.id, stream)
            })
        })
        .collect();
    let mut streams: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("remote client thread"))
        .collect();
    assert_eq!(session.join(), steps, "distributed driver fell short");
    p.shutdown();
    streams.sort_by_key(|(id, _)| *id);
    streams
}

/// Every client saw every step, in order.
pub fn assert_ordered_full(streams: &[(u32, Stream)], steps: u64) {
    for (id, stream) in streams {
        assert_eq!(stream.len(), steps as usize, "client {id} missed steps");
        for (i, (step, _)) in stream.iter().enumerate() {
            assert_eq!(*step, i as u64, "client {id} stream out of order");
        }
    }
}

/// `streams` matches `reference` batch for batch, down to the payload
/// bytes themselves — the byte-identical half of the conformance
/// contract (`label` names the transport under test in failures).
pub fn assert_byte_identical(reference: &[(u32, Stream)], streams: &[(u32, Stream)], label: &str) {
    for ((lid, lstream), (rid, rstream)) in reference.iter().zip(streams) {
        assert_eq!(lid, rid);
        for ((lstep, lbatch), (rstep, rbatch)) in lstream.iter().zip(rstream) {
            assert_eq!(lstep, rstep);
            assert_eq!(
                **lbatch, **rbatch,
                "client {lid} step {lstep}: {label} batch diverged from reference"
            );
            for (lmb, rmb) in lbatch.microbatches.iter().zip(&rbatch.microbatches) {
                for ((lid_, lp), (rid_, rp)) in lmb.payloads.iter().zip(&rmb.payloads) {
                    assert_eq!(lid_, rid_);
                    assert_eq!(lp.as_ref(), rp.as_ref());
                }
            }
        }
    }
}

/// Every sample id a batch carries, in segment order.
pub fn sample_ids(batch: &ConstructedBatch) -> Vec<u64> {
    batch
        .microbatches
        .iter()
        .flat_map(|m| &m.sequences)
        .flat_map(|s| &s.segments)
        .map(|seg| seg.sample_id)
        .collect()
}
