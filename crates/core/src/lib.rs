//! MegaScale-Data core: the disaggregated multisource data plane.
//!
//! This crate implements the paper's contribution proper:
//!
//! - [`buffer`]: buffer-metadata summaries Source Loaders report to the
//!   Planner (`summary_buffer` in the paper's low-level API).
//! - [`schedule`]: data-mixture schedules — static, staged, warmup
//!   (curriculum), and loss-adaptive — consumed by the `mix` primitive.
//! - [`dgraph`]: [`dgraph::DGraph`], the stateful dataflow graph tracking
//!   every sample's lifecycle, with the declarative primitives
//!   `mix`/`distribute`/`cost`/`balance`/`broadcast_at`/`plan`.
//! - [`plan`]: [`plan::LoadingPlan`] — the artifact the Planner broadcasts;
//!   tells each Source Loader what to pop and each Data Constructor what to
//!   assemble for which clients.
//! - [`loader`]: the Source Loader component and its actor wrapper.
//! - [`codec`]: the compact binary codec for per-step GCS state (planner
//!   checkpoint, plan-log entries, loader checkpoints), with a legacy
//!   JSON fallback reader.
//! - [`constructor`]: the Data Constructor — microbatch assembly (packing,
//!   padding, position ids) and parallelism transformation.
//! - [`planner`]: the Planner — plan synthesis with phase instrumentation.
//! - [`autoscale`]: offline multi-level source auto-partitioning and online
//!   mixture-driven scaling.
//! - [`pool`]: the size-classed [`pool::BufferPool`] that keeps the hot
//!   fetch→decode→construct→serve path off the allocator by recycling
//!   backing buffers once their `Bytes` views drop.
//! - [`metrics`]: the lock-light observability plane — pool counters,
//!   per-stage latency histograms, and queue-depth gauges snapshotted
//!   through `RuntimeStats`.
//! - [`fault`]: shadow loaders, differential checkpointing, replay.
//! - [`reshard`]: elastic resharding on trainer-topology changes.
//! - [`system`]: the assembled `MegaScaleData` simulation pipeline and
//!   the analytic memory model used by the cluster-scale experiments;
//!   [`system::core`] holds the deployment-agnostic `PipelineCore`,
//!   [`system::runtime`] the fully actorized concurrent runtime
//!   (`ThreadedPipeline::serve`), and [`system::controller`] the elastic
//!   control plane that scales and rebalances the loader fleet live.
//!
//! The paper's §9 "Future Work" directions are implemented too:
//!
//! - [`replay`]: Replay Mode — pre-computed per-step plans executed by a
//!   store-backed planner, freeing the live Planner for health monitoring.
//! - [`aheadfetch`]: Ahead-of-Fetch balancing — plan from storage-resident
//!   metadata (optionally with embedded pre-computed costs) before any
//!   payload fetch.
//! - [`optimizer`]: the Strategy Optimizer — rewrites declarative
//!   orchestration programs (dead-primitive elimination, fusion, lineage
//!   elision) while preserving plan semantics.

// The zero-copy data plane makes many historical clones dead; keep new
// ones from creeping in (ci.sh runs clippy with -D warnings).
#![warn(clippy::redundant_clone)]

pub mod aheadfetch;
pub mod autoscale;
pub mod buffer;
pub mod codec;
pub mod constructor;
pub mod dgraph;
pub mod fault;
pub mod loader;
pub mod metrics;
pub mod optimizer;
pub mod overlap;
pub mod plan;
pub mod planner;
pub mod pool;
pub mod replay;
pub mod reshard;
pub mod schedule;
pub mod system;

pub use aheadfetch::{AheadOfFetchSession, FetchSavings, MetaIndex, PositionalFetcher};
pub use buffer::{BufferInfo, BufferSummary};
pub use constructor::DataConstructor;
pub use dgraph::{BalanceOpts, DGraph, DGraphError, MetaView, NodeState};
pub use loader::SourceLoader;
pub use metrics::{MetricsSnapshot, Stage, StageSnapshot};
pub use optimizer::{CostExpr, OptimizeReport, StrategyOp, StrategyProgram};
pub use plan::{BinPlan, BucketPlan, LoadingPlan};
pub use planner::{Planner, Strategy};
pub use pool::{BufferPool, PoolConfig, PoolCounters, PooledBuf};
pub use replay::{PlanStore, ReplayOutcome, ReplayPlanner};
pub use schedule::MixSchedule;
pub use system::core::{PipelineCore, PlanOutcome};
pub use system::net::{
    BatchPayload, LoopbackTransport, NetError, SharedBatch, SimTransport, Transport, WireFrame,
};
pub use system::runtime::{ServeClient, ServeOptions, ServeSession, ThreadedPipeline};
pub use system::server::{DataServerHandle, RemoteClient, RemotePlacement, ServerStatus};
pub use system::MegaScaleData;
