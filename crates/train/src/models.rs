//! Table 1 model configurations.
//!
//! | Model        | #Layers | #Heads | Hidden | Notes            |
//! |--------------|---------|--------|--------|------------------|
//! | ViT-1B       | 39      | 16     | 1408   | encoder          |
//! | ViT-2B       | 48      | 16     | 1664   | encoder          |
//! | Llama-12B    | 45      | 36     | 4608   | dense backbone   |
//! | tMoE-25B     | 42      | 16     | 2048   | MoE, top-k = 2   |
//! | Mixtral-8×7B | 32      | 32     | 4096   | MoE, top-k = 2   |

use msd_balance::{BackboneShape, EncoderShape};
use serde::{Deserialize, Serialize};

/// A named model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPreset {
    /// Display name as used in the paper's figures.
    pub name: String,
    /// Encoder shape (None for pure-text models).
    pub encoder: Option<EncoderShape>,
    /// Backbone shape.
    pub backbone: BackboneShape,
}

/// ViT-1B encoder (Table 1).
pub fn vit_1b() -> EncoderShape {
    EncoderShape {
        layers: 39,
        hidden: 1408,
        mlp_ratio: 4.0,
        heads: 16,
    }
}

/// ViT-2B encoder (Table 1).
pub fn vit_2b() -> EncoderShape {
    EncoderShape {
        layers: 48,
        hidden: 1664,
        mlp_ratio: 4.0,
        heads: 16,
    }
}

/// Llama-12B dense backbone (Table 1).
pub fn llama_12b() -> BackboneShape {
    BackboneShape {
        layers: 45,
        hidden: 4608,
        mlp_ratio: 4.0,
        heads: 36,
        vocab: 128_256,
        experts_per_token: 1,
    }
}

/// tMoE-25B production MoE backbone (Table 1, top-k = 2).
pub fn tmoe_25b() -> BackboneShape {
    BackboneShape {
        layers: 42,
        hidden: 2048,
        mlp_ratio: 4.0,
        heads: 16,
        vocab: 128_256,
        experts_per_token: 2,
    }
}

/// Mixtral-8×7B MoE backbone (Table 1, top-k = 2).
pub fn mixtral_8x7b() -> BackboneShape {
    BackboneShape {
        layers: 32,
        hidden: 4096,
        mlp_ratio: 3.5,
        heads: 32,
        vocab: 32_000,
        experts_per_token: 2,
    }
}

/// The VLM combinations used across the evaluation.
pub fn vlm_preset(encoder_name: &str, backbone_name: &str) -> ModelPreset {
    let encoder = match encoder_name {
        "ViT-1B" => vit_1b(),
        "ViT-2B" => vit_2b(),
        other => panic!("unknown encoder {other}"),
    };
    let backbone = match backbone_name {
        "Llama-12B" => llama_12b(),
        "tMoE-25B" => tmoe_25b(),
        "Mixtral-8x7B" => mixtral_8x7b(),
        other => panic!("unknown backbone {other}"),
    };
    ModelPreset {
        name: format!("{backbone_name}+{encoder_name}"),
        encoder: Some(encoder),
        backbone,
    }
}

/// Approximate parameter count of a backbone (for allreduce volume and
/// weight-memory modeling).
pub fn backbone_params(shape: &BackboneShape) -> f64 {
    let h = f64::from(shape.hidden);
    let layers = f64::from(shape.layers);
    // Attention (4 h^2) + MLP (2 · r · h^2 — both matrices), MoE replicates
    // experts but active params stay at top-k copies.
    let per_layer =
        4.0 * h * h + 2.0 * shape.mlp_ratio * h * h * f64::from(shape.experts_per_token);
    layers * per_layer + f64::from(shape.vocab) * h
}

/// Approximate parameter count of an encoder.
pub fn encoder_params(shape: &EncoderShape) -> f64 {
    let h = f64::from(shape.hidden);
    f64::from(shape.layers) * (4.0 * h * h + 2.0 * shape.mlp_ratio * h * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        assert_eq!(vit_1b().layers, 39);
        assert_eq!(vit_2b().hidden, 1664);
        assert_eq!(llama_12b().heads, 36);
        assert_eq!(tmoe_25b().experts_per_token, 2);
        assert_eq!(mixtral_8x7b().layers, 32);
    }

    #[test]
    fn param_counts_are_plausible() {
        // ViT-1B ≈ 1e9, ViT-2B ≈ 2e9 (±40%).
        let p1 = encoder_params(&vit_1b());
        let p2 = encoder_params(&vit_2b());
        assert!((0.6e9..1.4e9).contains(&p1), "ViT-1B params = {p1:e}");
        assert!((1.3e9..2.7e9).contains(&p2), "ViT-2B params = {p2:e}");
        // Llama-12B ≈ 12e9 (±40%).
        let pl = backbone_params(&llama_12b());
        assert!((8e9..16e9).contains(&pl), "Llama-12B params = {pl:e}");
    }

    #[test]
    fn presets_compose() {
        let p = vlm_preset("ViT-2B", "Llama-12B");
        assert!(p.encoder.is_some());
        assert_eq!(p.name, "Llama-12B+ViT-2B");
    }

    #[test]
    #[should_panic(expected = "unknown encoder")]
    fn unknown_preset_panics() {
        let _ = vlm_preset("ViT-9B", "Llama-12B");
    }
}
