//! Data-mixture schedules for the `mix(schedule)` primitive.
//!
//! A schedule yields per-source sampling weights for each training step.
//! The paper's motivating policies are all representable: fixed mixtures,
//! staged training, sequence-length-style warmups, curriculum learning
//! (easy→hard interpolation), and loss-adaptive mixing that reweights
//! sources by observed training signal.

use serde::{Deserialize, Serialize};

/// A per-step source-weight schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MixSchedule {
    /// Fixed weights for the whole run.
    Static(Vec<f64>),
    /// Piecewise-constant: `(from_step, weights)` entries; the entry with
    /// the largest `from_step <= step` applies.
    Staged(Vec<(u64, Vec<f64>)>),
    /// Linear interpolation from `from` to `to` over `steps` steps —
    /// curriculum learning's easy→hard ramp is exactly this.
    Warmup {
        /// Weights at step 0.
        from: Vec<f64>,
        /// Weights at and after `steps`.
        to: Vec<f64>,
        /// Ramp length in steps.
        steps: u64,
    },
    /// Loss-adaptive: `base[i] · exp(sensitivity · loss[i])`, renormalized.
    /// Sources with higher recent loss are sampled more.
    LossAdaptive {
        /// Baseline weights.
        base: Vec<f64>,
        /// Exponential sensitivity to loss.
        sensitivity: f64,
        /// Most recent per-source losses (updated via `observe_loss`).
        losses: Vec<f64>,
    },
}

impl MixSchedule {
    /// Uniform static schedule over `n` sources.
    pub fn uniform(n: usize) -> Self {
        MixSchedule::Static(vec![1.0; n])
    }

    /// Number of sources this schedule covers.
    pub fn source_count(&self) -> usize {
        match self {
            MixSchedule::Static(w) => w.len(),
            MixSchedule::Staged(stages) => stages.first().map(|(_, w)| w.len()).unwrap_or(0),
            MixSchedule::Warmup { from, .. } => from.len(),
            MixSchedule::LossAdaptive { base, .. } => base.len(),
        }
    }

    /// Normalized weights at `step`. Always sums to 1 unless all-zero.
    pub fn weights(&self, step: u64) -> Vec<f64> {
        let raw = match self {
            MixSchedule::Static(w) => w.clone(),
            MixSchedule::Staged(stages) => {
                let mut current: Option<&Vec<f64>> = None;
                for (from, w) in stages {
                    if *from <= step {
                        current = Some(w);
                    }
                }
                current
                    .cloned()
                    .unwrap_or_else(|| stages.first().map(|(_, w)| w.clone()).unwrap_or_default())
            }
            MixSchedule::Warmup { from, to, steps } => {
                let t = if *steps == 0 {
                    1.0
                } else {
                    (step as f64 / *steps as f64).min(1.0)
                };
                from.iter().zip(to).map(|(f, g)| f + (g - f) * t).collect()
            }
            MixSchedule::LossAdaptive {
                base,
                sensitivity,
                losses,
            } => base
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let loss = losses.get(i).copied().unwrap_or(0.0);
                    b * (sensitivity * loss).exp()
                })
                .collect(),
        };
        normalize(raw)
    }

    /// Feeds fresh per-source losses into a loss-adaptive schedule
    /// (no-op for other variants).
    pub fn observe_loss(&mut self, new_losses: &[f64]) {
        if let MixSchedule::LossAdaptive { losses, .. } = self {
            losses.clear();
            losses.extend_from_slice(new_losses);
        }
    }
}

fn normalize(mut w: Vec<f64>) -> Vec<f64> {
    for x in &mut w {
        if !x.is_finite() || *x < 0.0 {
            *x = 0.0;
        }
    }
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for x in &mut w {
            *x /= total;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(w: &[f64]) {
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        assert!(w.iter().all(|x| *x >= 0.0));
    }

    #[test]
    fn static_weights_normalize() {
        let s = MixSchedule::Static(vec![2.0, 6.0]);
        let w = s.weights(0);
        assert_normalized(&w);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert_eq!(s.weights(1_000_000), w);
    }

    #[test]
    fn staged_switches_at_thresholds() {
        let s = MixSchedule::Staged(vec![
            (0, vec![1.0, 0.0]),
            (100, vec![0.5, 0.5]),
            (200, vec![0.0, 1.0]),
        ]);
        assert_eq!(s.weights(0), vec![1.0, 0.0]);
        assert_eq!(s.weights(99), vec![1.0, 0.0]);
        assert_eq!(s.weights(100), vec![0.5, 0.5]);
        assert_eq!(s.weights(500), vec![0.0, 1.0]);
    }

    #[test]
    fn warmup_interpolates_linearly() {
        let s = MixSchedule::Warmup {
            from: vec![1.0, 0.0],
            to: vec![0.0, 1.0],
            steps: 10,
        };
        assert_eq!(s.weights(0), vec![1.0, 0.0]);
        let mid = s.weights(5);
        assert!((mid[0] - 0.5).abs() < 1e-12);
        assert_eq!(s.weights(10), vec![0.0, 1.0]);
        assert_eq!(s.weights(20), vec![0.0, 1.0]);
    }

    #[test]
    fn curriculum_ramps_hard_fraction_monotonically() {
        // "Easier" source 0 fades out as "harder" source 1 ramps in.
        let s = MixSchedule::Warmup {
            from: vec![0.9, 0.1],
            to: vec![0.3, 0.7],
            steps: 1000,
        };
        let mut prev = 0.0;
        for step in (0..=1000).step_by(100) {
            let w = s.weights(step);
            assert_normalized(&w);
            assert!(w[1] >= prev);
            prev = w[1];
        }
    }

    #[test]
    fn loss_adaptive_prefers_lossy_sources() {
        let mut s = MixSchedule::LossAdaptive {
            base: vec![1.0, 1.0],
            sensitivity: 1.0,
            losses: vec![0.0, 0.0],
        };
        let w0 = s.weights(0);
        assert!((w0[0] - 0.5).abs() < 1e-12);
        s.observe_loss(&[2.0, 4.0]);
        let w1 = s.weights(1);
        assert!(w1[1] > w1[0]);
        assert_normalized(&w1);
    }

    #[test]
    fn degenerate_weights_handled() {
        let s = MixSchedule::Static(vec![0.0, 0.0]);
        assert_eq!(s.weights(0), vec![0.0, 0.0]);
        let s = MixSchedule::Static(vec![-1.0, f64::NAN, 3.0]);
        let w = s.weights(0);
        assert_eq!(w[0], 0.0);
        assert_eq!(w[1], 0.0);
        assert!((w[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_zero_steps_jumps_to_target() {
        let s = MixSchedule::Warmup {
            from: vec![1.0, 0.0],
            to: vec![0.0, 1.0],
            steps: 0,
        };
        assert_eq!(s.weights(0), vec![0.0, 1.0]);
    }

    #[test]
    fn source_counts() {
        assert_eq!(MixSchedule::uniform(5).source_count(), 5);
        assert_eq!(
            MixSchedule::Staged(vec![(0, vec![1.0; 3])]).source_count(),
            3
        );
    }
}
