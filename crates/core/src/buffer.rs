//! Buffer-metadata summaries.
//!
//! Source Loaders hold materialized samples in read buffers; the Planner
//! never sees payloads, only these lightweight summaries (sample ids,
//! source signatures, sequence lengths). Plan generation then operates on
//! kilobytes of metadata even when buffers hold gigabytes of tensors.

use msd_data::{SampleMeta, SourceId};
use serde::{Deserialize, Serialize};

/// Metadata summary of one Source Loader's read buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferSummary {
    /// The loader's id (unique across the deployment).
    pub loader_id: u32,
    /// The source this loader serves.
    pub source: SourceId,
    /// Metadata of buffered, not-yet-scheduled samples, in buffer order.
    pub samples: Vec<SampleMeta>,
    /// Loader-reported mean transform cost (ns/sample), for autoscaling.
    pub mean_transform_ns: f64,
}

impl BufferSummary {
    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialized wire size estimate in bytes (drives the Fig 15 "buffer
    /// gather" cost model: ~32 B per sample of packed metadata).
    pub fn wire_bytes(&self) -> u64 {
        32 + self.samples.len() as u64 * 32
    }
}

/// The Planner's gathered view across all loaders ("buffer infos" in the
/// paper's `DGraph.from_buffer_infos`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BufferInfo {
    /// Per-loader summaries.
    pub summaries: Vec<BufferSummary>,
}

impl BufferInfo {
    /// Creates a gathered view.
    pub fn new(summaries: Vec<BufferSummary>) -> Self {
        BufferInfo { summaries }
    }

    /// Total buffered samples across loaders.
    pub fn total_samples(&self) -> usize {
        self.summaries.iter().map(BufferSummary::len).sum()
    }

    /// Iterates `(loader_id, &SampleMeta)` pairs across all summaries.
    pub fn iter_samples(&self) -> impl Iterator<Item = (u32, &SampleMeta)> {
        self.summaries
            .iter()
            .flat_map(|s| s.samples.iter().map(move |m| (s.loader_id, m)))
    }

    /// Total wire size of the gather (Fig 15 planner-gather model).
    pub fn wire_bytes(&self) -> u64 {
        self.summaries.iter().map(BufferSummary::wire_bytes).sum()
    }

    /// Distinct sources present.
    pub fn source_count(&self) -> usize {
        let mut ids: Vec<SourceId> = self.summaries.iter().map(|s| s.source).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msd_data::Modality;

    fn meta(id: u64, src: u32, tokens: u32) -> SampleMeta {
        SampleMeta {
            sample_id: id,
            source: SourceId(src),
            modality: Modality::Text,
            text_tokens: tokens,
            image_patches: 0,
            raw_bytes: 64,
        }
    }

    fn summary(loader: u32, src: u32, n: u64) -> BufferSummary {
        BufferSummary {
            loader_id: loader,
            source: SourceId(src),
            samples: (0..n)
                .map(|i| meta(u64::from(loader) * 1000 + i, src, 10))
                .collect(),
            mean_transform_ns: 1000.0,
        }
    }

    #[test]
    fn aggregation() {
        let info = BufferInfo::new(vec![summary(0, 0, 5), summary(1, 0, 3), summary(2, 1, 2)]);
        assert_eq!(info.total_samples(), 10);
        assert_eq!(info.source_count(), 2);
        assert_eq!(info.iter_samples().count(), 10);
        assert!(info.wire_bytes() > 10 * 32);
    }

    #[test]
    fn empty_info() {
        let info = BufferInfo::default();
        assert_eq!(info.total_samples(), 0);
        assert_eq!(info.source_count(), 0);
        let s = BufferSummary {
            loader_id: 0,
            source: SourceId(0),
            samples: vec![],
            mean_transform_ns: 0.0,
        };
        assert!(s.is_empty());
    }
}
