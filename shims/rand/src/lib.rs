//! Shim for `rand`: the fallible/infallible generator traits and the
//! `random_range` extension used by `msd_sim::SimRng`. No generator
//! implementations live here — the repository brings its own
//! (xoshiro256++), this crate only supplies the trait vocabulary.

use std::convert::Infallible;
use std::ops::Range;

/// A fallible random number generator.
pub trait TryRng {
    /// The error produced when the underlying entropy source fails.
    type Error;

    /// Returns the next random `u32`.
    fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

    /// Returns the next random `u64`.
    fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

    /// Fills `dest` with random bytes.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Self::Error>;
}

/// An infallible random number generator: every [`TryRng`] whose error is
/// [`Infallible`] gets this for free.
pub trait Rng: TryRng<Error = Infallible> {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        match self.try_fill_bytes(dest) {
            Ok(()) => {}
        }
    }
}

impl<T: TryRng<Error = Infallible> + ?Sized> Rng for T {}

/// A type from which a uniform value can be drawn by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws a uniform value from `self`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // The wrapped difference is the span modulo 2^width; cast
                // through the unsigned sibling so it widens zero-extended
                // (`as u64` directly would sign-extend for ranges wider
                // than the type's positive half, e.g. -100i8..100).
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!((i8, u8), (i16, u16), (i32, u32), (i64, u64), (isize, usize));

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Returns a uniform value from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);

    impl TryRng for Lcg {
        type Error = Infallible;

        fn try_next_u32(&mut self) -> Result<u32, Infallible> {
            Ok((self.try_next_u64()? >> 32) as u32)
        }

        fn try_next_u64(&mut self) -> Result<u64, Infallible> {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Ok(self.0)
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Infallible> {
            for b in dest {
                *b = (self.try_next_u64()? >> 56) as u8;
            }
            Ok(())
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(9);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn wide_signed_ranges_stay_in_bounds() {
        // Span 200 exceeds i8::MAX: the span must widen zero-extended or
        // samples escape the range.
        let mut rng = Lcg(3);
        for _ in 0..2000 {
            let v = rng.random_range(-100i8..100);
            assert!((-100..100).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn fill_bytes_works() {
        let mut rng = Lcg(1);
        let mut buf = [0u8; 9];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|b| *b != 0));
    }
}
