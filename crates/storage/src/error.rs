//! Storage error types.

use std::fmt;

/// Errors produced by the storage subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The requested object does not exist in the store.
    NotFound(String),
    /// The file bytes do not form a valid `MSDCOL01` file.
    Corrupt(String),
    /// A value's type does not match the schema column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected data type name.
        expected: &'static str,
        /// Actual value type name.
        actual: &'static str,
    },
    /// A row's arity does not match the schema.
    ArityMismatch {
        /// Number of columns the schema defines.
        expected: usize,
        /// Number of values in the offending row.
        actual: usize,
    },
    /// A row group or row index is out of bounds.
    OutOfBounds {
        /// Requested index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(path) => write!(f, "object not found: {path}"),
            StorageError::Corrupt(why) => write!(f, "corrupt columnar file: {why}"),
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in column {column:?}: expected {expected}, got {actual}"
            ),
            StorageError::ArityMismatch { expected, actual } => write!(
                f,
                "row arity mismatch: schema has {expected} columns, row has {actual}"
            ),
            StorageError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::NotFound("hdfs://x".into());
        assert!(e.to_string().contains("hdfs://x"));
        let e = StorageError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3'));
        let e = StorageError::TypeMismatch {
            column: "tokens".into(),
            expected: "Int64",
            actual: "Utf8",
        };
        assert!(e.to_string().contains("tokens"));
    }
}
