//! Access-state memory model.
//!
//! When a client opens a columnar source file it pays for, and keeps
//! resident until close (Sec 2.3 "Source Scaling"):
//!
//! 1. a **socket** / connection buffer to the storage service,
//! 2. the parsed **footer metadata** (schema, row-group directory, stats),
//! 3. a **row-group read buffer** sized to one row group (512 MiB–1 GiB for
//!    production Parquet).
//!
//! [`AccessState`] is that triple. The memory figures of the paper (Fig 4,
//! Fig 5a, Fig 12, Fig 17b) all reduce to counting how many `AccessState`s
//! each architecture replicates.

/// Default socket/connection buffer per open file.
pub const DEFAULT_SOCKET_BYTES: u64 = 256 << 10;

/// Resident memory held by one open source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessState {
    /// Connection/socket buffer bytes.
    pub socket_bytes: u64,
    /// Parsed footer + schema + stats bytes.
    pub metadata_bytes: u64,
    /// Row-group read buffer bytes (one group resident at a time).
    pub buffer_bytes: u64,
}

impl AccessState {
    /// Creates an access state from its three components.
    pub fn new(socket_bytes: u64, metadata_bytes: u64, buffer_bytes: u64) -> Self {
        AccessState {
            socket_bytes,
            metadata_bytes,
            buffer_bytes,
        }
    }

    /// A production-Parquet-like state: `row_group_bytes` should be in the
    /// 512 MiB–1 GiB range, `metadata_bytes` grows with row-group count.
    pub fn production(metadata_bytes: u64, row_group_bytes: u64) -> Self {
        AccessState::new(DEFAULT_SOCKET_BYTES, metadata_bytes, row_group_bytes)
    }

    /// Total resident bytes.
    pub fn total(&self) -> u64 {
        self.socket_bytes + self.metadata_bytes + self.buffer_bytes
    }
}

/// Aggregates the access states a single worker process keeps open.
///
/// In a parallelism-unaware dataloader every worker of every rank holds one
/// state per source; MegaScale-Data's Source Loaders hold exactly one.
#[derive(Debug, Default, Clone)]
pub struct OpenFiles {
    states: Vec<AccessState>,
}

impl OpenFiles {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an open file.
    pub fn open(&mut self, state: AccessState) {
        self.states.push(state);
    }

    /// Number of open files.
    pub fn count(&self) -> usize {
        self.states.len()
    }

    /// Total resident bytes across open files.
    pub fn total_bytes(&self) -> u64 {
        self.states.iter().map(AccessState::total).sum()
    }

    /// Closes all files.
    pub fn close_all(&mut self) {
        self.states.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = AccessState::new(100, 200, 300);
        assert_eq!(s.total(), 600);
        let p = AccessState::production(1 << 20, 512 << 20);
        assert_eq!(p.socket_bytes, DEFAULT_SOCKET_BYTES);
        assert_eq!(p.total(), DEFAULT_SOCKET_BYTES + (1 << 20) + (512 << 20));
    }

    #[test]
    fn open_files_aggregate() {
        let mut of = OpenFiles::new();
        for _ in 0..10 {
            of.open(AccessState::new(1, 2, 3));
        }
        assert_eq!(of.count(), 10);
        assert_eq!(of.total_bytes(), 60);
        of.close_all();
        assert_eq!(of.total_bytes(), 0);
    }

    #[test]
    fn memory_scales_linearly_with_sources() {
        // The core observation of Sec 2.3: per-source state makes worker
        // memory linear in source count.
        let per_source = AccessState::production(4 << 20, 512 << 20).total();
        let mut of = OpenFiles::new();
        for _ in 0..306 {
            of.open(AccessState::production(4 << 20, 512 << 20));
        }
        assert_eq!(of.total_bytes(), per_source * 306);
    }
}
