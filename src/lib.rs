//! MegaScale-Data: disaggregated multisource data loading for large
//! foundation model training.
//!
//! This is the facade crate of the workspace. It re-exports every subsystem
//! so applications can depend on a single crate:
//!
//! - [`sim`] — deterministic discrete-event simulation substrate.
//! - [`storage`] — columnar storage with per-handle access-state accounting.
//! - [`data`] — synthetic multisource datasets and sample transformations.
//! - [`actor`] — thread-based actor runtime with supervision.
//! - [`mesh`] — device mesh, `ClientPlaceTree`, parallelism transforms.
//! - [`balance`] — cost models and load-balancing algorithms.
//! - [`core`] — the MegaScale-Data system: `DGraph` data plane, Planner,
//!   Source Loaders, Data Constructors, AutoScaler, fault tolerance; plus
//!   the paper's §9 future-work features (Replay Mode, Ahead-of-Fetch
//!   balancing, the Strategy Optimizer) and Sec 6.2 deployment tricks
//!   (hybrid sidecar placement, transformation reordering, selective
//!   broadcasting).
//! - [`train`] — hybrid-parallel trainer model (FLOPs, pipeline, loss).
//! - [`baselines`] — architectural models of competing dataloaders.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end walkthrough: declare data
//! sources, build a [`mesh::ClientPlaceTree`] from a device mesh, write an
//! orchestration strategy with [`core::DGraph`] primitives, and pull
//! balanced, parallelism-aware batches.

pub use msd_actor as actor;
pub use msd_balance as balance;
pub use msd_baselines as baselines;
pub use msd_core as core;
pub use msd_data as data;
pub use msd_mesh as mesh;
pub use msd_sim as sim;
pub use msd_storage as storage;
pub use msd_train as train;
